#pragma once

/// \file kd_index.hpp
/// \brief Kd-tree SpatialIndex: the high-dimension / clustered fallback.
///
/// Wraps geometry::KdTree behind the SpatialIndex interface. The tree is
/// frozen over a snapshot of the rows taken at (re)build time; rows mutated
/// since then ("loose" rows — added, moved, or relocated by a swap_remove)
/// fall out of the tree's view and are scanned linearly per query until
/// their count crosses a fraction of the population, at which point the
/// tree rebuilds. That keeps incremental ops O(1) amortized (the rebuild
/// cost is spread over the mutations that forced it) while queries stay
/// exact: tree hits plus the loose scan union to the exact closed metric
/// ball, sorted ascending.
///
/// Unlike the grid, masked points stay in the tree (removing from a kd-tree
/// is not O(1)); they are filtered at query time.

#include <memory>
#include <vector>

#include "mmph/geometry/kd_tree.hpp"
#include "mmph/spatial/spatial_index.hpp"

namespace mmph::spatial {

class KdTreeIndex final : public SpatialIndex {
 public:
  KdTreeIndex(const geo::PointSet& points, double radius, geo::Metric metric);

  [[nodiscard]] IndexKind kind() const noexcept override {
    return IndexKind::kKdTree;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return masked_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept override { return dim_; }
  [[nodiscard]] double radius() const noexcept override { return radius_; }

  void query(geo::ConstVec center,
             std::vector<std::size_t>& out) const override;

  void mask(std::size_t id) override;
  void unmask_all() override;
  [[nodiscard]] bool masked(std::size_t id) const override;

  void add(geo::ConstVec p) override;
  void update(std::size_t id, geo::ConstVec p) override;
  void swap_remove(std::size_t id) override;

  void rebuild() override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] geo::ConstVec point(std::size_t id) const override {
    MMPH_ASSERT(id < size(), "KdTreeIndex: id out of range");
    return geo::ConstVec(coords_.data() + id * dim_, dim_);
  }

  /// Rows currently outside the frozen tree (exposed for tests pinning the
  /// amortized-rebuild policy).
  [[nodiscard]] std::size_t loose_count() const noexcept {
    return loose_ids_.size();
  }

 private:
  void maybe_rebuild();

  std::size_t dim_;
  double radius_;
  geo::Metric metric_;
  std::vector<double> coords_;  ///< live rows, row-major (owned copy)
  std::vector<char> masked_;
  /// Frozen row snapshot the tree indexes into; base id b corresponds to
  /// live id b while in_tree_[b] is true.
  geo::PointSet base_;
  std::unique_ptr<geo::KdTree> tree_;
  std::vector<char> in_tree_;  ///< per live id: coords match base row id
  /// Ids to scan linearly. May hold duplicates and stale (>= size()) ids;
  /// query() filters, rebuild() clears.
  std::vector<std::size_t> loose_ids_;
};

}  // namespace mmph::spatial
