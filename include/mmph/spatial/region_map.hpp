#pragma once

/// \file region_map.hpp
/// \brief Deterministic interest-space region -> store-shard mapping.
///
/// The serve tier shards its InstanceStore by *region* so that users who
/// are close in interest space land in the same shard (the paper's greedy
/// is partitionable by region, and a per-shard solve over a spatially
/// coherent population produces good candidate centers). The region of a
/// point is its uniform-grid cell — the same floor(v / cell) assignment
/// UniformGridIndex buckets by — and a cell maps to a shard by FNV-1a
/// hash of its integer coordinates, so the mapping:
///
///   - is a pure function of the coordinates (arrival order, churn
///     history, and process lifetime never change a user's shard),
///   - keeps whole cells together (every point of a cell shares a shard,
///     which is what makes per-shard solves spatially meaningful),
///   - needs no fitted bounding box (works on an unbounded domain, like
///     the grid index and unlike geo::CellGrid).
///
/// shards == 1 collapses to the constant 0 without hashing, which is the
/// bit-identity mode: a 1-shard store behaves exactly like the unsharded
/// store it replaced.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "mmph/geometry/point_set.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::spatial {

class RegionMap {
 public:
  /// \p cell_size > 0 is the region edge length (serve passes the coverage
  /// radius, aligning regions with solve-time grid cells). Any dim >= 1 is
  /// accepted — unlike the grid index, the hash has no kGridMaxDim cap.
  RegionMap(std::size_t dim, double cell_size, std::size_t shards)
      : dim_(dim), cell_(cell_size), shards_(shards) {
    MMPH_REQUIRE(dim_ >= 1, "RegionMap: dim must be >= 1");
    MMPH_REQUIRE(cell_ > 0.0, "RegionMap: cell_size must be positive");
    MMPH_REQUIRE(shards_ >= 1, "RegionMap: shards must be >= 1");
  }

  [[nodiscard]] std::size_t dim() const noexcept { return dim_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }
  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }

  /// Integer cell coordinate along one axis (UniformGridIndex's floor).
  [[nodiscard]] std::int64_t cell_coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v / cell_));
  }

  /// Shard owning the region \p p falls in.
  [[nodiscard]] std::size_t shard_of(geo::ConstVec p) const {
    MMPH_ASSERT(p.size() == dim_, "RegionMap: point dimension mismatch");
    if (shards_ == 1) return 0;
    // FNV-1a over the packed cell coordinates — the same dispersal
    // UniformGridIndex::CellHash uses, so dense sequential cells spread
    // evenly instead of striping.
    std::uint64_t h = 1469598103934665603ull;
    for (std::size_t d = 0; d < dim_; ++d) {
      h ^= static_cast<std::uint64_t>(cell_coord(p[d]));
      h *= 1099511628211ull;
    }
    return static_cast<std::size_t>(h % shards_);
  }

 private:
  std::size_t dim_;
  double cell_;
  std::size_t shards_;
};

}  // namespace mmph::spatial
