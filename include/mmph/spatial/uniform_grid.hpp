#pragma once

/// \file uniform_grid.hpp
/// \brief Sparse uniform-grid SpatialIndex keyed on cell size ~ r.
///
/// Points bucket into axis-aligned cubes of side `cell_size` (default: the
/// query radius, so a radius query touches at most 3^dim cells). Cells live
/// in a hash map keyed on integer cell coordinates — the domain is
/// unbounded, cells materialize only when occupied, and incremental
/// add/update/swap_remove stay O(1) amortized with no bounding-box to
/// outgrow (unlike geo::CellGrid, which is CSR over a fixed box and
/// rebuild-only).
///
/// A query enumerates the cell box covering [c - r, c + r] per dimension,
/// concatenates the buckets, and sorts ascending — the sort keeps the
/// bit-identity contract of SpatialIndex::query (ascending superset of the
/// L-infinity ball, hence of every p-norm ball).
///
/// Masked points are removed from their bucket (queries never touch them —
/// the ActiveSet-style payoff) and re-bucketed by unmask_all().

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mmph/spatial/spatial_index.hpp"

namespace mmph::spatial {

class UniformGridIndex final : public SpatialIndex {
 public:
  /// Integer cell coordinates, padded with zeros above dim().
  using Cell = std::array<std::int64_t, kGridMaxDim>;

  /// Bulk build. \p radius > 0; \p cell_size <= 0 selects radius.
  /// dim must be <= kGridMaxDim (use the kd-tree fallback above).
  UniformGridIndex(const geo::PointSet& points, double radius,
                   double cell_size = 0.0);

  [[nodiscard]] IndexKind kind() const noexcept override {
    return IndexKind::kGrid;
  }
  [[nodiscard]] std::size_t size() const noexcept override {
    return masked_.size();
  }
  [[nodiscard]] std::size_t dim() const noexcept override { return dim_; }
  [[nodiscard]] double radius() const noexcept override { return radius_; }
  [[nodiscard]] double cell_size() const noexcept { return cell_; }

  void query(geo::ConstVec center,
             std::vector<std::size_t>& out) const override;

  void mask(std::size_t id) override;
  void unmask_all() override;
  [[nodiscard]] bool masked(std::size_t id) const override;

  void add(geo::ConstVec p) override;
  void update(std::size_t id, geo::ConstVec p) override;
  void swap_remove(std::size_t id) override;

  void rebuild() override;
  [[nodiscard]] bool verify() const override;

  [[nodiscard]] geo::ConstVec point(std::size_t id) const override {
    MMPH_ASSERT(id < size(), "UniformGridIndex: id out of range");
    return geo::ConstVec(coords_.data() + id * dim_, dim_);
  }

  /// Cell coordinates of row \p id. Lexicographic order over cells is a
  /// row-major spatial order — the serve layer's grid sharding sorts by it
  /// (the shared-structure replacement for geo::CellGrid's flattened ids).
  [[nodiscard]] Cell cell_of(std::size_t id) const {
    return cell_of_vec(point(id));
  }

  [[nodiscard]] std::size_t occupied_cells() const noexcept {
    return buckets_.size();
  }

 private:
  struct CellHash {
    std::size_t operator()(const Cell& c) const noexcept;
  };

  [[nodiscard]] Cell cell_of_vec(geo::ConstVec p) const;
  [[nodiscard]] std::int64_t cell_coord(double v) const;
  void bucket_insert(const Cell& cell, std::size_t id);
  void bucket_erase(const Cell& cell, std::size_t id);
  void bucket_rename(const Cell& cell, std::size_t from, std::size_t to);

  std::size_t dim_;
  double radius_;
  double cell_;
  std::vector<double> coords_;  ///< owned row-major copy (survives churn)
  std::vector<char> masked_;
  std::size_t masked_count_ = 0;
  std::unordered_map<Cell, std::vector<std::size_t>, CellHash> buckets_;
};

}  // namespace mmph::spatial
