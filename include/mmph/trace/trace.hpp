#pragma once

/// \file trace.hpp
/// \brief Plain-text serialization of problems and solutions.
///
/// The paper calls its evaluation "trace-driven"; this module makes traces
/// first-class: any generated instance can be saved, shared, and replayed
/// bit-exactly (decimal round-trip via max_digits10), and solver outputs
/// can be archived next to the instance that produced them. The format is
/// line-oriented and versioned:
///
///   mmph-problem v1
///   dim 2
///   metric L2            # or L1 / Linf / Lp <p>
///   radius 1
///   shape linear         # or binary (classic max-coverage rewards)
///   n 3
///   point <w> <x0> <x1> ...        (n lines)
///
///   mmph-solution v1
///   solver greedy4
///   dim 2
///   k 2
///   total <f(C)>
///   center <g_j> <c0> <c1> ...     (k lines)

#include <iosfwd>
#include <string>

#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"

namespace mmph::trace {

/// Writes \p problem to \p os in the v1 text format.
void write_problem(std::ostream& os, const core::Problem& problem);

/// Parses a v1 problem. \throws ParseError on malformed input.
[[nodiscard]] core::Problem read_problem(std::istream& is);

/// Writes \p solution (centers + per-round rewards + total).
void write_solution(std::ostream& os, const core::Solution& solution);

/// Parses a v1 solution (residuals are not serialized; the reader leaves
/// Solution::residual empty). \throws ParseError on malformed input.
[[nodiscard]] core::Solution read_solution(std::istream& is);

/// File-level helpers. \throws StateError when the file cannot be opened.
void save_problem(const std::string& path, const core::Problem& problem);
[[nodiscard]] core::Problem load_problem(const std::string& path);
void save_solution(const std::string& path, const core::Solution& solution);
[[nodiscard]] core::Solution load_solution(const std::string& path);

}  // namespace mmph::trace
