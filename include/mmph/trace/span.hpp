#pragma once

/// \file span.hpp
/// \brief Lightweight in-process timing spans for the serving layer.
///
/// trace.hpp archives *data* (problems, solutions); this header archives
/// *time*: named spans wrapping the stages of a long-running pipeline
/// (batch drain, shard solve, merge, incremental refine). Spans aggregate
/// into per-name statistics rather than an event log, so a service can run
/// for millions of requests with O(#stage-names) memory. Collection is off
/// by default and a disabled collector costs one relaxed atomic load per
/// span, so instrumentation can stay compiled into hot paths.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "mmph/obs/registry.hpp"

namespace mmph::trace {

/// Aggregate statistics of one span name.
struct SpanStats {
  std::string name;
  std::uint64_t count = 0;
  double total_seconds = 0.0;
  double max_seconds = 0.0;

  [[nodiscard]] double mean_seconds() const noexcept {
    return count == 0 ? 0.0 : total_seconds / static_cast<double>(count);
  }
};

/// Thread-safe sink aggregating span durations by name.
class SpanCollector {
 public:
  /// Process-wide collector the serving layer reports into by default.
  static SpanCollector& global();

  void set_enabled(bool enabled) noexcept {
    enabled_.store(enabled, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Adds one completed span. No-op while disabled.
  void record(const std::string& name, double seconds);

  /// Snapshot of every span name seen so far, sorted by name.
  [[nodiscard]] std::vector<SpanStats> stats() const;

  /// Forgets all recorded spans (enabled flag is unchanged).
  void reset();

  /// Histogram registry mirroring every span name as
  /// `mmph_span_<sanitized>_seconds` — scraped alongside the serve/net
  /// registries so remote operators see span latency distributions, not
  /// just count/mean/max.
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

 private:
  struct Cell {
    std::uint64_t count = 0;
    double total_seconds = 0.0;
    double max_seconds = 0.0;
    obs::Histogram* histogram = nullptr;  // owned by registry_
  };

  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::map<std::string, Cell> cells_;
  obs::Registry registry_;
};

/// RAII span: times its scope and reports to a collector on destruction.
/// The name must outlive the span (string literals in practice).
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name,
                      SpanCollector& collector = SpanCollector::global())
      : name_(name),
        collector_(&collector),
        armed_(collector.enabled()),
        start_(std::chrono::steady_clock::now()) {}

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (!armed_) return;
    const auto elapsed = std::chrono::steady_clock::now() - start_;
    collector_->record(name_,
                       std::chrono::duration<double>(elapsed).count());
  }

 private:
  const char* name_;
  SpanCollector* collector_;
  bool armed_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace mmph::trace
