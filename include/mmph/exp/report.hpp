#pragma once

/// \file report.hpp
/// \brief Rendering of sweep results into the paper-style tables.

#include <map>
#include <string>
#include <vector>

#include "mmph/exp/experiment.hpp"
#include "mmph/io/table.hpp"

namespace mmph::exp {

/// Ratio table (Figs. 4-7 style): one row per (k, r) cell, one column per
/// solver's mean approximation ratio, plus the analytic approx.1/approx.2
/// bounds from Theorems 1 and 2.
[[nodiscard]] io::Table ratio_table(const std::vector<CellStats>& cells,
                                    const std::vector<std::string>& solvers);

/// Reward table (Figs. 8-9 style): mean achieved reward per solver, no
/// exhaustive denominator.
[[nodiscard]] io::Table reward_table(const std::vector<CellStats>& cells,
                                     const std::vector<std::string>& solvers);

/// Mean ratio per solver pooled across all cells (the numbers quoted in
/// the paper's §VI-B prose, e.g. "greedy 3 ... about 84.22%").
[[nodiscard]] std::map<std::string, double> overall_ratio_means(
    const std::vector<CellStats>& cells,
    const std::vector<std::string>& solvers);

/// Mean reward per solver pooled across all cells (3-D comparison prose:
/// "greedy 1 gets about 61.04% of the reward that greedy 3 gets").
[[nodiscard]] std::map<std::string, double> overall_reward_means(
    const std::vector<CellStats>& cells,
    const std::vector<std::string>& solvers);

}  // namespace mmph::exp
