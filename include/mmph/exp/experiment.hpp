#pragma once

/// \file experiment.hpp
/// \brief Shared harness for the paper's evaluation sweeps (Figs. 4-9).
///
/// Each figure is a sweep over (n, k, r) cells; each cell averages many
/// seeded trials; each trial generates a workload, runs a set of solvers,
/// and (for the 2-D figures) divides by the exhaustive optimum to get
/// approximation ratios. Trials run in parallel on the global thread pool
/// with per-trial forked RNG streams, so results are independent of thread
/// count and schedule.

#include <map>
#include <string>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::exp {

/// One sweep cell: a fully specified instance distribution.
struct TrialSetup {
  std::size_t n = 40;
  std::size_t dim = 2;
  double box_side = 4.0;
  geo::Metric metric{};
  rnd::Placement placement = rnd::Placement::kUniform;
  rnd::WeightScheme weights = rnd::WeightScheme::kUniformInt;
  std::int64_t weight_lo = 1;
  std::int64_t weight_hi = 5;
  double radius = 1.0;
  std::size_t k = 2;
  core::RewardShape shape = core::RewardShape::kLinear;
  core::SolverConfig solver_config{};
};

/// Rewards from one generated instance.
struct TrialResult {
  /// Exhaustive optimum (NaN when the trial ran without it).
  double exhaustive_reward = 0.0;
  /// Per-solver achieved reward, keyed by solver name.
  std::map<std::string, double> rewards;
};

/// Runs the named solvers (and optionally the exhaustive baseline) on one
/// instance drawn from \p setup using \p rng.
[[nodiscard]] TrialResult run_trial(const TrialSetup& setup,
                                    const std::vector<std::string>& solvers,
                                    bool with_exhaustive, rnd::Rng& rng);

/// Aggregated statistics for one sweep cell.
struct CellStats {
  TrialSetup setup;
  std::size_t trials = 0;
  /// Achieved reward per solver.
  std::map<std::string, io::RunningStats> reward;
  /// reward / exhaustive per solver (present only when exhaustive ran).
  std::map<std::string, io::RunningStats> ratio;
  /// The exhaustive optimum itself.
  io::RunningStats exhaustive;
};

/// Runs \p trials independent trials of \p setup in parallel and
/// aggregates. Deterministic in (setup, solvers, base_seed, trials).
[[nodiscard]] CellStats run_cell(const TrialSetup& setup,
                                 const std::vector<std::string>& solvers,
                                 bool with_exhaustive, std::size_t trials,
                                 std::uint64_t base_seed);

/// The cross product sweep used by the figure benches: for every k in
/// \p ks and r in \p rs, runs a cell. Rows come back in (k, r) order.
[[nodiscard]] std::vector<CellStats> run_sweep(
    TrialSetup base, const std::vector<std::size_t>& ks,
    const std::vector<double>& rs, const std::vector<std::string>& solvers,
    bool with_exhaustive, std::size_t trials, std::uint64_t base_seed);

}  // namespace mmph::exp
