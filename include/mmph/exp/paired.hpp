#pragma once

/// \file paired.hpp
/// \brief Paired statistical comparison of two solvers over shared
/// instances.
///
/// The figure sweeps run every solver on the *same* seeded instances, so
/// differences can be tested pairwise — far more sensitive than comparing
/// means of independent runs. Used by the deviation-D1 bench to show that
/// "greedy2 beats greedy3" in this implementation is statistically solid,
/// not seed luck.

#include <cstddef>
#include <span>

namespace mmph::exp {

struct PairedComparison {
  std::size_t samples = 0;
  std::size_t wins_a = 0;  ///< a[i] > b[i] beyond the tie tolerance
  std::size_t wins_b = 0;
  std::size_t ties = 0;
  double mean_diff = 0.0;      ///< mean of a[i] - b[i]
  double stddev_diff = 0.0;    ///< sample stddev of the differences
  double t_statistic = 0.0;    ///< mean_diff / (stddev / sqrt(n))
  /// |t| > 1.96 under the large-sample normal approximation (valid for
  /// n >~ 30; for smaller n treat as indicative).
  bool significant_95 = false;
};

/// Compares paired samples a[i] vs b[i] (same instance i). \p tie_tol
/// absorbs floating-point noise. Requires equal nonzero lengths.
[[nodiscard]] PairedComparison paired_compare(std::span<const double> a,
                                              std::span<const double> b,
                                              double tie_tol = 1e-9);

}  // namespace mmph::exp
