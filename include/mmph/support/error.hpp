#pragma once

/// \file error.hpp
/// \brief Exception hierarchy for the mmph library.
///
/// All exceptions thrown by mmph derive from mmph::Error, which itself
/// derives from std::runtime_error, so callers may catch either.

#include <stdexcept>
#include <string>

namespace mmph {

/// Root of the mmph exception hierarchy.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A public API precondition was violated (bad argument).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// An operation was requested on an object in the wrong state.
class StateError : public Error {
 public:
  explicit StateError(const std::string& what) : Error(what) {}
};

/// Parsing of external input (CLI flags, CSV, trace files) failed.
class ParseError : public Error {
 public:
  explicit ParseError(const std::string& what) : Error(what) {}
};

namespace detail {

/// Builds the message for a failed MMPH_REQUIRE.
std::string format_requirement(const char* cond, const char* file, int line,
                               const char* msg);

}  // namespace detail
}  // namespace mmph
