#pragma once

/// \file assert.hpp
/// \brief Assertion and precondition-checking macros used across mmph.
///
/// Two levels are provided:
///   - MMPH_REQUIRE: precondition on public API arguments. Always enabled;
///     throws mmph::InvalidArgument so callers get a recoverable error with
///     file/line context instead of UB.
///   - MMPH_ASSERT: internal invariant. Enabled unless NDEBUG; aborts via
///     mmph::detail::assert_fail, which prints the condition and location.
///
/// Both macros evaluate their condition exactly once.

#include "mmph/support/error.hpp"

#include <cstdlib>

namespace mmph::detail {

/// Prints an assertion-failure diagnostic to stderr and aborts.
[[noreturn]] void assert_fail(const char* cond, const char* file, int line,
                              const char* msg) noexcept;

}  // namespace mmph::detail

#define MMPH_REQUIRE(cond, msg)                                           \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw ::mmph::InvalidArgument(::mmph::detail::format_requirement(   \
          #cond, __FILE__, __LINE__, (msg)));                             \
    }                                                                     \
  } while (false)

#ifdef NDEBUG
#define MMPH_ASSERT(cond, msg) \
  do {                         \
    (void)sizeof(cond);        \
  } while (false)
#else
#define MMPH_ASSERT(cond, msg)                                        \
  do {                                                                \
    if (!(cond)) {                                                    \
      ::mmph::detail::assert_fail(#cond, __FILE__, __LINE__, (msg));  \
    }                                                                 \
  } while (false)
#endif
