#pragma once

/// \file server.hpp
/// \brief Multi-shard epoll TCP server fronting a PlacementService.
///
/// The network boundary the ROADMAP's "serve millions of users" goal
/// needs: clients speak the wire protocol of wire.hpp over plain TCP, the
/// server decodes frames into serve::Requests, pushes them through the
/// service's bounded RequestBatcher, and writes the replies back.
///
///   sockets ──epoll──▶ read buffers ──FrameDecoder──▶ serve::Request
///                                                         │ submit_batch
///   sockets ◀─writev── frame queue ◀─encode─ Response ◀───┘ pump
///
/// The front end is `loops` independent event loops (epoll + eventfd
/// wakeup each). Every connection is owned by exactly one loop for its
/// whole life: only the owning loop reads, decodes, encodes, or flushes
/// it, so the per-connection path takes no locks — the only shared-state
/// crossings are the service funnel (its own mutex), the atomic metrics,
/// and the global open-connection count. Ownership is asserted (and
/// counted, mmph_net_ownership_checks_total) on every touch.
///
/// Accept distribution (NetServerConfig::accept_mode):
///   - kReusePort: every loop binds its own SO_REUSEPORT listener on the
///     shared port; the kernel spreads incoming connections. Zero accept
///     coordination — the default for loops > 1.
///   - kHandoff: loop 0 owns the single listener and hands accepted fds
///     to loops round-robin via a mailbox + eventfd wakeup. Deterministic
///     distribution, and the portable fallback where SO_REUSEPORT load
///     balancing is unavailable.
///   - kAuto: kReusePort when loops > 1, single listener otherwise.
///
/// With loops == 1 the schedule is exactly the historical single-threaded
/// loop — wait, accept, read + decode + submit in connection order, one
/// synchronous pump drain, then encode + flush — so requests decoded in
/// one iteration are submitted in arrival order and answered after a
/// single pump pass, and a workload replayed over loopback yields
/// bit-identical placements to the same workload applied in-process (the
/// chaos harness and the loopback goldens pin this). With loops > 1 each
/// loop keeps that deterministic schedule over its own connections;
/// cross-loop interleaving through the shared service follows real
/// arrival order.
///
/// Defenses, each surfaced as an explicit status instead of UB or silent
/// drops:
///   - malformed/hostile frames  -> typed decode error, kBadRequest
///     reply, connection dropped (framing is untrustworthy afterwards);
///   - too many connections      -> accept, reply kOverloaded, close;
///   - per-request deadline      -> batcher answers kTimeout, mutation
///     is NOT applied;
///   - idle connections          -> closed after idle_timeout;
///   - slow readers              -> bounded write buffers; a peer whose
///     backlog exceeds max_buffered_bytes is dropped.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mmph/net/epoll.hpp"
#include "mmph/net/metrics.hpp"
#include "mmph/net/socket.hpp"
#include "mmph/net/wire.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/serve/placement_service.hpp"

namespace mmph::net {

/// How accepted connections are distributed across event loops.
enum class AcceptMode {
  kAuto,       ///< kReusePort when loops > 1, plain single listener else
  kReusePort,  ///< one SO_REUSEPORT listener per loop, kernel-balanced
  kHandoff,    ///< loop 0 accepts, hands fds round-robin (deterministic)
};

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  /// Event loops (epoll shards). 1 reproduces the historical
  /// single-threaded deterministic schedule exactly.
  std::size_t loops = 1;
  /// Accept distribution policy; see AcceptMode.
  AcceptMode accept_mode = AcceptMode::kAuto;
  /// Connections beyond this (across all loops) are shed with
  /// kOverloaded.
  std::size_t max_connections = 64;
  /// A connection with no complete frame for this long is closed.
  std::chrono::milliseconds idle_timeout{30000};
  /// Deadline stamped on every request at decode time; exceeded while
  /// queued -> kTimeout.
  std::chrono::milliseconds request_deadline{1000};
  /// epoll_wait timeout — bounds stop() latency and idle-scan period.
  std::chrono::milliseconds poll_interval{20};
  /// Per-connection read+write backlog cap (slow-reader defense).
  std::size_t max_buffered_bytes = 8u << 20;
  /// Syscall hook table every read/write/accept goes through; null
  /// selects SocketOps::system(). Tests point this at a fault injector
  /// (mmph::chaos::FaultySocketOps). Must outlive the server.
  SocketOps* socket_ops = nullptr;
  /// Per-loop override of socket_ops (chaos: one injector stream per
  /// loop). Either empty or exactly `loops` entries, each non-null and
  /// outliving the server; when empty every loop shares socket_ops.
  std::vector<SocketOps*> loop_socket_ops;
};

class NetServer {
 public:
  /// Builds the owned PlacementService from \p service_config; \p pool
  /// follows the same convention as PlacementService (null = global).
  NetServer(serve::ServiceConfig service_config, NetServerConfig net_config,
            par::ThreadPool* pool = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens (throws NetError on failure) and starts the event
  /// loop threads. port() is valid once start() returns.
  void start();
  /// Stops the loops, closes every connection, and stops the service.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// Bound listening port (only meaningful after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  /// Event loops actually running (== config().loops after start()).
  [[nodiscard]] std::size_t loop_count() const noexcept {
    return loops_.size();
  }
  /// Accept mode resolved at start() (kAuto is replaced by the choice).
  [[nodiscard]] AcceptMode accept_mode() const noexcept {
    return resolved_mode_;
  }

  /// The owned service — for tests and in-process callers that want to
  /// compare against the direct API. Synchronous calls are safe while
  /// the server runs (the service serializes internally).
  [[nodiscard]] serve::PlacementService& service() noexcept {
    return *service_;
  }

  [[nodiscard]] NetMetricsSnapshot metrics() const {
    return metrics_.snapshot();
  }
  /// Per-loop traffic slice (accept distribution, throughput skew,
  /// ownership-check coverage). \p loop < loop_count().
  [[nodiscard]] NetLoopSnapshot loop_metrics(std::size_t loop) const {
    return metrics_.loop_snapshot(loop);
  }
  [[nodiscard]] const NetServerConfig& config() const noexcept {
    return config_;
  }

  /// Merged Prometheus-style exposition of the net, serve, and span
  /// registries — the blob a kStats request is answered with. Includes
  /// the labeled `mmph_net_loop_*{loop="i"}` per-loop series.
  [[nodiscard]] std::string render_stats() const;

 private:
  struct Connection;
  struct Loop;

  void run_loop(Loop& loop);
  void accept_pending(Loop& loop);
  void adopt_mailbox(Loop& loop);
  void adopt_connection(Loop& loop, Socket sock);
  /// Reads and decodes every complete frame, staging decoded requests on
  /// the connection; returns false when the connection must be dropped.
  [[nodiscard]] bool read_and_stage(Loop& loop, Connection& conn);
  /// Submits one connection's staged requests in one batch.
  void submit_staged(Loop& loop, Connection& conn);
  void collect_replies(Loop& loop, Connection& conn);
  /// Advances a kReplSubscribe subscriber: streams snapshot chunks while
  /// it is behind the WAL's retained window, then kReplOps batches from
  /// the in-memory tail, bounded by a write-buffer watermark.
  void pump_replication(Loop& loop, Connection& conn);
  [[nodiscard]] bool flush(Loop& loop, Connection& conn);
  void close_connection(Loop& loop, std::size_t index);
  void assert_owner(const Loop& loop, Connection& conn);

  NetServerConfig config_;
  std::unique_ptr<serve::PlacementService> service_;
  mutable NetMetrics metrics_;

  std::vector<std::unique_ptr<Loop>> loops_;
  std::uint16_t port_ = 0;
  AcceptMode resolved_mode_ = AcceptMode::kAuto;
  /// Open connections across all loops (shed policy is global).
  std::atomic<std::size_t> open_total_{0};

  std::atomic<bool> running_{false};
};

}  // namespace mmph::net
