#pragma once

/// \file server.hpp
/// \brief poll(2)-based TCP server fronting a PlacementService.
///
/// The network boundary the ROADMAP's "serve millions of users" goal
/// needs: clients speak the wire protocol of wire.hpp over plain TCP,
/// the server decodes frames into serve::Requests, pushes them through
/// the service's bounded RequestBatcher, and writes the replies back.
///
///   sockets ──poll──▶ read buffers ──FrameDecoder──▶ serve::Request
///                                                        │ submit
///   sockets ◀─flush── write buffers ◀─encode─ Response ◀─┘ pump
///
/// One thread runs the whole loop (accept, read, decode, pump, encode,
/// flush), which keeps request handling deterministic: requests decoded
/// in one poll iteration are submitted in arrival order and answered
/// after a single pump pass, so a workload replayed over loopback yields
/// bit-identical placements to the same workload applied in-process.
///
/// Defenses, each surfaced as an explicit status instead of UB or silent
/// drops:
///   - malformed/hostile frames  -> typed decode error, kBadRequest
///     reply, connection dropped (framing is untrustworthy afterwards);
///   - too many connections      -> accept, reply kOverloaded, close;
///   - per-request deadline      -> batcher answers kTimeout, mutation
///     is NOT applied;
///   - idle connections          -> closed after idle_timeout;
///   - slow readers              -> bounded write buffers; a peer whose
///     backlog exceeds max_buffered_bytes is dropped.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "mmph/net/metrics.hpp"
#include "mmph/net/socket.hpp"
#include "mmph/net/wire.hpp"
#include "mmph/parallel/thread_pool.hpp"
#include "mmph/serve/placement_service.hpp"

namespace mmph::net {

struct NetServerConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = kernel-assigned ephemeral port
  /// Connections beyond this are shed with kOverloaded.
  std::size_t max_connections = 64;
  /// A connection with no complete frame for this long is closed.
  std::chrono::milliseconds idle_timeout{30000};
  /// Deadline stamped on every request at decode time; exceeded while
  /// queued -> kTimeout.
  std::chrono::milliseconds request_deadline{1000};
  /// poll() timeout — bounds stop() latency and idle-scan period.
  std::chrono::milliseconds poll_interval{20};
  /// Per-connection read+write backlog cap (slow-reader defense).
  std::size_t max_buffered_bytes = 8u << 20;
  /// Syscall hook table every read/write/accept goes through; null selects
  /// SocketOps::system(). Tests point this at a fault injector
  /// (mmph::chaos::FaultySocketOps). Must outlive the server.
  SocketOps* socket_ops = nullptr;
};

class NetServer {
 public:
  /// Builds the owned PlacementService from \p service_config; \p pool
  /// follows the same convention as PlacementService (null = global).
  NetServer(serve::ServiceConfig service_config, NetServerConfig net_config,
            par::ThreadPool* pool = nullptr);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds + listens (throws NetError on failure) and starts the event
  /// loop thread. port() is valid once start() returns.
  void start();
  /// Stops the loop, closes every connection, and stops the service.
  /// Idempotent; also run by the destructor.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// Bound listening port (only meaningful after start()).
  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }

  /// The owned service — for tests and in-process callers that want to
  /// compare against the direct API. Synchronous calls are safe while
  /// the server runs (the service serializes internally).
  [[nodiscard]] serve::PlacementService& service() noexcept {
    return *service_;
  }

  [[nodiscard]] NetMetricsSnapshot metrics() const {
    return metrics_.snapshot();
  }
  [[nodiscard]] const NetServerConfig& config() const noexcept {
    return config_;
  }

  /// Merged Prometheus-style exposition of the net, serve, and span
  /// registries — the blob a kStats request is answered with.
  [[nodiscard]] std::string render_stats() const;

 private:
  struct Connection;

  void event_loop();
  void accept_pending();
  /// Reads, decodes, and submits every complete frame; returns false
  /// when the connection must be dropped.
  [[nodiscard]] bool read_and_submit(Connection& conn);
  void collect_replies(Connection& conn);
  /// Advances a kReplSubscribe subscriber: streams snapshot chunks while
  /// it is behind the WAL's retained window, then kReplOps batches from
  /// the in-memory tail, bounded by a write-buffer watermark.
  void pump_replication(Connection& conn);
  [[nodiscard]] bool flush(Connection& conn);
  void close_connection(std::size_t index);

  NetServerConfig config_;
  SocketOps& ops_;
  std::unique_ptr<serve::PlacementService> service_;
  NetMetrics metrics_;

  Socket listener_;
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Connection>> connections_;

  std::atomic<bool> running_{false};
  std::thread loop_;
};

}  // namespace mmph::net
