#pragma once

/// \file socket.hpp
/// \brief Thin RAII + error-handling layer over POSIX TCP sockets.
///
/// Everything the server and client need and nothing more: an owning fd
/// wrapper, loopback-friendly listen/connect helpers with explicit
/// timeouts, and nonblocking-IO result codes that distinguish "would
/// block" from "peer gone" so the event loop never has to inspect errno
/// itself. IPv4 only — the serving tier fronts placement shards on
/// private addresses, not the public internet.

#include <sys/types.h>
#include <sys/uio.h>

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "mmph/support/error.hpp"

namespace mmph::net {

/// Syscall hook table the socket layer routes every read / write / accept
/// through. The default implementation forwards to the real syscalls;
/// tests override single hooks to inject short reads, EINTR, ECONNRESET,
/// EAGAIN, or failed accepts deterministically (see mmph::chaos).
///
/// Hooks are errno-shaped: each has the exact return/errno contract of
/// the syscall it replaces, so the retry loops in sock_read/sock_write
/// treat injected faults identically to real ones. One SocketOps instance
/// must only be shared across threads if its implementation is
/// thread-safe (system() is; fault injectors serialize internally).
class SocketOps {
 public:
  virtual ~SocketOps() = default;

  /// ::read(fd, buf, cap) — returns bytes read, 0 on EOF, -1 + errno.
  virtual ssize_t read(int fd, std::uint8_t* buf, std::size_t cap);
  /// ::send(fd, buf, len, MSG_NOSIGNAL) — returns bytes sent, -1 + errno.
  virtual ssize_t write(int fd, const std::uint8_t* buf, std::size_t len);
  /// ::sendmsg(fd, iov..., MSG_NOSIGNAL) — gather-write of \p iovcnt
  /// buffers; returns bytes sent, -1 + errno. The event loops use this to
  /// flush many queued response frames in one syscall.
  virtual ssize_t writev(int fd, const iovec* iov, int iovcnt);
  /// ::accept(listener_fd, nullptr, nullptr) — returns fd or -1 + errno.
  virtual int accept(int listener_fd);

  /// Process-wide passthrough instance (stateless, thread-safe).
  [[nodiscard]] static SocketOps& system() noexcept;
};

/// A socket/system call failed (message carries the errno text).
class NetError : public Error {
 public:
  explicit NetError(const std::string& what) : Error(what) {}
};

/// Move-only owning file descriptor.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) noexcept : fd_(fd) {}
  ~Socket() { close(); }

  Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  Socket& operator=(Socket&& other) noexcept {
    if (this != &other) {
      close();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }
  [[nodiscard]] bool valid() const noexcept { return fd_ >= 0; }
  void close() noexcept;

 private:
  int fd_ = -1;
};

/// Outcome of one nonblocking read/write attempt.
enum class IoStatus {
  kOk,          ///< >= 1 byte moved
  kWouldBlock,  ///< EAGAIN — retry after poll()
  kClosed,      ///< orderly EOF from the peer
  kError,       ///< connection-fatal errno
};

struct IoResult {
  IoStatus status = IoStatus::kOk;
  std::size_t bytes = 0;
};

/// Binds and listens on \p host:\p port (port 0 picks an ephemeral port).
/// Returns the listening socket (nonblocking, SO_REUSEADDR) and the bound
/// port. With \p reuse_port, SO_REUSEPORT is set before bind so several
/// listeners can share one port and the kernel spreads accepts across
/// them (the multi-loop server's primary accept mode). \throws NetError
/// on failure.
[[nodiscard]] std::pair<Socket, std::uint16_t> tcp_listen(
    const std::string& host, std::uint16_t port, int backlog = 64,
    bool reuse_port = false);

/// Accepts one pending connection as a nonblocking socket. Returns an
/// invalid Socket when no connection is pending.
[[nodiscard]] Socket tcp_accept(const Socket& listener,
                                SocketOps& ops = SocketOps::system());

/// Connects to \p host:\p port within \p timeout (nonblocking connect +
/// poll). The returned socket is left *blocking*: the client uses poll()
/// per call for its send/recv deadlines. \throws NetError on refusal or
/// timeout.
[[nodiscard]] Socket tcp_connect(const std::string& host, std::uint16_t port,
                                 std::chrono::milliseconds timeout);

/// Nonblocking read into \p buf.
[[nodiscard]] IoResult sock_read(const Socket& sock, std::uint8_t* buf,
                                 std::size_t cap,
                                 SocketOps& ops = SocketOps::system());
/// Nonblocking write from \p buf.
[[nodiscard]] IoResult sock_write(const Socket& sock, const std::uint8_t* buf,
                                  std::size_t len,
                                  SocketOps& ops = SocketOps::system());

/// Nonblocking gather-write of \p iovcnt buffers (writev batching).
[[nodiscard]] IoResult sock_writev(const Socket& sock, const iovec* iov,
                                   int iovcnt,
                                   SocketOps& ops = SocketOps::system());

/// Blocking send of the whole buffer, polling for writability between
/// chunks; false once \p deadline passes or the connection dies.
[[nodiscard]] bool send_all(const Socket& sock, const std::uint8_t* buf,
                            std::size_t len,
                            std::chrono::steady_clock::time_point deadline,
                            SocketOps& ops = SocketOps::system());

/// Blocking read of at most \p cap bytes, waiting for readability until
/// \p deadline. bytes == 0 with kWouldBlock means the deadline passed.
[[nodiscard]] IoResult recv_some(
    const Socket& sock, std::uint8_t* buf, std::size_t cap,
    std::chrono::steady_clock::time_point deadline,
    SocketOps& ops = SocketOps::system());

}  // namespace mmph::net
