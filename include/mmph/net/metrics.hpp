#pragma once

/// \file metrics.hpp
/// \brief Operational counters of the socket layer (NetServer), on mmph::obs.
///
/// Mirrors serve::ServeMetrics one level down: connection lifecycle
/// (accepted / shed / closed), byte and frame volume in both directions,
/// protocol health (frame_errors, timeouts), and request latency measured
/// from first byte buffered to response encoded. Counters are lock-free
/// atomics and latency quantiles come from a fixed-bucket histogram, so
/// event loops record without taking any lock; the registry() can be
/// scraped remotely via the kStats wire request.
///
/// Multi-loop: the aggregate series (`mmph_net_*`) keep their pre-refactor
/// names and meanings — every event counts there regardless of which loop
/// produced it — and each event loop additionally gets a labeled channel
/// of `mmph_net_loop_*{loop="i"}` series in the same registry, so one
/// kStats scrape shows both the totals and the per-loop breakdown. Loop
/// channels are handed out as NetMetrics::Loop, whose record methods bump
/// the labeled series and the aggregate in one call.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mmph/obs/registry.hpp"

namespace mmph::net {

/// Point-in-time copy of every aggregate counter (plain data, safe to
/// print/ship).
struct NetMetricsSnapshot {
  std::uint64_t accepted = 0;           ///< connections accepted
  std::uint64_t rejected_overloaded = 0;  ///< shed by max-connections
  std::uint64_t closed_idle = 0;        ///< dropped by the idle deadline
  std::uint64_t closed_error = 0;       ///< dropped after a frame error
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;          ///< complete request frames decoded
  std::uint64_t frames_out = 0;         ///< response frames encoded
  std::uint64_t frame_errors = 0;       ///< typed decode failures
  std::uint64_t requests = 0;           ///< requests submitted to the service
  std::uint64_t timeouts = 0;           ///< answered kTimeout
  std::uint64_t ownership_checks = 0;   ///< loop-affinity assertions passed
  std::size_t open_connections = 0;

  double latency_p50_seconds = 0.0;
  double latency_p99_seconds = 0.0;
};

/// Per-loop slice of the counters that make a loop's share of the traffic
/// visible (accept distribution, throughput skew, ownership coverage).
struct NetLoopSnapshot {
  std::uint64_t accepted = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t requests = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t ownership_checks = 0;
  std::size_t open_connections = 0;
};

class NetMetrics {
 public:
  /// \p loops sizes the labeled per-loop channels (clamped to >= 1).
  explicit NetMetrics(std::size_t loops = 1);

  // --- aggregate recording (connection-agnostic events) ---
  void count_rejected_overloaded() { rejected_overloaded_->add(); }
  void count_closed_idle() { closed_idle_->add(); }
  void count_closed_error() { closed_error_->add(); }
  void count_frame_error() { frame_errors_->add(); }
  void count_timeout() { timeouts_->add(); }
  void set_open_connections(std::size_t n) {
    open_connections_->set(static_cast<double>(n));
  }
  void record_latency(double seconds) { latency_seconds_->observe(seconds); }

  /// Per-loop channel: records into the labeled `mmph_net_loop_*` series
  /// and the aggregate series together. Channels are independent atomics;
  /// each is written by exactly one event-loop thread.
  class Loop {
   public:
    void count_accepted() {
      agg_->accepted_->add();
      accepted_->add();
    }
    void count_frame_in() {
      agg_->frames_in_->add();
      frames_in_->add();
    }
    void count_frame_out() {
      agg_->frames_out_->add();
      frames_out_->add();
    }
    void count_request() {
      agg_->requests_->add();
      requests_->add();
    }
    void add_bytes_in(std::uint64_t n) {
      agg_->bytes_in_->add(n);
      bytes_in_->add(n);
    }
    void add_bytes_out(std::uint64_t n) {
      agg_->bytes_out_->add(n);
      bytes_out_->add(n);
    }
    void count_ownership_check() {
      agg_->ownership_checks_->add();
      ownership_checks_->add();
    }
    void set_open_connections(std::size_t n) {
      open_connections_->set(static_cast<double>(n));
    }

   private:
    friend class NetMetrics;
    NetMetrics* agg_ = nullptr;
    obs::Counter* accepted_ = nullptr;
    obs::Counter* frames_in_ = nullptr;
    obs::Counter* frames_out_ = nullptr;
    obs::Counter* requests_ = nullptr;
    obs::Counter* bytes_in_ = nullptr;
    obs::Counter* bytes_out_ = nullptr;
    obs::Counter* ownership_checks_ = nullptr;
    obs::Gauge* open_connections_ = nullptr;
  };

  [[nodiscard]] Loop& loop(std::size_t index) { return loops_.at(index); }
  [[nodiscard]] std::size_t loop_count() const noexcept {
    return loops_.size();
  }

  [[nodiscard]] NetMetricsSnapshot snapshot() const;
  [[nodiscard]] NetLoopSnapshot loop_snapshot(std::size_t index) const;

  /// Underlying registry, for Prometheus-style exposition (kStats scrape).
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  void reset() { registry_.reset(); }

 private:
  obs::Registry registry_;
  obs::Counter* accepted_;
  obs::Counter* rejected_overloaded_;
  obs::Counter* closed_idle_;
  obs::Counter* closed_error_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* frames_in_;
  obs::Counter* frames_out_;
  obs::Counter* frame_errors_;
  obs::Counter* requests_;
  obs::Counter* timeouts_;
  obs::Counter* ownership_checks_;
  obs::Gauge* open_connections_;
  obs::Histogram* latency_seconds_;
  std::vector<Loop> loops_;
};

}  // namespace mmph::net
