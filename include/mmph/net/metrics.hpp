#pragma once

/// \file metrics.hpp
/// \brief Operational counters of the socket layer (NetServer), on mmph::obs.
///
/// Mirrors serve::ServeMetrics one level down: connection lifecycle
/// (accepted / shed / closed), byte and frame volume in both directions,
/// protocol health (frame_errors, timeouts), and request latency measured
/// from first byte buffered to response encoded. Counters are lock-free
/// atomics and latency quantiles come from a fixed-bucket histogram, so
/// the single-threaded event loop records without taking any lock; the
/// registry() can be scraped remotely via the kStats wire request.

#include <cstddef>
#include <cstdint>

#include "mmph/obs/registry.hpp"

namespace mmph::net {

/// Point-in-time copy of every counter (plain data, safe to print/ship).
struct NetMetricsSnapshot {
  std::uint64_t accepted = 0;           ///< connections accepted
  std::uint64_t rejected_overloaded = 0;  ///< shed by max-connections
  std::uint64_t closed_idle = 0;        ///< dropped by the idle deadline
  std::uint64_t closed_error = 0;       ///< dropped after a frame error
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;          ///< complete request frames decoded
  std::uint64_t frames_out = 0;         ///< response frames encoded
  std::uint64_t frame_errors = 0;       ///< typed decode failures
  std::uint64_t requests = 0;           ///< requests submitted to the service
  std::uint64_t timeouts = 0;           ///< answered kTimeout
  std::size_t open_connections = 0;

  double latency_p50_seconds = 0.0;
  double latency_p99_seconds = 0.0;
};

class NetMetrics {
 public:
  NetMetrics();

  void count_accepted() { accepted_->add(); }
  void count_rejected_overloaded() { rejected_overloaded_->add(); }
  void count_closed_idle() { closed_idle_->add(); }
  void count_closed_error() { closed_error_->add(); }
  void add_bytes_in(std::uint64_t n) { bytes_in_->add(n); }
  void add_bytes_out(std::uint64_t n) { bytes_out_->add(n); }
  void count_frame_in() { frames_in_->add(); }
  void count_frame_out() { frames_out_->add(); }
  void count_frame_error() { frame_errors_->add(); }
  void count_request() { requests_->add(); }
  void count_timeout() { timeouts_->add(); }
  void set_open_connections(std::size_t n) {
    open_connections_->set(static_cast<double>(n));
  }
  void record_latency(double seconds) { latency_seconds_->observe(seconds); }

  [[nodiscard]] NetMetricsSnapshot snapshot() const;

  /// Underlying registry, for Prometheus-style exposition (kStats scrape).
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

  void reset() { registry_.reset(); }

 private:
  obs::Registry registry_;
  obs::Counter* accepted_;
  obs::Counter* rejected_overloaded_;
  obs::Counter* closed_idle_;
  obs::Counter* closed_error_;
  obs::Counter* bytes_in_;
  obs::Counter* bytes_out_;
  obs::Counter* frames_in_;
  obs::Counter* frames_out_;
  obs::Counter* frame_errors_;
  obs::Counter* requests_;
  obs::Counter* timeouts_;
  obs::Gauge* open_connections_;
  obs::Histogram* latency_seconds_;
};

}  // namespace mmph::net
