#pragma once

/// \file metrics.hpp
/// \brief Operational counters of the socket layer (NetServer).
///
/// Mirrors serve::ServeMetrics one level down: connection lifecycle
/// (accepted / shed / closed), byte and frame volume in both directions,
/// protocol health (frame_errors, timeouts), and request latency
/// percentiles measured from first byte buffered to response encoded.
/// Mutex-guarded like ServeMetrics — the event loop records a handful of
/// times per poll iteration, so contention is irrelevant.

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

namespace mmph::net {

/// Point-in-time copy of every counter (plain data, safe to print/ship).
struct NetMetricsSnapshot {
  std::uint64_t accepted = 0;           ///< connections accepted
  std::uint64_t rejected_overloaded = 0;  ///< shed by max-connections
  std::uint64_t closed_idle = 0;        ///< dropped by the idle deadline
  std::uint64_t closed_error = 0;       ///< dropped after a frame error
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t frames_in = 0;          ///< complete request frames decoded
  std::uint64_t frames_out = 0;         ///< response frames encoded
  std::uint64_t frame_errors = 0;       ///< typed decode failures
  std::uint64_t requests = 0;           ///< requests submitted to the service
  std::uint64_t timeouts = 0;           ///< answered kTimeout
  std::size_t open_connections = 0;

  double latency_p50_seconds = 0.0;
  double latency_p99_seconds = 0.0;
};

class NetMetrics {
 public:
  void count_accepted();
  void count_rejected_overloaded();
  void count_closed_idle();
  void count_closed_error();
  void add_bytes_in(std::uint64_t n);
  void add_bytes_out(std::uint64_t n);
  void count_frame_in();
  void count_frame_out();
  void count_frame_error();
  void count_request();
  void count_timeout();
  void set_open_connections(std::size_t n);
  void record_latency(double seconds);

  [[nodiscard]] NetMetricsSnapshot snapshot() const;

  void reset();

 private:
  /// Retained latency samples are capped; beyond the cap the oldest half
  /// is dropped so percentiles track recent behavior.
  static constexpr std::size_t kMaxLatencySamples = 1 << 16;

  mutable std::mutex mutex_;
  NetMetricsSnapshot counters_;
  std::vector<double> latency_seconds_;
};

}  // namespace mmph::net
