#pragma once

/// \file replica.hpp
/// \brief Replica-side replication agent: subscribe, ingest, lag, promote.
///
/// A ReplicaAgent connects a local read-only PlacementService to a
/// primary's NetServer and keeps it in sync:
///
///   1. connect, send kReplSubscribe carrying the local store epoch;
///   2. ingest the stream — kReplSnapshot chunks are reassembled and
///      installed via service.restore_from(), kReplOps blobs are decoded
///      record-by-record (each CRC-checked by the wal codec) and applied
///      via service.apply_replicated();
///   3. publish lag: every stream frame carries the primary's epoch, so
///      `primary_epoch - local_epoch` is the exact op count the replica
///      trails by — exported as the mmph_repl_lag_ops gauge;
///   4. on any transport error, chain break, or decode failure: drop the
///      connection, back off, reconnect, and resubscribe from the current
///      local epoch (the primary answers with tail ops or a fresh
///      snapshot, whichever its retained window allows).
///
/// Failover is the caller's decision, not the agent's: stop() the agent,
/// then service.set_read_only(false) — the replica's store is a bitwise
/// copy of the primary's at its last synced epoch, so a promoted replica
/// answers exactly what the primary would have.
///
/// Thread model: one owned thread runs the whole loop; the public
/// accessors read atomics.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "mmph/net/socket.hpp"
#include "mmph/net/wire.hpp"
#include "mmph/serve/fault.hpp"
#include "mmph/serve/placement_service.hpp"

namespace mmph::net {

struct ReplicaAgentConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{1000};
  std::chrono::milliseconds send_timeout{1000};
  /// How long one receive waits before re-checking the stop flag.
  std::chrono::milliseconds poll_interval{20};
  /// Pause before reconnecting after a failed or dropped session.
  std::chrono::milliseconds retry_backoff{100};
  /// Syscall hook table (null = SocketOps::system()); must outlive the
  /// agent. Tests point this at chaos::FaultySocketOps.
  SocketOps* socket_ops = nullptr;
  /// Fault seam; consulted at replica.lag before applying each stream
  /// frame (firing delays the apply by retry_backoff, inflating lag).
  serve::FaultHook fault_hook{};
};

class ReplicaAgent {
 public:
  /// \p service is the local store to keep in sync; the agent puts it in
  /// read-only mode on start(). Must outlive the agent.
  ReplicaAgent(serve::PlacementService& service, ReplicaAgentConfig config);
  ~ReplicaAgent();

  ReplicaAgent(const ReplicaAgent&) = delete;
  ReplicaAgent& operator=(const ReplicaAgent&) = delete;

  void start();
  /// Stops the ingest thread (idempotent; also run by the destructor).
  /// The service stays read-only — promotion is an explicit caller step.
  void stop();

  [[nodiscard]] bool connected() const noexcept {
    return connected_.load(std::memory_order_relaxed);
  }
  /// Highest primary epoch any stream frame announced (0 before the
  /// first frame).
  [[nodiscard]] std::uint64_t primary_epoch() const noexcept {
    return primary_epoch_.load(std::memory_order_relaxed);
  }
  /// Ops the local store trails the announced primary epoch by.
  [[nodiscard]] std::uint64_t lag_ops() const;
  [[nodiscard]] std::uint64_t snapshots_installed() const noexcept {
    return installs_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t records_applied() const noexcept {
    return records_applied_.load(std::memory_order_relaxed);
  }
  /// Sessions that ended in an error/disconnect (diagnostics).
  [[nodiscard]] std::uint64_t resyncs() const noexcept {
    return resyncs_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] SocketOps& ops() const noexcept {
    return config_.socket_ops != nullptr ? *config_.socket_ops
                                         : SocketOps::system();
  }
  void run();
  /// One connection lifetime: subscribe + ingest until error or stop().
  void session();
  /// Applies one decoded stream frame. Returns false when the session
  /// must be abandoned (chain break, malformed payload).
  [[nodiscard]] bool ingest(const ReplFrame& frame);
  void publish_lag();

  serve::PlacementService& service_;
  ReplicaAgentConfig config_;

  std::atomic<bool> running_{false};
  std::atomic<bool> connected_{false};
  std::atomic<std::uint64_t> primary_epoch_{0};
  std::atomic<std::uint64_t> installs_{0};
  std::atomic<std::uint64_t> records_applied_{0};
  std::atomic<std::uint64_t> resyncs_{0};

  /// Snapshot chunk reassembly (session-local, owned by the thread).
  std::vector<std::uint8_t> snapshot_buf_;
  bool snapshot_open_ = false;

  std::thread thread_;
};

}  // namespace mmph::net
