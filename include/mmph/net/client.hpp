#pragma once

/// \file client.hpp
/// \brief Blocking TCP client for the placement service wire protocol.
///
/// One call = one request frame out, one response frame back, with
/// explicit connect/send/recv timeouts and reconnect-on-failure: a call
/// that hits a dead or timed-out connection tears it down and retries on
/// a fresh one up to max_attempts times before throwing NetError. All
/// four request kinds are idempotent (upsert, remove, query, evaluate),
/// so a retry after a half-delivered request is safe.
///
/// Besides the blocking one-at-a-time calls (the default), the client
/// offers *bounded pipelining*: pipeline_*() sends a request without
/// waiting for its reply, up to pipeline_window frames in flight, and
/// drain_one() blocks for the oldest outstanding reply (the server
/// answers each connection strictly FIFO). Pipelining trades the retry
/// safety net for throughput: a transport failure mid-pipeline fails
/// every in-flight request, because the client cannot know which of them
/// the server executed. Failed slots are NOT silently dropped — each one
/// still gets exactly one drain_one() completion, a synthesized response
/// with status kConnectionLost, so a bulk loader can tell "request i
/// definitely answered" from "request i in limbo" without bookkeeping of
/// its own.
///
/// Thread compatibility: one NetClient per thread. Calls serialize on the
/// single connection; there is no cross-thread locking by design — load
/// generators want N independent clients, not N threads on one socket.

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "mmph/net/socket.hpp"
#include "mmph/net/wire.hpp"
#include "mmph/serve/instance_store.hpp"

namespace mmph::net {

struct NetClientConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
  std::chrono::milliseconds connect_timeout{1000};
  std::chrono::milliseconds send_timeout{1000};
  std::chrono::milliseconds recv_timeout{5000};
  /// Total tries per call (first attempt + reconnect retries).
  std::size_t max_attempts = 2;
  /// Max requests a pipeline_*() call may leave in flight before
  /// drain_one() must be called. Only the pipelined API is bounded by
  /// this; the blocking calls always run one at a time.
  std::size_t pipeline_window = 32;
  /// Syscall hook table every send/recv goes through; null selects
  /// SocketOps::system(). Tests point this at a fault injector
  /// (mmph::chaos::FaultySocketOps). Must outlive the client.
  SocketOps* socket_ops = nullptr;
};

class NetClient {
 public:
  explicit NetClient(NetClientConfig config);
  ~NetClient();

  NetClient(const NetClient&) = delete;
  NetClient& operator=(const NetClient&) = delete;

  /// Each call returns the decoded response frame (status inspected by
  /// the caller — a kTimeout/kRejected answer is a *delivered* answer,
  /// not a transport failure). \throws NetError when no attempt got an
  /// answer; \throws InvalidArgument on protocol-limit violations.
  ResponseFrame add_users(std::vector<serve::UserRecord> users);
  ResponseFrame remove_users(std::vector<std::uint64_t> ids);
  ResponseFrame query_placement();
  ResponseFrame evaluate(const geo::PointSet& centers);
  /// Scrapes the server's metrics registries; the reply's `stats` field
  /// holds the Prometheus-style exposition text.
  ResponseFrame stats();

  // --- bounded pipelining (load generators, bulk loading) ---

  /// Sends the request immediately and returns its request id without
  /// waiting for the reply. At most pipeline_window requests may be in
  /// flight; exceeding it throws InvalidArgument (drain first). Unlike
  /// the blocking calls there is NO reconnect-retry: a transport failure
  /// throws NetError and moves every in-flight request to the aborted
  /// queue, where drain_one() answers each with kConnectionLost. Blocking
  /// calls require an empty pipeline (InvalidArgument otherwise) — the
  /// two modes must not interleave on one connection.
  std::uint64_t pipeline_add_users(std::vector<serve::UserRecord> users);
  std::uint64_t pipeline_remove_users(std::vector<std::uint64_t> ids);
  std::uint64_t pipeline_query_placement();
  std::uint64_t pipeline_evaluate(const geo::PointSet& centers);
  /// Blocks for the oldest in-flight reply (FIFO). Requests whose
  /// connection died are served first (they are oldest by construction),
  /// as synthesized kConnectionLost responses — never dropped, never
  /// answered twice. \throws NetError on transport/decode failure (the
  /// remaining pipeline moves to the aborted queue), InvalidArgument when
  /// nothing is in flight.
  [[nodiscard]] ResponseFrame drain_one();
  /// Pipelined requests not yet drained, including aborted ones still
  /// awaiting their kConnectionLost completion.
  [[nodiscard]] std::size_t inflight() const noexcept {
    return aborted_.size() + inflight_.size();
  }

  [[nodiscard]] bool connected() const noexcept { return sock_.valid(); }
  void disconnect() noexcept;

  /// Transport-level retries performed so far (diagnostics).
  [[nodiscard]] std::uint64_t reconnects() const noexcept {
    return reconnects_;
  }

 private:
  [[nodiscard]] SocketOps& ops() const noexcept {
    return config_.socket_ops != nullptr ? *config_.socket_ops
                                         : SocketOps::system();
  }
  void ensure_connected();
  [[nodiscard]] ResponseFrame roundtrip(RequestFrame frame);
  /// Sends the encoded frame and reads until the matching response (or a
  /// connection-level request_id==0 notice) arrives. Throws NetError on
  /// any transport or decode failure.
  [[nodiscard]] ResponseFrame attempt(const std::vector<std::uint8_t>& bytes);

  std::uint64_t pipeline_send(RequestFrame frame);

  NetClientConfig config_;
  Socket sock_;
  FrameDecoder decoder_;
  std::uint64_t next_request_id_ = 1;
  std::uint64_t reconnects_ = 0;
  /// Request ids sent via pipeline_*() and not yet drained, oldest first.
  std::deque<std::uint64_t> inflight_;
  /// Ids whose connection died before their reply arrived, oldest first.
  /// drain_one() answers these with kConnectionLost before touching the
  /// socket; they predate everything in inflight_ by construction.
  std::deque<std::uint64_t> aborted_;
};

}  // namespace mmph::net
