#pragma once

/// \file epoll.hpp
/// \brief RAII wrappers over epoll(7) and eventfd(2) for the event loops.
///
/// Each NetServer event loop owns one EpollSet (its readiness source) and
/// one Wakeup (how other threads interrupt its epoll_wait: stop(), or a
/// handoff of a freshly accepted connection). Both throw NetError on
/// construction failure; operations on a constructed object never throw —
/// a failed EPOLL_CTL_DEL on an already-closed fd is not an event-loop
/// error.
///
/// The wrappers are deliberately thin: readiness is *only* used to decide
/// which connections to visit this iteration. Ordering — who is read
/// first, who is flushed first — stays with the loop's own fixed
/// connection order, which is what keeps `--loops 1` replay deterministic
/// (see DESIGN.md §15).

#include <sys/epoll.h>

#include <cstdint>

#include "mmph/net/socket.hpp"

namespace mmph::net {

/// Owning epoll instance. Level-triggered throughout: the loops re-derive
/// interest from connection state every pass, so edge semantics would buy
/// nothing and cost missed-wakeup bugs.
class EpollSet {
 public:
  /// \throws NetError when epoll_create1 fails.
  EpollSet();
  ~EpollSet();

  EpollSet(const EpollSet&) = delete;
  EpollSet& operator=(const EpollSet&) = delete;

  /// Registers \p fd for \p events with \p tag echoed in wait() results.
  void add(int fd, std::uint32_t events, void* tag) noexcept;
  /// Changes the registered event mask of \p fd.
  void mod(int fd, std::uint32_t events, void* tag) noexcept;
  /// Unregisters \p fd (no-op if it was never added or already closed).
  void del(int fd) noexcept;

  /// Waits up to \p timeout_ms for events; returns the number written to
  /// \p out (0 on timeout or EINTR).
  int wait(epoll_event* out, int cap, int timeout_ms) noexcept;

  [[nodiscard]] int fd() const noexcept { return fd_; }

 private:
  int fd_ = -1;
};

/// Nonblocking eventfd used to interrupt an epoll_wait from another
/// thread. signal() is async-signal-safe-shaped (one write syscall) and
/// may be called concurrently by any number of threads.
class Wakeup {
 public:
  /// \throws NetError when eventfd creation fails.
  Wakeup();
  ~Wakeup();

  Wakeup(const Wakeup&) = delete;
  Wakeup& operator=(const Wakeup&) = delete;

  [[nodiscard]] int fd() const noexcept { return fd_; }

  /// Makes the owning loop's next (or current) epoll_wait return.
  void signal() noexcept;
  /// Consumes pending signals; called by the owning loop once woken.
  void drain() noexcept;

 private:
  int fd_ = -1;
};

}  // namespace mmph::net
