#pragma once

/// \file wire.hpp
/// \brief Length-prefixed binary wire protocol of the placement service.
///
/// Everything that crosses the socket is a *frame*: a fixed 20-byte header
/// followed by a typed payload. All integers are little-endian regardless
/// of host byte order (encoded byte-by-byte, so the format is identical on
/// big-endian machines); doubles travel as the little-endian bytes of
/// their IEEE-754 bit pattern.
///
///   offset  size  field
///        0     4  magic      0x4D4D5048 ("HPMM" on the wire, LE)
///        4     1  version    kWireVersion (currently 3)
///        5     1  type       FrameType
///        6     2  reserved   must be zero
///        8     8  request_id caller-chosen; echoed in the response
///       16     4  payload_len  bytes following the header
///
/// v3 adds the replication frames: kReplSubscribe (a replica asks the
/// primary to stream the log from an epoch), kReplSnapshot (a chunked
/// full-store image for subscribers behind the retained log window), and
/// kReplOps (a batch of encoded WAL records). Snapshot and ops frames are
/// primary->replica pushes, not responses — they carry the subscribe
/// request_id so one connection can interleave replies and stream.
///
/// The decoder is deliberately paranoid: frames from the network are
/// *hostile input*. Every length is bounds-checked against hard limits
/// (kMaxPayloadBytes, kMaxBatchCount, kMaxDim) before any allocation
/// sized by it, every double is required to be finite where the store
/// requires finiteness, and any violation yields a typed DecodeStatus —
/// never UB, never an exception, never a partially decoded frame. After
/// the first error the decoder is poisoned (framing can no longer be
/// trusted) and the owning connection must be dropped.

#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "mmph/geometry/point_set.hpp"
#include "mmph/serve/instance_store.hpp"
#include "mmph/serve/request.hpp"

namespace mmph::net {

/// First four header bytes; rejects non-mmph peers and desynced streams.
inline constexpr std::uint32_t kMagic = 0x4D4D5048u;  // LE bytes 0x48 0x50 0x4D 0x4D ("HPMM" on the wire)
/// Bumped on any incompatible layout change; decoders reject mismatches.
/// v2: kStats request, response flags byte (centers | stats blob),
/// WireStatus::kInternalError. v3: replication frames (kReplSubscribe /
/// kReplSnapshot / kReplOps).
inline constexpr std::uint8_t kWireVersion = 3;
inline constexpr std::size_t kHeaderBytes = 20;
/// Hard cap on one frame's payload: bigger frames are rejected before any
/// buffering decision is made from the attacker-controlled length.
inline constexpr std::uint32_t kMaxPayloadBytes = 1u << 22;  // 4 MiB
/// Hard cap on users / ids / centers carried by a single frame.
inline constexpr std::uint32_t kMaxBatchCount = 1u << 16;
/// Hard cap on the interest-space dimension.
inline constexpr std::uint16_t kMaxDim = 1024;

enum class FrameType : std::uint8_t {
  kAddUsers = 1,        ///< request: upsert a batch of users
  kRemoveUsers = 2,     ///< request: remove a batch of ids
  kQueryPlacement = 3,  ///< request: current placement (empty payload)
  kEvaluate = 4,        ///< request: f(centers) on the live population
  kResponse = 5,        ///< reply to any request
  kStats = 6,           ///< request: metrics exposition (empty payload)
  kReplSubscribe = 7,   ///< request: stream the log from have_epoch
  kReplSnapshot = 8,    ///< push: one chunk of a full-store snapshot
  kReplOps = 9,         ///< push: a batch of encoded WAL records
};

/// Response status on the wire: serve::ResponseStatus plus the
/// network-only condition kOverloaded.
enum class WireStatus : std::uint8_t {
  kOk = 0,
  kTimeout = 1,        ///< deadline passed before the batch was drained
  kRejected = 2,       ///< service queue was full (backpressure)
  kShutdown = 3,       ///< server stopped before processing
  kOverloaded = 4,     ///< connection shed by the max-connections policy
  kBadRequest = 5,     ///< frame rejected by decoder or request validation
  kInternalError = 6,  ///< server-side failure while processing
  /// Client-synthesized only: the connection died while this pipelined
  /// request was in flight, so whether the server executed it is unknown.
  /// Never sent on the wire — the decoder rejects the value (a server
  /// cannot claim a connection it is answering on was lost).
  kConnectionLost = 7,
};

/// Every way a frame can fail to decode. kNeedMoreData is the only
/// non-error value besides kOk; everything else poisons the stream.
enum class DecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMoreData,      ///< frame incomplete; feed more bytes
  kBadMagic,          ///< header does not start with kMagic
  kBadVersion,        ///< version byte != kWireVersion
  kBadType,           ///< unknown FrameType
  kOversizedFrame,    ///< payload_len > kMaxPayloadBytes
  kOversizedBatch,    ///< count field > kMaxBatchCount
  kBadDimension,      ///< dim == 0 or dim > kMaxDim
  kMalformedPayload,  ///< payload size/content inconsistent with its type
};

[[nodiscard]] const char* to_string(FrameType type) noexcept;
[[nodiscard]] const char* to_string(WireStatus status) noexcept;
[[nodiscard]] const char* to_string(DecodeStatus status) noexcept;

/// serve -> wire status (lossless: every serve status has a wire value).
[[nodiscard]] WireStatus to_wire_status(serve::ResponseStatus status) noexcept;

/// One decoded request frame (type selects which payload field is live).
struct RequestFrame {
  FrameType type = FrameType::kQueryPlacement;
  std::uint64_t request_id = 0;
  std::vector<serve::UserRecord> users;  ///< kAddUsers
  std::vector<std::uint64_t> ids;        ///< kRemoveUsers
  std::optional<geo::PointSet> centers;  ///< kEvaluate
  std::uint64_t have_epoch = 0;          ///< kReplSubscribe
};

/// One replication push frame (kReplSnapshot chunk or kReplOps batch).
/// The payload blob is opaque at the wire layer: snapshot-file bytes or
/// concatenated encoded WAL records, each guarded by its own CRC — the
/// replica validates content with the wal codecs when applying.
struct ReplFrame {
  FrameType type = FrameType::kReplOps;
  std::uint64_t request_id = 0;  ///< echoes the kReplSubscribe id
  /// kReplSnapshot: the snapshot's epoch (same for every chunk);
  /// kReplOps: store epoch after applying every record in the blob.
  std::uint64_t epoch = 0;
  /// kReplSnapshot only: bit0 = first chunk, bit1 = last chunk.
  std::uint8_t flags = 0;
  std::uint32_t count = 0;  ///< kReplOps only: whole records in the blob
  std::vector<std::uint8_t> blob;
};

/// kReplSnapshot chunk flag bits.
inline constexpr std::uint8_t kReplChunkFirst = 1;
inline constexpr std::uint8_t kReplChunkLast = 2;
/// Snapshot chunk size: comfortably under kMaxPayloadBytes with header
/// fields, large enough that a 1M-user store streams in ~tens of frames.
inline constexpr std::size_t kReplChunkBytes = 1u << 20;

/// One decoded response frame.
struct ResponseFrame {
  std::uint64_t request_id = 0;
  WireStatus status = WireStatus::kOk;
  std::uint64_t epoch = 0;
  double objective = 0.0;
  std::optional<geo::PointSet> centers;  ///< kQueryPlacement answers
  std::optional<std::string> stats;      ///< kStats answers (exposition text)
};

/// Appends the encoded frame to \p out. \throws InvalidArgument when the
/// frame violates the protocol limits (outbound frames are trusted code,
/// so a violation is a caller bug, not a peer attack).
void encode_request(const RequestFrame& frame, std::vector<std::uint8_t>& out);
void encode_response(const ResponseFrame& frame,
                     std::vector<std::uint8_t>& out);
void encode_repl(const ReplFrame& frame, std::vector<std::uint8_t>& out);

/// Incremental frame decoder: feed() raw socket bytes, next() extracts
/// complete frames one at a time. Frames decode atomically — next()
/// either returns a fully validated frame (kOk), asks for more bytes
/// (kNeedMoreData), or reports a typed error, after which the decoder is
/// poisoned and every later next() repeats the error.
class FrameDecoder {
 public:
  struct Result {
    DecodeStatus status = DecodeStatus::kNeedMoreData;
    /// Header request id when the header parsed, 0 otherwise — lets a
    /// server address its kBadRequest reply even for malformed payloads.
    std::uint64_t request_id = 0;
    bool is_response = false;
    bool is_repl = false;  ///< kReplSnapshot / kReplOps push frame
    RequestFrame request;
    ResponseFrame response;
    ReplFrame repl;
  };

  void feed(const std::uint8_t* data, std::size_t n);

  /// Extracts the next frame. O(1) amortized: consumed bytes are
  /// reclaimed lazily once they exceed half the buffer.
  [[nodiscard]] Result next();

  [[nodiscard]] std::size_t buffered() const noexcept {
    return buffer_.size() - offset_;
  }
  [[nodiscard]] bool poisoned() const noexcept { return poisoned_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t offset_ = 0;  ///< consumed prefix of buffer_
  bool poisoned_ = false;
  DecodeStatus poison_status_ = DecodeStatus::kOk;
  std::uint64_t poison_request_id_ = 0;
};

}  // namespace mmph::net
