#pragma once

/// \file stats.hpp
/// \brief Descriptive statistics for experiment aggregation.
///
/// Accumulator uses Welford's online algorithm so long sweeps do not lose
/// precision; Summary adds order statistics computed from a retained sample.

#include <cstddef>
#include <vector>

namespace mmph::io {

/// Streaming mean/variance accumulator (Welford). O(1) memory.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 when fewer than 2 samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Half-width of the normal-approximation 95% confidence interval.
  [[nodiscard]] double ci95_half_width() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

  /// Merges another accumulator (parallel-reduction friendly).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Linear-interpolated percentile of a sample; \p q in [0, 1].
/// The input vector is copied; use percentile_inplace to avoid the copy.
[[nodiscard]] double percentile(std::vector<double> sample, double q);

/// As percentile() but sorts \p sample in place.
[[nodiscard]] double percentile_inplace(std::vector<double>& sample, double q);

/// Jain's fairness index: (sum x)^2 / (n * sum x^2); 1 = perfectly fair.
/// Returns 1 for an empty or all-zero input.
[[nodiscard]] double jain_fairness(const std::vector<double>& x);

}  // namespace mmph::io
