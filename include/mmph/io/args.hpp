#pragma once

/// \file args.hpp
/// \brief Minimal command-line flag parser for benches and examples.
///
/// Grammar: `--name=value`, `--name value`, or bare `--name` (boolean).
/// Every reproduction binary shares the same flags (--trials, --seed,
/// --csv, --threads, ...) through this parser; unknown flags are reported
/// by finish() so typos fail loudly instead of silently running defaults.

#include <cstdint>
#include <map>
#include <set>
#include <string>

namespace mmph::io {

class Args {
 public:
  Args(int argc, const char* const* argv);

  /// True when the flag was passed (with or without a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Typed getters with defaults. Throw ParseError on malformed values.
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback);
  [[nodiscard]] double get_double(const std::string& name, double fallback);
  [[nodiscard]] std::string get_string(const std::string& name,
                                       std::string fallback);
  /// Bare `--name` or `--name=true|1`; `--name=false|0` yields false.
  [[nodiscard]] bool get_flag(const std::string& name);

  /// Throws ParseError if any passed flag was never consumed by a getter
  /// (or by has()). Call once after all gets.
  void finish() const;

  [[nodiscard]] const std::string& program() const noexcept {
    return program_;
  }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::set<std::string> consumed_;
};

}  // namespace mmph::io
