#pragma once

/// \file table.hpp
/// \brief Aligned ASCII table printing for benchmark/report output.
///
/// Every fig*/table* reproduction binary prints its rows through Table so
/// the console output reads like the paper's tables. Cells are strings;
/// numeric helpers format with fixed precision.

#include <iosfwd>
#include <string>
#include <vector>

namespace mmph::io {

/// Formats \p v with \p decimals digits after the point.
[[nodiscard]] std::string fixed(double v, int decimals = 4);

/// Formats \p v as a percentage ("84.22%") with \p decimals digits.
[[nodiscard]] std::string percent(double v, int decimals = 2);

/// A simple right-padded ASCII table.
class Table {
 public:
  /// Column headers define the column count; later rows must match it.
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept {
    return headers_.size();
  }

  /// Renders with a header rule, e.g.:
  ///   k    r     ratio2   ratio3
  ///   ---  ----  -------  -------
  ///   2    1.0   0.5597   0.8422
  void print(std::ostream& os) const;

  /// Renders as comma-separated values (headers first). Cells containing
  /// commas or quotes are quoted per RFC 4180.
  void print_csv(std::ostream& os) const;

  /// Renders as a GitHub-flavored markdown table (pipes escaped), ready to
  /// paste into EXPERIMENTS.md.
  void print_markdown(std::ostream& os) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mmph::io
