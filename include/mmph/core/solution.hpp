#pragma once

/// \file solution.hpp
/// \brief Result of running a solver on a Problem.

#include <string>
#include <vector>

#include "mmph/geometry/point_set.hpp"

namespace mmph::core {

/// The k chosen centers plus per-round accounting.
struct Solution {
  std::string solver_name;

  /// Chosen centers, in selection order (rows of a PointSet).
  geo::PointSet centers{1};

  /// Coverage reward g(j) claimed in each round; size == centers.size().
  std::vector<double> round_rewards;

  /// sum of round_rewards == f(centers) (the solvers maintain this
  /// identity; tests verify it against objective_value()).
  double total_reward = 0.0;

  /// Residual capacities y after the last round (diagnostics/examples).
  std::vector<double> residual;
};

}  // namespace mmph::core
