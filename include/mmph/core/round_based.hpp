#pragma once

/// \file round_based.hpp
/// \brief Algorithm 1 — round-based heuristic with a candidate oracle
/// ("greedy 1" in the paper's evaluation prose).
///
/// The paper's Algorithm 1 assumes each round's continuous subproblem
/// (Eq. 10) is solved optimally; that subproblem is itself NP-hard
/// (Section IV-B). Following the evaluation, we realize the round oracle
/// by maximizing over a finite candidate set — by default a fine uniform
/// grid over the instance box unioned with the input points — which makes
/// each round optimal-up-to-grid-pitch. With the oracle exact, Theorem 1
/// gives the 1 - (1 - 1/k)^k ratio.

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/solver.hpp"

namespace mmph::core {

class RoundBasedSolver final : public RoundSolverBase {
 public:
  /// Round oracle over an explicit candidate set (rows of \p candidates).
  explicit RoundBasedSolver(geo::PointSet candidates);

  /// Convenience: oracle over grid(pitch) ∪ input points of \p problem.
  static RoundBasedSolver over_grid(const Problem& problem, double pitch,
                                    double margin = 0.0);

  [[nodiscard]] std::string name() const override { return "greedy1"; }

  [[nodiscard]] const geo::PointSet& candidates() const noexcept {
    return candidates_;
  }

 protected:
  void select_center(const Problem& problem, std::span<const double> y,
                     std::span<double> out) const override;

 private:
  geo::PointSet candidates_;
};

}  // namespace mmph::core
