#pragma once

/// \file round_polish.hpp
/// \brief Continuous polish for the round-based oracle (Algorithm 1).
///
/// The paper's Algorithm 1 assumes each round's center is chosen optimally
/// over all of R^m — an NP-hard subproblem our RoundBasedSolver
/// approximates with a finite grid. This solver closes more of the gap:
/// after the grid pick, it runs deterministic pattern search (compass /
/// coordinate descent with halving steps) on the smooth-enough coverage
/// reward around the best grid candidate. The result is a strictly better
/// round oracle at the cost of O(dim · iterations) extra reward
/// evaluations per round, still fully deterministic.

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/solver.hpp"

namespace mmph::core {

class PolishedRoundSolver final : public RoundSolverBase {
 public:
  /// \p candidates seeds each round's search (best candidate wins, ties
  /// toward the lowest index). \p initial_step is the pattern search's
  /// starting step (a good default is the grid pitch); \p min_step the
  /// termination threshold.
  PolishedRoundSolver(geo::PointSet candidates, double initial_step,
                      double min_step = 1e-4);

  /// Convenience: grid(pitch) ∪ points seed, pattern step = pitch.
  static PolishedRoundSolver over_grid(const Problem& problem, double pitch);

  [[nodiscard]] std::string name() const override { return "greedy1+polish"; }

 protected:
  void select_center(const Problem& problem, std::span<const double> y,
                     std::span<double> out) const override;

 private:
  geo::PointSet candidates_;
  double initial_step_;
  double min_step_;
};

}  // namespace mmph::core
