#pragma once

/// \file greedy_complex.hpp
/// \brief Algorithm 4 — the complex local greedy algorithm ("greedy 4").
///
/// The only algorithm whose centers may lie anywhere in R^m. Each round,
/// every input point seeds a walk that grows an accumulated point set D
/// (initially the seed alone) by up to n-1 "new-center" steps (paper §V-B):
///
///   1. Start with the disk of radius r centered on the seed.
///   2. Take the heaviest remaining point j by the reward the current disk
///      would give it (the paper's "max w_j z_j"), among points not yet
///      in D.
///   3. If no remaining point earns anything — the heaviest j "is outside
///      D" — stop.
///   4. Otherwise add j to D and recenter the disk at the center of the
///      smallest ball covering D.
///   5. Keep the move only if the coverage reward improved; else stop.
///
/// The best final disk across all seeds is the round's center (ties toward
/// the lowest seed index). Complexity O(k n^3) for the 2-norm in 2-D and
/// O(k m n^3) for the 1-norm in m-D (paper Theorem 4). The smallest
/// enclosing ball is Welzl's algorithm for the 2-norm, the bounding-box
/// midpoint for the infinity-norm, and the paper's per-dimension projection
/// rule for the 1-norm (an exact 2-D variant is available, see
/// geo::L1CenterRule).

#include "mmph/core/solver.hpp"
#include "mmph/geometry/enclosing.hpp"

namespace mmph::core {

class GreedyComplexSolver final : public RoundSolverBase {
 public:
  explicit GreedyComplexSolver(
      geo::L1CenterRule l1_rule = geo::L1CenterRule::kPaperProjection)
      : l1_rule_(l1_rule) {}

  [[nodiscard]] std::string name() const override { return "greedy4"; }

 protected:
  void select_center(const Problem& problem, std::span<const double> y,
                     std::span<double> out) const override;

 private:
  /// Runs the full new-center walk from one seed point; leaves the final
  /// center and its coverage reward in the out-parameters.
  void walk_from_seed(const Problem& problem, std::span<const double> y,
                      std::size_t seed, std::vector<double>& center,
                      double& reward) const;

  geo::L1CenterRule l1_rule_;
};

}  // namespace mmph::core
