#pragma once

/// \file problem.hpp
/// \brief The optimal content distribution problem instance (paper §III-A).
///
/// An instance is: n user-interest points x_i in R^m with maximum rewards
/// w_i, a broadcast radius r, and the p-norm measuring interest distance.
/// Solvers choose k centers c_j maximizing
///   f(C) = sum_i w_i * min( sum_j [1 - d(c_j, x_i)/r]_+ , 1 )        (Eq. 7)

#include <vector>

#include "mmph/geometry/norms.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/random/workload.hpp"

namespace mmph::core {

/// How a point's reward decays inside a center's coverage range.
enum class RewardShape {
  /// The paper's model: u = [1 - d/r]_+, linear decay with distance.
  kLinear,
  /// Classic weighted max-coverage: u = 1 inside the ball, 0 outside.
  /// Still monotone submodular, so every solver and bound applies; used
  /// by the reward-shape ablation to quantify what distance-weighting
  /// changes.
  kBinary,
};

[[nodiscard]] const char* reward_shape_name(RewardShape shape);

/// Immutable-after-construction problem instance.
class Problem {
 public:
  /// Validates and takes ownership of the instance data.
  /// \throws InvalidArgument on empty points, mismatched weight count,
  ///         non-positive weights, or non-positive radius.
  Problem(geo::PointSet points, std::vector<double> weights, double radius,
          geo::Metric metric, RewardShape shape = RewardShape::kLinear);

  /// Builds a problem from a generated workload.
  static Problem from_workload(rnd::Workload workload, double radius,
                               geo::Metric metric,
                               RewardShape shape = RewardShape::kLinear);

  [[nodiscard]] const geo::PointSet& points() const noexcept {
    return points_;
  }
  [[nodiscard]] const std::vector<double>& weights() const noexcept {
    return weights_;
  }
  [[nodiscard]] double radius() const noexcept { return radius_; }
  [[nodiscard]] const geo::Metric& metric() const noexcept { return metric_; }
  [[nodiscard]] RewardShape reward_shape() const noexcept { return shape_; }

  [[nodiscard]] std::size_t size() const noexcept { return weights_.size(); }
  [[nodiscard]] std::size_t dim() const noexcept { return points_.dim(); }

  /// sum_i w_i — the ceiling on any objective value.
  [[nodiscard]] double total_weight() const noexcept { return total_weight_; }

  /// Point i's interest vector.
  [[nodiscard]] geo::ConstVec point(std::size_t i) const {
    return points_[i];
  }
  /// Point i's maximum reward w_i.
  [[nodiscard]] double weight(std::size_t i) const { return weights_[i]; }

 private:
  geo::PointSet points_;
  std::vector<double> weights_;
  double radius_;
  geo::Metric metric_;
  RewardShape shape_;
  double total_weight_;
};

}  // namespace mmph::core
