#pragma once

/// \file indexed_reward.hpp
/// \brief Spatially-indexed reward kernels and the accelerated Algorithm 2.
///
/// The plain kernels in reward.hpp scan all n points per candidate center
/// — the O(n) factor inside every solver loop. Points farther than r from
/// the center contribute nothing, so for instances much larger than the
/// paper's (dense caches, city-scale user bases) a CellGrid query visits
/// only the relevant neighborhood. The indexed kernels compute the same
/// sums over the same point subsets; only the iteration order differs, so
/// results match the plain kernels up to floating-point associativity.

#include <span>

#include "mmph/core/problem.hpp"
#include "mmph/core/solver.hpp"
#include "mmph/geometry/cell_grid.hpp"
#include "mmph/geometry/enclosing.hpp"

namespace mmph::core {

/// A Problem plus a cell-list index sized to its radius. The Problem must
/// outlive the index.
class IndexedProblem {
 public:
  explicit IndexedProblem(const Problem& problem);

  [[nodiscard]] const Problem& problem() const noexcept { return problem_; }
  [[nodiscard]] const geo::CellGrid& grid() const noexcept { return grid_; }

  /// Same value as core::coverage_reward (up to summation order).
  [[nodiscard]] double coverage_reward(geo::ConstVec center,
                                       std::span<const double> y) const;

  /// Same effect as core::apply_center (up to summation order).
  double apply_center(geo::ConstVec center, std::span<double> y) const;

 private:
  const Problem& problem_;
  geo::CellGrid grid_;
};

/// Algorithm 2 running on indexed kernels: selects the same centers as
/// GreedyLocalSolver (ties aside) while touching only in-range points.
class IndexedGreedyLocalSolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "greedy2-indexed"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;
};

/// Algorithm 4 running on indexed kernels. The new-center walk's inner
/// steps — "heaviest point the disk currently rewards" and the coverage
/// reward of a trial center — both only involve points within r of the
/// center, so every step queries the grid instead of scanning all n.
/// Selects the same centers as GreedyComplexSolver (explicit index
/// tie-breaking restores the paper's rule under the grid's different
/// visit order); worst case drops from O(k n^3) toward O(k n^2 q) where q
/// is the in-range neighborhood size.
class IndexedGreedyComplexSolver final : public Solver {
 public:
  explicit IndexedGreedyComplexSolver(
      geo::L1CenterRule l1_rule = geo::L1CenterRule::kPaperProjection)
      : l1_rule_(l1_rule) {}

  [[nodiscard]] std::string name() const override { return "greedy4-indexed"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

 private:
  geo::L1CenterRule l1_rule_;
};

}  // namespace mmph::core
