#pragma once

/// \file reward.hpp
/// \brief Reward kernels: the inner loops every solver shares.
///
/// Terminology follows the paper. For a center c and point i:
///   unit coverage  u_i(c) = [1 - d(c, x_i)/r]_+            (fraction in [0,1])
///   round reward   z_i    = min(u_i(c), y_i)               (Eq. 13/14 constraint)
///   coverage reward g(c)  = sum_i w_i z_i
/// where y is the per-point residual capacity, starting at 1 and decreased
/// by z_i each round, which realizes the per-point cap w_i of Eq. (3).

#include <span>
#include <vector>

#include "mmph/core/problem.hpp"

namespace mmph::core {

/// Residual capacity vector y, all ones (round 1 of every algorithm).
[[nodiscard]] std::vector<double> fresh_residual(const Problem& problem);

/// u_i(c) = [1 - d(c, x_i)/r]_+ for one point.
[[nodiscard]] double unit_coverage(const Problem& problem, geo::ConstVec center,
                                   std::size_t i);

/// Coverage reward g(c) = sum_i w_i min(u_i(c), y_i) against residual \p y.
[[nodiscard]] double coverage_reward(const Problem& problem,
                                     geo::ConstVec center,
                                     std::span<const double> y);

/// Commits a center: y_i -= z_i for every point; returns the round reward
/// g(c) that was claimed.
double apply_center(const Problem& problem, geo::ConstVec center,
                    std::span<double> y);

/// Single-point residual reward w_i * y_i (Algorithm 3's selection key).
[[nodiscard]] double single_point_reward(const Problem& problem, std::size_t i,
                                         std::span<const double> y);

}  // namespace mmph::core
