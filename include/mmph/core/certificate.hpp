#pragma once

/// \file certificate.hpp
/// \brief Rigorous a-posteriori bounds against the *continuous* optimum.
///
/// Every ratio in the paper (and in our figure benches) divides by an
/// optimum restricted to finitely many candidate centers; the true
/// Eq. (6) optimum ranges over all of R^m. This module closes the gap
/// with certified bounds:
///
/// 1. The coverage reward g(c) = sum_i w_i min(u_i(c), y_i) is Lipschitz
///    in the center: each u_i has |gradient| <= 1/r under the instance
///    metric, so |g(c) - g(c')| <= (sum_i w_i / r) * d(c, c').
/// 2. A uniform grid of pitch h leaves no point of the search box farther
///    than the grid's covering radius rho(h) from a grid node, hence
///       max_c g(c)  <=  max_grid g  +  L * rho(h).
/// 3. The paper's Lemma 1(a) argument gives f_opt <= k * max_c g(c) over
///    the fresh residual, so
///       f_opt(continuous)  <=  k * (max_grid g + L * rho(h)),
///    and any solution's value divided by that is a *certified* lower
///    bound on its true approximation ratio.
///
/// The optimum may also search outside the instance's bounding box, but
/// never profitably beyond radius r of it (coverage is zero there), which
/// the box margin accounts for.

#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"

namespace mmph::core {

/// Lipschitz constant of the coverage reward in the center argument,
/// L = total_weight / r (valid for every p-norm; binary-shape problems
/// are not Lipschitz and are rejected).
[[nodiscard]] double coverage_lipschitz_constant(const Problem& problem);

/// Covering radius of a pitch-h grid in dim dimensions under \p metric:
/// the farthest any point of the gridded box lies from a grid node,
/// rho = (h/2) * dim^(1/p).
[[nodiscard]] double grid_covering_radius(double pitch, std::size_t dim,
                                          const geo::Metric& metric);

/// Certified upper bound on the best *continuous* single-round coverage
/// reward against fresh residuals: max over a pitch-h grid (expanded r
/// beyond the instance box) plus the Lipschitz slack.
[[nodiscard]] double continuous_round_upper_bound(const Problem& problem,
                                                  double pitch);

/// Certified upper bound on the continuous k-center optimum of Eq. (6):
/// k times continuous_round_upper_bound (the Lemma 1(a) argument).
/// Also capped at total_weight, which no solution can exceed.
[[nodiscard]] double continuous_opt_upper_bound(const Problem& problem,
                                                std::size_t k, double pitch);

/// The certificate: value / upper bound — a rigorous lower bound on the
/// solution's approximation ratio against the true continuous optimum.
struct RatioCertificate {
  double value = 0.0;        ///< the solution's f(C)
  double upper_bound = 0.0;  ///< certified bound on the continuous optimum
  double certified_ratio = 0.0;  ///< value / upper_bound
};

[[nodiscard]] RatioCertificate certify_ratio(const Problem& problem,
                                             const Solution& solution,
                                             double pitch);

}  // namespace mmph::core
