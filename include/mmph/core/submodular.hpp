#pragma once

/// \file submodular.hpp
/// \brief Submodularity/monotonicity checkers for the objective (Lemma 0b).
///
/// Used by property tests and available to users studying new variants of
/// the reward function: Theorem 0's NP-hardness proof rests on f being
/// monotone submodular, so any reward-function change should re-verify
/// these properties empirically.

#include <cstddef>

#include "mmph/core/problem.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::core {

/// Result of one diminishing-returns check.
struct SubmodularityViolation {
  bool violated = false;
  double gain_small = 0.0;  ///< f(A ∪ {s}) − f(A)
  double gain_large = 0.0;  ///< f(B ∪ {s}) − f(B), A ⊂ B
};

/// Checks the diminishing-returns inequality for one triple: A = the first
/// `a_size` rows of \p chain, B = the first `b_size` rows (a_size <=
/// b_size), s = \p extra. Tolerance absorbs floating-point noise.
[[nodiscard]] SubmodularityViolation check_diminishing_returns(
    const Problem& problem, const geo::PointSet& chain, std::size_t a_size,
    std::size_t b_size, geo::ConstVec extra, double tol = 1e-9);

/// Checks monotonicity: f over growing prefixes of \p chain never
/// decreases (within tol). Returns true when monotone.
[[nodiscard]] bool check_monotone(const Problem& problem,
                                  const geo::PointSet& chain,
                                  double tol = 1e-9);

}  // namespace mmph::core
