#pragma once

/// \file local_search.hpp
/// \brief Swap-based local-search refinement of any solver's solution
/// (library extension; the paper leaves improvement beyond one greedy
/// pass as future work).
///
/// Classic (1-swap) local search for submodular maximization: starting
/// from a base solution, repeatedly replace one chosen center with one
/// candidate center whenever the swap improves f(C); stop at a local
/// optimum or after `max_sweeps` full passes. First-improvement order is
/// deterministic (centers, then candidates, ascending), so results are
/// reproducible.

#include <memory>

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/solver.hpp"

namespace mmph::core {

class LocalSearchSolver final : public Solver {
 public:
  /// Refines \p base's output by 1-swaps over \p candidates.
  /// \p max_sweeps bounds full improvement passes (0 = no bound is not
  /// allowed; pass a positive count).
  LocalSearchSolver(std::shared_ptr<const Solver> base,
                    geo::PointSet candidates, std::size_t max_sweeps = 16);

  /// Convenience: greedy2 base, candidates = grid(pitch) ∪ points.
  static LocalSearchSolver greedy2_over_grid(const Problem& problem,
                                             double pitch);

  [[nodiscard]] std::string name() const override;

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

  /// Number of accepted swaps in the last solve() (diagnostics).
  [[nodiscard]] std::size_t last_swap_count() const noexcept {
    return last_swaps_;
  }

 private:
  std::shared_ptr<const Solver> base_;
  geo::PointSet candidates_;
  std::size_t max_sweeps_;
  mutable std::size_t last_swaps_ = 0;
};

}  // namespace mmph::core
