#pragma once

/// \file exhaustive.hpp
/// \brief Exhaustive optimum over a finite candidate set (the ratio
/// denominator in the paper's evaluation).
///
/// The continuous optimum of Eq. (6) is not exactly computable; following
/// the evaluation we take the best k-subset of a finite candidate set —
/// the input points unioned with a uniform grid over the box. Enumeration
/// is depth-first over candidates sorted by standalone value, with a
/// submodular upper bound (a set's value never exceeds the partial value
/// plus the sum of the best remaining standalone values) pruning subtrees,
/// and the first enumeration level fanned out over the thread pool.
///
/// Determinism: worker-local bests are merged with a value-then-
/// lexicographic tie-break, so results do not depend on thread timing.

#include <cstddef>

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/solver.hpp"

namespace mmph::core {

struct ExhaustiveOptions {
  bool use_pruning = true;  ///< disable only to cross-check correctness
  bool parallel = true;     ///< fan out over ThreadPool::global()
  /// Hard cap on C(#candidates, k); exceeding it throws InvalidArgument
  /// instead of silently running for hours.
  double max_subsets = 5e8;
};

class ExhaustiveSolver final : public Solver {
 public:
  using Options = ExhaustiveOptions;

  explicit ExhaustiveSolver(geo::PointSet candidates,
                            Options options = Options{});

  /// Candidates = the instance's own points (optimum of the domain
  /// Algorithms 2/3 search; greedy 4 may legitimately beat it).
  static ExhaustiveSolver over_points(const Problem& problem,
                                      Options options = Options{});

  /// Candidates = grid(pitch over the bounding box) ∪ input points —
  /// the default ratio denominator for the figure reproductions.
  static ExhaustiveSolver over_grid_and_points(const Problem& problem,
                                               double pitch,
                                               Options options = Options{});

  [[nodiscard]] std::string name() const override { return "exhaustive"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

  [[nodiscard]] const geo::PointSet& candidates() const noexcept {
    return candidates_;
  }

 private:
  geo::PointSet candidates_;
  Options options_;
};

/// C(n, k) as a double (monotone overflow-free for the guard check).
[[nodiscard]] double binomial(std::size_t n, std::size_t k);

}  // namespace mmph::core
