#pragma once

/// \file lazy_greedy.hpp
/// \brief Lazy-evaluation acceleration of Algorithm 2 (library extension).
///
/// Minoux's classic trick: because f is submodular, a candidate's marginal
/// gain only shrinks as rounds pass, so a stale upper bound from an earlier
/// round is still an upper bound. Keeping candidates in a max-heap keyed by
/// their last-evaluated gain and re-evaluating only the top avoids the full
/// O(n) scan per round in the common case. Selects exactly the same centers
/// as GreedyLocalSolver (same tie-breaking) — verified by tests — while
/// evaluating far fewer coverage rewards (see bench/perf_lazy_greedy).

#include "mmph/core/solver.hpp"

namespace mmph::core {

class LazyGreedySolver final : public Solver {
 public:
  [[nodiscard]] std::string name() const override { return "greedy2-lazy"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

  /// Number of coverage_reward evaluations the last solve() performed
  /// (for the ablation bench). Not thread-safe across concurrent solves
  /// on the same instance object.
  [[nodiscard]] std::size_t last_evaluation_count() const noexcept {
    return last_evals_;
  }

 private:
  mutable std::size_t last_evals_ = 0;
};

}  // namespace mmph::core
