#pragma once

/// \file lazy_greedy.hpp
/// \brief Lazy-evaluation acceleration of Algorithm 2 (library extension).
///
/// Minoux's classic trick: because f is submodular, a candidate's marginal
/// gain only shrinks as rounds pass, so a stale upper bound from an earlier
/// round is still an upper bound. Keeping candidates in a max-heap keyed by
/// their last-evaluated gain and re-evaluating only the top avoids the full
/// O(n) scan per round in the common case. Selects exactly the same centers
/// as GreedyLocalSolver (same tie-breaking) — verified by tests — while
/// evaluating far fewer coverage rewards (see bench/perf_lazy_greedy).
///
/// Lazy evaluation cuts how many reward evaluations run; the blocked
/// kernels (kernels.hpp) make each one stream at memory bandwidth. When
/// they are enabled the solver scans a residual-aware ActiveSet, and the
/// first-round all-candidates scan — the O(n^2) initialization laziness
/// cannot avoid — can be sharded across a ThreadPool. Both paths select
/// identical centers (pinned by tests).

#include <atomic>
#include <cstddef>

#include "mmph/core/solver.hpp"
#include "mmph/parallel/thread_pool.hpp"

namespace mmph::spatial {
class SpatialIndex;
}

namespace mmph::core {

class LazyGreedySolver final : public Solver {
 public:
  LazyGreedySolver() = default;

  /// With a pool, the first-round gain scan is sharded across its workers
  /// (deterministic per-slot reduction; see kernels::ParallelEvaluator).
  /// Do NOT pass a pool when solve() itself may run on one of that pool's
  /// workers (e.g. per-shard solves inside ShardedSolver): blocking on
  /// work queued behind the callers can deadlock.
  explicit LazyGreedySolver(par::ThreadPool* pool) noexcept : pool_(pool) {}

  [[nodiscard]] std::string name() const override { return "greedy2-lazy"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

  /// Number of coverage-reward evaluations the last solve() performed (for
  /// the ablation bench). The counter is atomic, so solves running
  /// concurrently on the same instance (e.g. under a sharded/parallel
  /// harness) cannot tear it; each solve resets it, so with concurrent
  /// solves the value reflects the evaluations since the latest reset.
  [[nodiscard]] std::size_t last_evaluation_count() const noexcept {
    return last_evals_.load(std::memory_order_relaxed);
  }

  /// Lends a caller-maintained spatial index (rows must correspond to the
  /// problem's points) so solve() skips the index build. The index outlives
  /// the solver's use of it; solve() re-unmasks it at start. Whether it is
  /// consulted still follows kernels::index_mode().
  void set_shared_index(spatial::SpatialIndex* index) noexcept {
    index_ = index;
  }

 private:
  par::ThreadPool* pool_ = nullptr;
  spatial::SpatialIndex* index_ = nullptr;
  mutable std::atomic<std::size_t> last_evals_{0};
};

}  // namespace mmph::core
