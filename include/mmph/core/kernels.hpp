#pragma once

/// \file kernels.hpp
/// \brief Batched, SIMD-friendly reward kernels: the streaming inner loops
/// behind every solver's coverage evaluations.
///
/// The plain kernels in reward.hpp walk one point at a time through
/// Metric::distance — a branchy call that pays a sqrt even for points far
/// outside the coverage ball. The block kernels here stage distances for a
/// fixed-size block of contiguous SoA rows (norm- and dimension-specialized
/// tight loops the compiler auto-vectorizes), then fuse the coverage and
/// residual math (`w_i * min(u_i, y_i)`) in one pass over the block. An L2
/// squared-distance early-out means out-of-range points never reach sqrt.
///
/// Determinism contract: for the same problem and residual, the blocked
/// kernels produce *bit-identical* sums to the per-point reference path —
/// terms are accumulated in ascending point order, each term is computed
/// with the same operations as `unit_coverage`, the early-out is guarded by
/// a relative margin so it never drops a point the reference path keeps,
/// and skipped terms are exact +0.0 (adding them cannot change the sum).
/// Every solver therefore selects the same centers with the blocked path on
/// or off; tests pin this.
///
/// The layer also provides:
///   - ActiveSet: a residual-aware compaction of the population. Points
///     whose residual has hit exactly 0 can never contribute again
///     (residuals only decrease), so they are dropped from the scan while
///     preserving the relative order — and hence the exact sums — of the
///     survivors.
///   - ParallelEvaluator: shards an all-candidates gain scan (the O(n^2)
///     first round that lazy evaluation cannot avoid) across a ThreadPool.
///     Each gain lands in its own slot of a dense vector, so results are
///     deterministic regardless of scheduling.

#include <atomic>
#include <cstddef>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/parallel/parallel_for.hpp"
#include "mmph/parallel/thread_pool.hpp"

namespace mmph::core::kernels {

/// Rows staged per block: 256 doubles of distance scratch (2 KiB) stays
/// resident in L1 alongside the coordinate, weight and residual streams.
inline constexpr std::size_t kBlockSize = 256;

/// Whether reward.hpp's kernels delegate to the blocked path (default on).
/// The per-point reference path is kept for A/B tests and benchmarks.
void set_blocked_enabled(bool enabled) noexcept;
[[nodiscard]] bool blocked_enabled() noexcept;

/// RAII toggle for tests: forces the blocked path on/off, restoring the
/// previous setting on destruction. Not meant for concurrent use.
class ScopedBlockedKernels {
 public:
  explicit ScopedBlockedKernels(bool enabled) noexcept
      : previous_(blocked_enabled()) {
    set_blocked_enabled(enabled);
  }
  ~ScopedBlockedKernels() { set_blocked_enabled(previous_); }
  ScopedBlockedKernels(const ScopedBlockedKernels&) = delete;
  ScopedBlockedKernels& operator=(const ScopedBlockedKernels&) = delete;

 private:
  bool previous_;
};

/// Whether solvers route coverage evaluations through a spatial radius
/// index (mmph::spatial) instead of the full-population scan. The indexed
/// path is bit-identical to the scan (see spatial_index.hpp for the
/// contract), so this is purely a cost knob:
///   - kNone: never index — every eval scans all n points (blocked or not).
///   - kGrid: always index, even for tiny populations (the differential
///     corpus uses this to exercise the indexed path; above kGridMaxDim
///     dimensions the kd-tree stands in for the grid).
///   - kAuto (default): index only when it is expected to pay off — the
///     population is large enough to amortize the build
///     (>= kAutoIndexMinPoints), low-dimensional enough for the grid
///     (dim <= spatial::kGridMaxDim), and sparse enough that a radius
///     query visits a small slice of the population (see
///     kAutoMaxQueryFraction). See indexed_eval.hpp's
///     auto_index_profitable for the exact predicate.
enum class IndexMode {
  kNone,
  kGrid,
  kAuto,
};

/// Populations below this never index under kAuto: a full scan of a few
/// thousand points is cheaper than building the grid.
inline constexpr std::size_t kAutoIndexMinPoints = 4096;

/// Density guard for kAuto. A grid query gathers the 3^dim cell
/// neighborhood around the center — an L-inf box of side 3r — so the
/// expected fraction of the population visited per eval is roughly
/// prod_d min(1, 3r / extent_d) over the bounding-box extents. When that
/// fraction is large (dense workload: coverage balls comparable to the
/// whole box), gathering and merging the candidate list costs more than
/// the vectorized full scan it replaces, and indexing is a pessimization.
/// kAuto indexes only when the estimated fraction is at most this value.
inline constexpr double kAutoMaxQueryFraction = 0.125;

void set_index_mode(IndexMode mode) noexcept;
[[nodiscard]] IndexMode index_mode() noexcept;

[[nodiscard]] const char* index_mode_name(IndexMode mode) noexcept;
/// Parses "none" / "grid" / "auto" (the --index flag values).
[[nodiscard]] std::optional<IndexMode> parse_index_mode(
    std::string_view name) noexcept;

/// RAII toggle for tests, mirroring ScopedBlockedKernels.
class ScopedIndexMode {
 public:
  explicit ScopedIndexMode(IndexMode mode) noexcept : previous_(index_mode()) {
    set_index_mode(mode);
  }
  ~ScopedIndexMode() { set_index_mode(previous_); }
  ScopedIndexMode(const ScopedIndexMode&) = delete;
  ScopedIndexMode& operator=(const ScopedIndexMode&) = delete;

 private:
  IndexMode previous_;
};

/// Blocked equivalent of core::coverage_reward: g(c) = sum_i w_i min(u_i, y_i).
[[nodiscard]] double block_coverage_reward(const Problem& problem,
                                           geo::ConstVec center,
                                           std::span<const double> y);

/// Blocked equivalent of core::apply_center: commits the round, y_i -= z_i.
double block_apply_center(const Problem& problem, geo::ConstVec center,
                          std::span<double> y);

/// Index-list variants for spatial-index callers (e.g. CellGrid cell
/// ranges): evaluate only the points named by \p indices, in order,
/// accumulating term by term onto \p g. Accumulate-into (rather than
/// return-a-partial) keeps the floating-point association identical to one
/// per-point loop over the concatenated index lists, so a caller visiting
/// several cell spans gets bit-identical sums to the unblocked path.
void block_coverage_reward(const Problem& problem, geo::ConstVec center,
                           std::span<const double> y,
                           std::span<const std::size_t> indices, double& g);
void block_apply_center(const Problem& problem, geo::ConstVec center,
                        std::span<double> y,
                        std::span<const std::size_t> indices, double& g);

/// A compacted view of the population holding only points whose residual is
/// still positive, stored SoA (packed coords / weights / residuals) so the
/// block kernels stream over survivors at full memory bandwidth.
///
/// Semantics: the set owns the residual state from construction on.
/// coverage_reward/apply_center match the full-population kernels exactly
/// (dropped points contribute exact zeros; survivor order is preserved), so
/// a solver that swaps its residual vector for an ActiveSet selects the
/// same centers. Compaction triggers automatically once at least 1/8 of the
/// scanned rows are exhausted; exact comparison against 0.0 (never an
/// epsilon) keeps arbitrarily small positive residuals in play.
class ActiveSet {
 public:
  /// Starts with every point active and residual 1 (a fresh round 1).
  explicit ActiveSet(const Problem& problem);

  /// Starts from an existing residual vector (points with y[i] == 0 are
  /// dropped immediately). \p y.size() must equal problem.size().
  ActiveSet(const Problem& problem, std::span<const double> y);

  [[nodiscard]] const Problem& problem() const noexcept { return problem_; }

  /// Points still scanned (== active points between compactions plus
  /// not-yet-compacted exhausted ones).
  [[nodiscard]] std::size_t scan_size() const noexcept { return weights_.size(); }

  /// Points with residual > 0.
  [[nodiscard]] std::size_t active_count() const noexcept {
    return weights_.size() - exhausted_;
  }

  /// g(c) over the active points — equals block_coverage_reward against the
  /// equivalent full residual vector, bit for bit.
  [[nodiscard]] double coverage_reward(geo::ConstVec center) const;

  /// Commits a center against the internal residual state; returns the
  /// claimed reward and compacts when enough points became exhausted.
  double apply_center(geo::ConstVec center);

  /// Drops exhausted points now (idempotent; automatic in apply_center).
  void compact();

  /// Writes the equivalent full residual vector: 0 for exhausted points,
  /// the internal residual for active ones. \p y.size() == problem.size().
  void export_residual(std::span<double> y) const;

 private:
  void gather(std::span<const double> y);

  const Problem& problem_;
  std::vector<double> coords_;        // packed rows of active points
  std::vector<double> weights_;       // aligned with coords_ rows
  std::vector<double> residual_;      // aligned; the live y values
  std::vector<std::size_t> original_; // row -> original point index
  std::size_t exhausted_ = 0;         // rows with residual exactly 0
};

/// Shards an all-candidates gain scan across a ThreadPool. Results are
/// written to per-candidate slots (no shared accumulator), so the output is
/// identical to the serial scan regardless of worker count or scheduling.
///
/// A null pool means "run serially on the caller" — callers that may
/// themselves be executing on a pool worker (e.g. per-shard solves inside
/// ShardedSolver) must use that mode: submitting work to the pool you are
/// running on and blocking on it can deadlock once every worker waits.
class ParallelEvaluator {
 public:
  explicit ParallelEvaluator(par::ThreadPool* pool) noexcept : pool_(pool) {}

  /// gains[i] = coverage reward of problem.point(i) against \p y.
  [[nodiscard]] std::vector<double> point_gains(
      const Problem& problem, std::span<const double> y) const;

  /// gains[i] = coverage reward of problem.point(i) against \p active.
  [[nodiscard]] std::vector<double> point_gains(const ActiveSet& active) const;

  /// gains[c] = coverage reward of pool[c] against \p y (merge passes).
  [[nodiscard]] std::vector<double> pool_gains(
      const Problem& problem, const geo::PointSet& pool,
      std::span<const double> y) const;

  /// Generic deterministic map: out[i] = eval(i) for i in [0, count).
  /// \p eval must be safe to call concurrently from pool workers.
  template <typename Eval>
  [[nodiscard]] std::vector<double> map(std::size_t count, Eval&& eval) const {
    std::vector<double> out(count);
    if (pool_ == nullptr || pool_->thread_count() <= 1 || count < 2) {
      for (std::size_t i = 0; i < count; ++i) out[i] = eval(i);
      return out;
    }
    par::parallel_for(
        *pool_, 0, count, [&](std::size_t i) { out[i] = eval(i); },
        /*grain=*/0);
    return out;
  }

 private:
  par::ThreadPool* pool_;
};

}  // namespace mmph::core::kernels
