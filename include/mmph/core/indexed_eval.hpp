#pragma once

/// \file indexed_eval.hpp
/// \brief IndexedActiveSet: the bridge from mmph::spatial radius queries
/// into the coverage reward kernels.
///
/// An evaluation g(c) only draws nonzero terms from points within the
/// coverage radius of c; everything else contributes exact +0.0. The
/// IndexedActiveSet asks a SpatialIndex for "points possibly within r of c"
/// and feeds that (ascending) id list through the index-list block kernels,
/// producing sums bit-identical to a full-population scan — see
/// spatial_index.hpp for the superset/ordering/masking contract — at
/// O(points-in-ball) cost per eval instead of O(n).
///
/// Residual-aware masking: after apply_center, any touched point whose
/// residual hit exactly 0.0 is masked out of the index, so later queries
/// shrink as coverage saturates (the spatial analog of ActiveSet
/// compaction).
///
/// Construction honors kernels::index_mode() (kNone / kGrid / kAuto) via
/// try_make, so solvers gate on "did try_make return an instance" rather
/// than re-deriving the policy. A serving layer that already maintains an
/// index across churn epochs can lend it through the shared-index overload;
/// the set unmasks it at start-of-solve and masks as rounds commit, leaving
/// the index reusable afterwards.
///
/// Thread-safety: coverage_reward is safe to call concurrently (per-thread
/// scratch, const query); apply_center and export_residual are not.

#include <memory>
#include <span>
#include <vector>

#include "mmph/core/kernels.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/spatial/spatial_index.hpp"

namespace mmph::core::kernels {

/// The kAuto policy predicate: true when indexing \p problem is expected
/// to beat the full scan. Requires a large population
/// (>= kAutoIndexMinPoints), a grid-friendly dimension
/// (<= spatial::kGridMaxDim), and a sparse enough box that a radius query
/// visits at most kAutoMaxQueryFraction of the points (estimated from the
/// bounding box; one O(n) pass). Dense workloads — coverage balls
/// comparable to the whole box — scan faster than they gather, so kAuto
/// declines them; kGrid still forces the index for such cases.
[[nodiscard]] bool auto_index_profitable(const Problem& problem);

class IndexedActiveSet {
 public:
  /// Builds an index-backed evaluator for \p problem, or returns null when
  /// the current index_mode() says not to index (kNone always; kAuto when
  /// auto_index_profitable says the scan path is cheaper). A null result
  /// means "use the scan path".
  [[nodiscard]] static std::unique_ptr<IndexedActiveSet> try_make(
      const Problem& problem);

  /// Same policy, but wraps \p shared (an index the caller maintains across
  /// solves, e.g. PlacementService's carried grid) instead of building one
  /// — provided the mode allows indexing and the index matches the problem
  /// (same point count and dimension; rows must correspond). Falls back to
  /// try_make(problem) on mismatch, null when the mode is kNone.
  [[nodiscard]] static std::unique_ptr<IndexedActiveSet> try_make(
      const Problem& problem, spatial::SpatialIndex* shared);

  [[nodiscard]] const Problem& problem() const noexcept { return problem_; }
  [[nodiscard]] const spatial::SpatialIndex& index() const noexcept {
    return *index_;
  }

  /// Points whose residual is still positive.
  [[nodiscard]] std::size_t active_count() const noexcept { return active_; }

  /// g(c) against the internal residual — equals block_coverage_reward on
  /// the equivalent full residual vector, bit for bit. Thread-safe.
  [[nodiscard]] double coverage_reward(geo::ConstVec center) const;

  /// Commits a center: residuals decrease, newly exhausted points are
  /// masked out of the index. Returns the claimed reward.
  double apply_center(geo::ConstVec center);

  /// Writes the equivalent full residual vector (masked rows are already
  /// exactly 0.0 internally). \p y.size() == problem().size().
  void export_residual(std::span<double> y) const;

 private:
  IndexedActiveSet(const Problem& problem,
                   std::unique_ptr<spatial::SpatialIndex> owned);
  IndexedActiveSet(const Problem& problem, spatial::SpatialIndex* shared);

  const Problem& problem_;
  std::unique_ptr<spatial::SpatialIndex> owned_;
  spatial::SpatialIndex* index_;   ///< owned_.get() or the lent index
  std::vector<double> residual_;   ///< full-length y, masked rows exactly 0
  std::size_t active_;
};

}  // namespace mmph::core::kernels
