#pragma once

/// \file stochastic_greedy.hpp
/// \brief Stochastic (sampled) greedy — a sublinear-time variant of
/// Algorithm 2 (library extension).
///
/// Instead of scanning all n candidate points per round, each round
/// evaluates a uniform random sample of s = ceil((n/k)·ln(1/eps))
/// candidates and takes the best. For monotone submodular objectives this
/// achieves (1 − 1/e − eps) of the optimum in expectation
/// [Mirzasoleiman et al., AAAI 2015] while performing only O(n·ln(1/eps))
/// coverage evaluations across all k rounds — a drop-in speedup when n is
/// large and k moderate. Deterministic given the configured seed.

#include <cstdint>

#include "mmph/core/solver.hpp"
#include "mmph/random/rng.hpp"

namespace mmph::core {

class StochasticGreedySolver final : public Solver {
 public:
  /// \p epsilon in (0, 1) controls the sample size (quality/speed knob).
  explicit StochasticGreedySolver(double epsilon = 0.1,
                                  std::uint64_t seed = 2011);

  [[nodiscard]] std::string name() const override { return "greedy2-stoch"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

  /// The per-round sample size used for a given n (exposed for tests).
  [[nodiscard]] std::size_t sample_size(std::size_t n, std::size_t k) const;

 private:
  double epsilon_;
  std::uint64_t seed_;
};

}  // namespace mmph::core
