#pragma once

/// \file greedy_local.hpp
/// \brief Algorithm 2 — the local greedy algorithm ("greedy 2").
///
/// Each round, every input point is a candidate center; the one with the
/// largest coverage reward g(c) = sum_i w_i min(u_i(c), y_i) wins. Ties
/// break toward the lowest point index (paper §V-A). Complexity O(k n^2).
/// Approximation ratio 1 - (1 - 1/n)^k (paper Theorem 2).

#include "mmph/core/solver.hpp"

namespace mmph::core {

class GreedyLocalSolver final : public RoundSolverBase {
 public:
  [[nodiscard]] std::string name() const override { return "greedy2"; }

 protected:
  void select_center(const Problem& problem, std::span<const double> y,
                     std::span<double> out) const override;

  /// The all-candidates scan maps directly onto the spatial-index
  /// evaluator: same ascending order, same strict-> tie-break, identical
  /// rewards — so the indexed path picks identical centers.
  [[nodiscard]] bool supports_indexed_scan() const override { return true; }
  bool indexed_select(const Problem& problem,
                      const kernels::IndexedActiveSet& active,
                      std::span<double> out) const override;
};

}  // namespace mmph::core
