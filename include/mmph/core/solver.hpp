#pragma once

/// \file solver.hpp
/// \brief Abstract solver interface and the shared round-loop helper.
///
/// Every algorithm in the paper is round-based: k rounds, each choosing one
/// center and decreasing the residual vector y. Concrete solvers implement
/// select_center(); the base class owns the loop and the bookkeeping, so
/// per-round accounting is identical across algorithms.

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"

namespace mmph::core {

namespace kernels {
class IndexedActiveSet;
}

/// Interface implemented by all content-placement algorithms.
class Solver {
 public:
  virtual ~Solver() = default;

  /// Stable identifier used in tables ("greedy2", "greedy3", ...).
  [[nodiscard]] virtual std::string name() const = 0;

  /// Chooses k centers for \p problem.
  /// \throws InvalidArgument when k == 0.
  [[nodiscard]] virtual Solution solve(const Problem& problem,
                                       std::size_t k) const = 0;
};

/// Base for the round-based algorithms (1, 2, 3, 4): runs the k-round loop,
/// delegating only the per-round center choice.
class RoundSolverBase : public Solver {
 public:
  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const final;

 protected:
  /// Chooses the round's center given the residual \p y.
  /// Writes the chosen center coordinates (problem.dim() values) to \p out.
  virtual void select_center(const Problem& problem,
                             std::span<const double> y,
                             std::span<double> out) const = 0;

  /// Solvers whose select_center is an all-candidates reward scan can opt
  /// into the spatial-index evaluation path by returning true here and
  /// implementing indexed_select. The base loop then builds an
  /// IndexedActiveSet (subject to kernels::index_mode()) and calls
  /// indexed_select instead; selections must match select_center bit for
  /// bit (the indexed evaluator guarantees identical rewards).
  [[nodiscard]] virtual bool supports_indexed_scan() const { return false; }

  /// Indexed counterpart of select_center, evaluating candidates through
  /// \p active. Returns false to decline (e.g. an unsupported instance
  /// shape), in which case the loop falls back to select_center for the
  /// remaining rounds.
  virtual bool indexed_select(const Problem& problem,
                              const kernels::IndexedActiveSet& active,
                              std::span<double> out) const {
    (void)problem;
    (void)active;
    (void)out;
    return false;
  }
};

}  // namespace mmph::core
