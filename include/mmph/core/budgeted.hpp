#pragma once

/// \file budgeted.hpp
/// \brief Budgeted content selection (library extension).
///
/// The paper's related work (§II-B) points at the budgeted maximum
/// coverage problem [Khuller-Moss-Naor 1999]: contents are not all equal —
/// a 4K video costs more airtime than a text bulletin. This module
/// generalizes the cardinality constraint |C| = k to a knapsack
/// constraint sum costs <= budget over the candidate centers (the input
/// points, as in Algorithms 2/3).
///
/// Solver: the classic cost-benefit greedy (pick the candidate maximizing
/// marginal-gain / cost that still fits) safeguarded by the best single
/// affordable candidate; for budgeted max coverage that combination is a
/// (1 - 1/e)/2 approximation, and the same argument carries to this
/// submodular objective. An exhaustive knapsack enumerator over subsets is
/// provided for testing on small instances.

#include <cstdint>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/core/solution.hpp"

namespace mmph::core {

/// A budgeted instance: the base problem plus one cost per input point
/// (candidate center) and a total budget.
struct BudgetedInstance {
  const Problem* problem = nullptr;
  std::vector<double> costs;  ///< cost of broadcasting point i's content
  double budget = 0.0;

  /// Validates invariants (one positive cost per point, positive budget).
  void validate() const;
};

/// Result of a budgeted selection.
struct BudgetedSolution {
  std::vector<std::size_t> chosen;  ///< indices of selected points
  double total_cost = 0.0;
  double total_reward = 0.0;        ///< f(chosen)
};

/// Cost-benefit greedy with best-singleton safeguard. Deterministic
/// (ties toward the lowest candidate index).
[[nodiscard]] BudgetedSolution budgeted_greedy(const BudgetedInstance& inst);

/// Khuller-Moss-Naor partial enumeration: try every feasible prefix of at
/// most \p prefix_size candidates, complete each with cost-benefit greedy,
/// and keep the best. With prefix_size = 3 this achieves the full
/// (1 - 1/e) guarantee for budgeted coverage; prefix_size = 1 recovers the
/// safeguarded greedy's (1 - 1/e)/2. Cost grows as O(n^prefix_size) times
/// a greedy pass, so it suits n up to a few hundred with prefix 2-3.
[[nodiscard]] BudgetedSolution budgeted_partial_enumeration(
    const BudgetedInstance& inst, std::size_t prefix_size = 2);

/// Exact optimum by subset enumeration (testing/small instances only;
/// throws when C(n, *) would exceed ~2^24 subsets).
[[nodiscard]] BudgetedSolution budgeted_exhaustive(
    const BudgetedInstance& inst);

}  // namespace mmph::core
