#pragma once

/// \file registry.hpp
/// \brief Name-based solver construction for CLIs, examples and the
/// simulator's pluggable scheduler.

#include <memory>
#include <string>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/core/solver.hpp"

namespace mmph::core {

/// Tunables for solvers that need more than the problem itself.
struct SolverConfig {
  /// Grid pitch for "greedy1" (round-based oracle) and "exhaustive".
  double grid_pitch = 0.5;
  /// Use the exact 2-D L1 enclosing-ball for "greedy4" instead of the
  /// paper's projection rule.
  bool l1_exact_center = false;
};

/// Known names: "greedy1", "greedy2", "greedy2-lazy", "greedy3",
/// "greedy4", "exhaustive", "exhaustive-points".
[[nodiscard]] std::vector<std::string> solver_names();

/// Builds the named solver for \p problem.
/// \throws InvalidArgument for unknown names.
[[nodiscard]] std::unique_ptr<Solver> make_solver(
    const std::string& name, const Problem& problem,
    const SolverConfig& config = {});

}  // namespace mmph::core
