#pragma once

/// \file greedy_simple.hpp
/// \brief Algorithm 3 — the simple local greedy algorithm ("greedy 3").
///
/// Each round picks the point with the largest *single-point* residual
/// reward w_i * y_i as the center (ties toward the lowest index), then
/// claims the full coverage reward of that center. Complexity O(k n)
/// (paper Theorem 3); the Theorem-2 ratio 1 - (1 - 1/n)^k still holds.

#include "mmph/core/solver.hpp"

namespace mmph::core {

class GreedySimpleSolver final : public RoundSolverBase {
 public:
  [[nodiscard]] std::string name() const override { return "greedy3"; }

 protected:
  void select_center(const Problem& problem, std::span<const double> y,
                     std::span<double> out) const override;
};

}  // namespace mmph::core
