#pragma once

/// \file swap_evaluator.hpp
/// \brief Incremental objective evaluation for 1-swap neighborhoods.
///
/// Local search and warm-start replanning evaluate f(C with c_j replaced
/// by c') for many (j, c') pairs. Recomputing f from scratch costs O(k n)
/// per trial; this evaluator caches each center's unit-coverage vector and
/// the per-point totals, making a trial O(n) and a committed swap O(n).
/// Exactness: identical to objective_value up to floating-point
/// associativity (tests pin it to 1e-9 over long swap sequences).

#include <cstddef>
#include <vector>

#include "mmph/core/problem.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::core {

class SwapEvaluator {
 public:
  /// Caches coverage for \p centers (copied) against \p problem. The
  /// problem must outlive the evaluator.
  SwapEvaluator(const Problem& problem, const geo::PointSet& centers);

  [[nodiscard]] const geo::PointSet& centers() const noexcept {
    return centers_;
  }

  /// f(C) for the current center set.
  [[nodiscard]] double current_value() const noexcept { return value_; }

  /// f(C with centers[j] := candidate), without changing state. O(n).
  [[nodiscard]] double value_with_swap(std::size_t j,
                                       geo::ConstVec candidate) const;

  /// Applies the swap and updates the caches. O(n).
  void commit_swap(std::size_t j, geo::ConstVec candidate);

 private:
  [[nodiscard]] double evaluate_totals(
      const std::vector<double>& totals) const;

  const Problem& problem_;
  geo::PointSet centers_;
  /// units_[j * n + i] = u_i(c_j).
  std::vector<double> units_;
  /// totals_[i] = sum_j u_i(c_j) (uncapped).
  std::vector<double> totals_;
  double value_ = 0.0;
};

}  // namespace mmph::core
