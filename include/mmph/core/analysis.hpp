#pragma once

/// \file analysis.hpp
/// \brief Closed-form expected-reward model for uniform workloads.
///
/// Back-of-the-envelope analytics the paper's parameter choices imply but
/// never state: how much reward should one broadcast collect, in
/// expectation, for a given (n, m, p, r, box)? Used by the analysis bench
/// to sanity-check the simulator and useful for capacity planning (pick r
/// and k before measuring anything).
///
/// Model: points i.i.d. uniform in a box of side L; a center placed far
/// from the boundary covers points within the p-norm ball of radius r.
///   - P(cover one point) = V_ball(m, p, r) / L^m
///   - E[u | covered] = 1/(m+1) for the linear reward shape (the average
///     of (1 - d/r) over the ball, because the radial density is
///     m * rho^(m-1)), and 1 for the binary shape.
///   - E[f one center] = n * E[w] * P(cover) * E[u | covered]
/// Boundary effects make these upper estimates for centers near the hull;
/// tests validate against Monte Carlo away from the boundary.

#include <cstddef>

#include "mmph/core/problem.hpp"

namespace mmph::core {

/// Volume of the unit p-norm ball in R^m:
///   V = (2 Gamma(1/p + 1))^m / Gamma(m/p + 1).
/// Specializations: p=1 gives 2^m/m!, p=2 the Euclidean ball, p=inf 2^m.
[[nodiscard]] double unit_ball_volume(std::size_t dim, double p);

/// Volume of the radius-r ball under \p metric in R^dim.
[[nodiscard]] double ball_volume(std::size_t dim, const geo::Metric& metric,
                                 double radius);

/// Mean unit coverage of a point uniformly distributed in the ball:
/// 1/(dim+1) for linear decay, 1 for binary.
[[nodiscard]] double mean_unit_coverage(std::size_t dim, RewardShape shape);

/// Empirical total-curvature estimate of the instance's objective over the
/// ground set of input points:
///   c = 1 - min_i [ f(V) - f(V \ {i}) ] / f({i})
/// where the marginals use each point as a center. c = 0 means modular
/// (greedy is optimal); c -> 1 means strongly curved. Greedy's tight
/// guarantee under curvature is (1 - e^{-c})/c [Conforti-Cornuejols 1984],
/// which this estimate lets users evaluate per instance.
[[nodiscard]] double curvature_estimate(const Problem& problem);

/// The curvature-aware greedy guarantee (1 - e^{-c})/c, continuous at
/// c = 0 where it equals 1.
[[nodiscard]] double curvature_guarantee(double curvature);

/// Expected reward of a single interior center against n i.i.d. uniform
/// points in a box of side \p box_side with mean weight \p mean_weight.
/// The ball is clipped conceptually: when it exceeds the box volume the
/// coverage probability saturates at 1.
[[nodiscard]] double expected_single_center_reward(
    std::size_t n, std::size_t dim, const geo::Metric& metric, double radius,
    double box_side, double mean_weight,
    RewardShape shape = RewardShape::kLinear);

}  // namespace mmph::core
