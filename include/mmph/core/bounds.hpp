#pragma once

/// \file bounds.hpp
/// \brief Analytic approximation-ratio bounds (paper Theorems 1 and 2).

#include <cstddef>

namespace mmph::core {

/// Theorem 1: the round-based heuristic with exact round oracles achieves
/// at least 1 - (1 - 1/k)^k of the optimum ("approx. 1" in Fig. 2).
/// Monotonically decreases toward 1 - 1/e as k grows.
[[nodiscard]] double approx_ratio_round_based(std::size_t k);

/// Theorem 2: the local greedy algorithms achieve at least
/// 1 - (1 - 1/n)^k of the optimum ("approx. 2" in Fig. 2). n > k assumed.
[[nodiscard]] double approx_ratio_local_greedy(std::size_t n, std::size_t k);

/// The k -> infinity limit of Theorem 1, 1 - 1/e.
[[nodiscard]] double one_minus_inv_e();

}  // namespace mmph::core
