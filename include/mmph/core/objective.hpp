#pragma once

/// \file objective.hpp
/// \brief Direct evaluation of the submodular objective f(C) (Eq. 7).
///
/// Round-based solvers accumulate f through residual updates (reward.hpp);
/// this header evaluates f from a center set in one pass, which the
/// exhaustive solver and the property tests use. The two formulations agree
/// exactly (unit tests check it): sequential capping z_i^j = min(u, y_i^j)
/// sums to min(sum_j u_ij, 1) per point.

#include <span>

#include "mmph/core/problem.hpp"

namespace mmph::core {

/// f(C) = sum_i w_i min( sum_j [1 - d(c_j, x_i)/r]_+ , 1 ).
/// Centers are the rows of \p centers; an empty set yields 0.
[[nodiscard]] double objective_value(const Problem& problem,
                                     const geo::PointSet& centers);

/// As objective_value, but the center set is given as indices into a
/// candidate PointSet — the exhaustive solver's hot path.
[[nodiscard]] double objective_value(const Problem& problem,
                                     const geo::PointSet& candidates,
                                     std::span<const std::size_t> chosen);

/// Marginal gain f(C ∪ {c}) − f(C).
[[nodiscard]] double marginal_gain(const Problem& problem,
                                   const geo::PointSet& centers,
                                   geo::ConstVec extra);

}  // namespace mmph::core
