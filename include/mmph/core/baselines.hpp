#pragma once

/// \file baselines.hpp
/// \brief Non-greedy baseline solvers (library extension).
///
/// The paper compares its greedies only against each other and an
/// exhaustive optimum. Practitioners would also reach for two obvious
/// alternatives, so the library ships them as baselines:
///   - RandomSolver: k distinct input points chosen uniformly — the floor
///     any real algorithm must clear;
///   - KMeansSolver: weighted k-means(++) clustering of the interest
///     points; centers are cluster centroids. Natural because content
///     selection *looks* like clustering, and instructive because it
///     optimizes the wrong objective: distortion, not capped coverage
///     reward (see ablation_refinement and the frontier bench).

#include <cstdint>

#include "mmph/core/solver.hpp"
#include "mmph/random/rng.hpp"

namespace mmph::core {

/// Chooses k distinct input points uniformly at random (deterministic in
/// the configured seed). When k > n, wraps around re-using points.
class RandomSolver final : public Solver {
 public:
  explicit RandomSolver(std::uint64_t seed = 2011) : seed_(seed) {}

  [[nodiscard]] std::string name() const override { return "random"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

 private:
  std::uint64_t seed_;
};

/// Weighted k-means with k-means++ seeding under the problem's metric.
///
/// Assignment uses the problem metric; the center update is the weighted
/// mean for the 2-norm and the weighted per-dimension median for the
/// 1-norm (the correct 1-norm Fermat point per dimension); other metrics
/// fall back to the mean. Empty clusters are reseeded at the point
/// farthest from its current center. Deterministic in the seed.
class KMeansSolver final : public Solver {
 public:
  explicit KMeansSolver(std::size_t max_iterations = 50,
                        std::uint64_t seed = 2011);

  [[nodiscard]] std::string name() const override { return "kmeans"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

 private:
  std::size_t max_iterations_;
  std::uint64_t seed_;
};

}  // namespace mmph::core
