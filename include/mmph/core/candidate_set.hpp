#pragma once

/// \file candidate_set.hpp
/// \brief Finite center-candidate sets for the discrete solvers.
///
/// Algorithms 1 (round-based with an oracle), the exhaustive baseline, and
/// ablations all optimize over a finite set of candidate centers. The
/// natural sets are: the input points themselves (paper Algorithms 2/3),
/// a uniform grid over the instance box (approximating the continuous
/// domain), and their union.

#include "mmph/core/problem.hpp"
#include "mmph/geometry/point_set.hpp"

namespace mmph::core {

/// Copy of the instance's own points (the Algorithm 2/3 candidate domain).
[[nodiscard]] geo::PointSet candidates_from_points(const Problem& problem);

/// Uniform grid with spacing \p pitch covering \p box (endpoints included).
/// \throws InvalidArgument when pitch <= 0 or the grid would exceed
/// \p max_points (guards against accidental combinatorial blow-ups).
[[nodiscard]] geo::PointSet candidates_grid(const geo::Box& box, double pitch,
                                            std::size_t max_points = 2000000);

/// Grid over the bounding box of the instance, expanded by \p margin on
/// every side (centers slightly outside the hull can be optimal).
[[nodiscard]] geo::PointSet candidates_grid_over(const Problem& problem,
                                                 double pitch,
                                                 double margin = 0.0);

/// Union (concatenation; duplicates are harmless for the solvers).
[[nodiscard]] geo::PointSet candidates_union(const geo::PointSet& a,
                                             const geo::PointSet& b);

}  // namespace mmph::core
