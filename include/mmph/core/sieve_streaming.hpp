#pragma once

/// \file sieve_streaming.hpp
/// \brief One-pass streaming selection (Sieve-Streaming, library extension).
///
/// In a live content-distribution system users arrive as a stream and the
/// base station may not be able to buffer everyone before choosing what to
/// broadcast. Sieve-Streaming [Badanidiyuru et al., KDD 2014] maximizes a
/// monotone submodular function in ONE pass over candidate centers with
/// O((k log k)/eps) memory and a (1/2 - eps) guarantee:
///
///   - maintain geometric thresholds v in {(1+eps)^j} bracketing OPT,
///     using m = max singleton value to bound OPT in [m, k*m];
///   - each sieve keeps a center iff its marginal gain >= (v/2 - f(S))/
///     (k - |S|);
///   - answer with the best sieve.
///
/// Here the stream is the instance's points in index order (the natural
/// arrival order of users); the solver never revisits earlier points,
/// unlike Algorithms 1-4 which sweep all n points every round.

#include "mmph/core/solver.hpp"

namespace mmph::core {

class SieveStreamingSolver final : public Solver {
 public:
  /// \p epsilon in (0, 1): threshold granularity (memory/quality knob).
  explicit SieveStreamingSolver(double epsilon = 0.1);

  [[nodiscard]] std::string name() const override { return "sieve"; }

  [[nodiscard]] Solution solve(const Problem& problem,
                               std::size_t k) const override;

  /// Number of sieves the last solve() maintained (diagnostics).
  [[nodiscard]] std::size_t last_sieve_count() const noexcept {
    return last_sieves_;
  }

 private:
  double epsilon_;
  mutable std::size_t last_sieves_ = 0;
};

}  // namespace mmph::core
