#pragma once

/// \file mmph.hpp
/// \brief Umbrella header: the whole public API in one include.
///
/// Fine-grained headers remain the recommended include style inside larger
/// builds; this header exists for quick experiments and examples.

// Support
#include "mmph/support/assert.hpp"
#include "mmph/support/error.hpp"

// Geometry substrate
#include "mmph/geometry/ball.hpp"
#include "mmph/geometry/cell_grid.hpp"
#include "mmph/geometry/enclosing.hpp"
#include "mmph/geometry/enclosing_ball.hpp"
#include "mmph/geometry/enclosing_l1.hpp"
#include "mmph/geometry/kd_tree.hpp"
#include "mmph/geometry/norms.hpp"
#include "mmph/geometry/point_set.hpp"
#include "mmph/geometry/vec.hpp"

// Randomness and workloads
#include "mmph/random/halton.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/random/rng.hpp"
#include "mmph/random/workload.hpp"

// Parallelism
#include "mmph/parallel/parallel_for.hpp"
#include "mmph/parallel/thread_pool.hpp"

// I/O and statistics
#include "mmph/io/args.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/io/table.hpp"

// Core problem and solvers
#include "mmph/core/analysis.hpp"
#include "mmph/core/baselines.hpp"
#include "mmph/core/bounds.hpp"
#include "mmph/core/budgeted.hpp"
#include "mmph/core/candidate_set.hpp"
#include "mmph/core/certificate.hpp"
#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/indexed_reward.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/local_search.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/problem.hpp"
#include "mmph/core/registry.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/core/round_polish.hpp"
#include "mmph/core/sieve_streaming.hpp"
#include "mmph/core/solution.hpp"
#include "mmph/core/solver.hpp"
#include "mmph/core/stochastic_greedy.hpp"
#include "mmph/core/submodular.hpp"
#include "mmph/core/swap_evaluator.hpp"

// Local-search polish tier and certified upper bounds
#include "mmph/ls/bounds.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/ls/registry.hpp"

// Traces
#include "mmph/trace/span.hpp"
#include "mmph/trace/trace.hpp"

// Simulation
#include "mmph/sim/adaptive.hpp"
#include "mmph/sim/fairness.hpp"
#include "mmph/sim/metrics.hpp"
#include "mmph/sim/network.hpp"
#include "mmph/sim/recorder.hpp"
#include "mmph/sim/simulator.hpp"
#include "mmph/sim/user.hpp"
#include "mmph/sim/warm_start.hpp"

// Serving layer
#include "mmph/serve/instance_store.hpp"
#include "mmph/serve/metrics.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/serve/request.hpp"
#include "mmph/serve/request_batcher.hpp"
#include "mmph/serve/sharded_solver.hpp"

// Network layer
#include "mmph/net/client.hpp"
#include "mmph/net/metrics.hpp"
#include "mmph/net/server.hpp"
#include "mmph/net/socket.hpp"
#include "mmph/net/wire.hpp"

// Experiment harness
#include "mmph/exp/experiment.hpp"
#include "mmph/exp/paired.hpp"
#include "mmph/exp/report.hpp"
