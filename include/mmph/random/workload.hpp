#pragma once

/// \file workload.hpp
/// \brief Synthetic workload generation (user interests and weights).
///
/// The paper's simulation places n nodes uniformly at random in a 4x4 2-D
/// box (or 4x4x4 in 3-D) with weights either all 1 ("same weight") or
/// random integers in [1, 5] ("different weight"). Those two configurations
/// reproduce the paper; the extra placements/weight schemes support the
/// example applications and robustness studies.

#include <cstdint>
#include <string>
#include <vector>

#include "mmph/geometry/point_set.hpp"
#include "mmph/random/rng.hpp"

namespace mmph::rnd {

/// How user interest points are placed in the box.
enum class Placement {
  kUniform,    ///< i.i.d. uniform in the box (the paper's setting).
  kHalton,     ///< low-discrepancy quasi-random fill.
  kClustered,  ///< Gaussian mixture: interests form genres/communities.
};

/// How per-user maximum rewards (weights) are drawn.
enum class WeightScheme {
  kSame,        ///< every weight equals `same_weight` (paper: 1).
  kUniformInt,  ///< integer uniform in [weight_lo, weight_hi] (paper: 1..5).
  kZipf,        ///< Zipf-ranked weights: a few users matter a lot.
};

[[nodiscard]] const char* placement_name(Placement p);
[[nodiscard]] const char* weight_scheme_name(WeightScheme s);

/// Declarative description of a synthetic workload.
struct WorkloadSpec {
  std::size_t n = 40;
  std::size_t dim = 2;
  double box_side = 4.0;  ///< box is [0, box_side]^dim as in the paper.
  Placement placement = Placement::kUniform;
  WeightScheme weights = WeightScheme::kUniformInt;
  double same_weight = 1.0;
  std::int64_t weight_lo = 1;
  std::int64_t weight_hi = 5;
  double zipf_exponent = 1.0;
  std::size_t clusters = 3;
  double cluster_stddev = 0.4;

  /// Human-readable one-line summary for logs/tables.
  [[nodiscard]] std::string describe() const;
};

/// A generated instance: points plus aligned weights.
struct Workload {
  geo::PointSet points;
  std::vector<double> weights;

  [[nodiscard]] std::size_t size() const noexcept { return weights.size(); }
  [[nodiscard]] double total_weight() const;
};

/// Draws one workload instance. Deterministic in (spec, rng state).
[[nodiscard]] Workload generate_workload(const WorkloadSpec& spec, Rng& rng);

}  // namespace mmph::rnd
