#pragma once

/// \file pcg64.hpp
/// \brief PCG-XSL-RR 128/64 pseudo-random generator.
///
/// A small, fast, statistically strong engine (O'Neill, PCG family) that is
/// reproducible across platforms — unlike std::mt19937's distributions,
/// every draw here is defined bit-for-bit, which the experiment harness
/// relies on for seed-stable tables. Satisfies
/// std::uniform_random_bit_generator.

#include <cstdint>

namespace mmph::rnd {

/// SplitMix64 step function: the canonical way to expand one 64-bit seed
/// into an arbitrary-length, well-mixed seed sequence.
[[nodiscard]] constexpr std::uint64_t splitmix64_next(
    std::uint64_t& state) noexcept {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

/// PCG-XSL-RR with 128-bit state and 64-bit output.
class Pcg64 {
 public:
  using result_type = std::uint64_t;

  /// Seeds state and stream from a single 64-bit value via SplitMix64.
  explicit constexpr Pcg64(std::uint64_t seed = 0xCAFEF00DD15EA5E5ull) noexcept
      : state_hi_(0), state_lo_(0), inc_hi_(0), inc_lo_(0) {
    std::uint64_t sm = seed;
    const std::uint64_t s0 = splitmix64_next(sm);
    const std::uint64_t s1 = splitmix64_next(sm);
    const std::uint64_t i0 = splitmix64_next(sm);
    const std::uint64_t i1 = splitmix64_next(sm);
    // Increment must be odd.
    inc_hi_ = i0;
    inc_lo_ = i1 | 1ull;
    state_hi_ = s0;
    state_lo_ = s1;
    (void)operator()();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ull; }

  constexpr result_type operator()() noexcept {
    // LCG step on the 128-bit state (multiplier from the PCG reference).
    constexpr std::uint64_t kMulHi = 2549297995355413924ull;
    constexpr std::uint64_t kMulLo = 4865540595714422341ull;
    const std::uint64_t old_hi = state_hi_;
    const std::uint64_t old_lo = state_lo_;
    mul128(old_hi, old_lo, kMulHi, kMulLo, state_hi_, state_lo_);
    add128(state_hi_, state_lo_, inc_hi_, inc_lo_);
    // Output: xor-shift-low then random rotation by the top 6 bits.
    const std::uint64_t xored = old_hi ^ old_lo;
    const unsigned rot = static_cast<unsigned>(old_hi >> 58u);
    return rotr64(xored, rot);
  }

  /// Uniform double in [0, 1) with 53 random bits.
  constexpr double next_double() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Unbiased uniform integer in [0, bound) via Lemire-style rejection.
  constexpr std::uint64_t next_below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = operator()();
      if (r >= threshold) return r % bound;
    }
  }

 private:
  static constexpr std::uint64_t rotr64(std::uint64_t v, unsigned r) noexcept {
    return (v >> (r & 63u)) | (v << ((64u - r) & 63u));
  }

  static constexpr void add128(std::uint64_t& hi, std::uint64_t& lo,
                               std::uint64_t add_hi,
                               std::uint64_t add_lo) noexcept {
    const std::uint64_t old_lo = lo;
    lo += add_lo;
    hi += add_hi + (lo < old_lo ? 1u : 0u);
  }

  static constexpr void mul128(std::uint64_t a_hi, std::uint64_t a_lo,
                               std::uint64_t b_hi, std::uint64_t b_lo,
                               std::uint64_t& out_hi,
                               std::uint64_t& out_lo) noexcept {
    // Portable 64x64 -> 128 multiply, then fold in the cross terms.
    // (Kept free of compiler-specific __int128 so -Wpedantic stays clean;
    // the optimizer recognizes this pattern and emits a single mulx chain.)
    const std::uint64_t a0 = a_lo & 0xFFFFFFFFull, a1 = a_lo >> 32;
    const std::uint64_t b0 = b_lo & 0xFFFFFFFFull, b1 = b_lo >> 32;
    const std::uint64_t t00 = a0 * b0;
    const std::uint64_t t01 = a0 * b1;
    const std::uint64_t t10 = a1 * b0;
    const std::uint64_t t11 = a1 * b1;
    const std::uint64_t mid =
        (t00 >> 32) + (t01 & 0xFFFFFFFFull) + (t10 & 0xFFFFFFFFull);
    out_lo = (t00 & 0xFFFFFFFFull) | (mid << 32);
    out_hi = t11 + (t01 >> 32) + (t10 >> 32) + (mid >> 32);
    out_hi += a_lo * b_hi + a_hi * b_lo;
  }

  std::uint64_t state_hi_;
  std::uint64_t state_lo_;
  std::uint64_t inc_hi_;
  std::uint64_t inc_lo_;
};

}  // namespace mmph::rnd
