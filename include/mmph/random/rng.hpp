#pragma once

/// \file rng.hpp
/// \brief Seedable RNG facade with the distributions mmph needs.
///
/// All randomness in the library flows through Rng so experiments are
/// reproducible from a single seed. Child generators (Rng::fork) give
/// independent streams to parallel trials without sharing state.

#include <cmath>
#include <cstdint>
#include <vector>

#include "mmph/random/pcg64.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::rnd {

/// Deterministic random source; value-semantic and cheap to copy.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 42) : engine_(seed), seed_(seed) {}

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

  /// Raw 64 random bits.
  [[nodiscard]] std::uint64_t next_u64() { return engine_(); }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() { return engine_.next_double(); }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) {
    MMPH_ASSERT(lo <= hi, "uniform: inverted range");
    return lo + (hi - lo) * engine_.next_double();
  }

  /// Uniform integer in [lo, hi] (inclusive).
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    MMPH_ASSERT(lo <= hi, "uniform_int: inverted range");
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1u;
    return lo + static_cast<std::int64_t>(engine_.next_below(span));
  }

  /// Standard normal via Marsaglia polar method.
  [[nodiscard]] double normal() {
    if (have_spare_) {
      have_spare_ = false;
      return spare_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double f = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * f;
    have_spare_ = true;
    return u * f;
  }

  /// Normal with given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) {
    return mean + stddev * normal();
  }

  /// Exponential with given rate (lambda > 0).
  [[nodiscard]] double exponential(double rate) {
    MMPH_ASSERT(rate > 0.0, "exponential: rate must be positive");
    double u;
    do {
      u = uniform();
    } while (u == 0.0);
    return -std::log(u) / rate;
  }

  /// True with probability p.
  [[nodiscard]] bool bernoulli(double p) { return uniform() < p; }

  /// Index in [0, weights.size()) drawn proportionally to weights.
  [[nodiscard]] std::size_t categorical(const std::vector<double>& weights);

  /// Zipf-distributed rank in [1, n] with exponent s >= 0 (s = 0 uniform).
  [[nodiscard]] std::size_t zipf(std::size_t n, double s);

  /// Fisher-Yates shuffle of the index range [0, n).
  [[nodiscard]] std::vector<std::size_t> permutation(std::size_t n);

  /// Independent child stream; deterministic in (parent seed, salt).
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    std::uint64_t s = seed_ ^ (0xA24BAED4963EE407ull * (salt + 1));
    (void)splitmix64_next(s);
    return Rng(s);
  }

 private:
  Pcg64 engine_;
  std::uint64_t seed_;
  double spare_ = 0.0;
  bool have_spare_ = false;
};

}  // namespace mmph::rnd
