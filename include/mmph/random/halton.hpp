#pragma once

/// \file halton.hpp
/// \brief Halton low-discrepancy sequences for quasi-random placements.
///
/// Used by the workload generator's kHalton placement: points fill the box
/// evenly rather than clumping, which isolates algorithm behaviour from
/// sampling noise in ablation studies.

#include <cstddef>
#include <vector>

namespace mmph::rnd {

/// i-th element (i >= 0) of the van der Corput sequence in the given base.
[[nodiscard]] double van_der_corput(std::size_t i, std::size_t base);

/// Generates n Halton points in [0,1)^dim using the first `dim` primes as
/// bases, skipping `skip` initial elements (a standard burn-in to avoid the
/// correlated prefix).
[[nodiscard]] std::vector<double> halton_sequence(std::size_t n,
                                                  std::size_t dim,
                                                  std::size_t skip = 20);

}  // namespace mmph::rnd
