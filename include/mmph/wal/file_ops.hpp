#pragma once

/// \file file_ops.hpp
/// \brief Syscall seam + in-memory filesystem for the write-ahead log.
///
/// Mirror of net::SocketOps for file I/O: every open / read / write /
/// fsync / rename the WAL performs goes through a FileOps hook table, so
/// tests and the chaos harness can inject short writes, torn records, and
/// fsync failures with the exact errno shape the real syscalls produce —
/// the writer's retry/poison logic then exercises its production failure
/// paths, never special test paths.
///
/// Two implementations ship:
///   - FileOps::system(): forwards to the POSIX calls;
///   - MemFileOps: a deterministic in-memory filesystem whose whole state
///     can be clone()d, which is what makes crash-point matrix tests cheap
///     (clone after every step, recover from the clone, compare stores).

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "mmph/support/error.hpp"

namespace mmph::wal {

/// A WAL file/system operation failed, or the writer is poisoned (message
/// carries the errno text where one exists).
class WalError : public Error {
 public:
  explicit WalError(const std::string& what) : Error(what) {}
};

/// How a file is opened. A tiny enum instead of raw O_* flags keeps the
/// seam portable and the in-memory implementation honest.
enum class OpenMode : std::uint8_t {
  kRead,      ///< existing file, read-only, positioned at the start
  kAppend,    ///< create if missing, write-only, positioned at the end
  kTruncate,  ///< create or wipe, write-only
};

/// Hook table for every file syscall the WAL performs. Each hook has the
/// return/errno contract of the syscall it replaces (-1 + errno on
/// failure), so injected faults are indistinguishable from real ones.
/// Implementations must be thread-safe (system() is; MemFileOps and the
/// chaos injector serialize internally).
class FileOps {
 public:
  virtual ~FileOps() = default;

  /// ::open — returns an fd >= 0 or -1 + errno.
  virtual int open(const std::string& path, OpenMode mode);
  /// ::read(fd, buf, cap) — bytes read, 0 on EOF, -1 + errno.
  virtual ssize_t read(int fd, std::uint8_t* buf, std::size_t cap);
  /// ::write(fd, buf, len) — bytes written (possibly short), -1 + errno.
  virtual ssize_t write(int fd, const std::uint8_t* buf, std::size_t len);
  /// ::fsync(fd) — 0 or -1 + errno.
  virtual int fsync(int fd);
  /// ::close(fd) — 0 or -1 + errno.
  virtual int close(int fd);
  /// ::rename — atomic replace; 0 or -1 + errno.
  virtual int rename(const std::string& from, const std::string& to);
  /// ::unlink — 0 or -1 + errno.
  virtual int remove(const std::string& path);
  /// ::mkdir (0755) — 0 or -1 + errno; EEXIST is the caller's to ignore.
  virtual int mkdir(const std::string& path);
  /// Durability point for renames/creates in \p dir — 0 or -1 + errno.
  virtual int sync_dir(const std::string& dir);
  /// Names (not paths) of regular files directly inside \p dir, sorted;
  /// nullopt when the directory cannot be read.
  virtual std::optional<std::vector<std::string>> list(const std::string& dir);

  /// Process-wide POSIX passthrough instance (stateless, thread-safe).
  [[nodiscard]] static FileOps& system() noexcept;
};

/// Deterministic in-memory filesystem. Paths are opaque strings; a file
/// "is in directory d" when its path is d + "/" + name with no further
/// separator. fsync is a no-op (everything written is already "durable"),
/// which matches the crash model the recovery invariant is stated under:
/// a crash preserves every byte a write() reported written.
///
/// Directories exist when mkdir() created them or when a file lives
/// inside them (files planted by set_file_bytes imply their directory,
/// which keeps older tests working). list() on a directory that exists
/// by neither rule fails with ENOENT, exactly like opendir — so the
/// missing-dir vs. empty-dir distinction recovery reports is testable
/// in memory.
class MemFileOps final : public FileOps {
 public:
  int open(const std::string& path, OpenMode mode) override;
  ssize_t read(int fd, std::uint8_t* buf, std::size_t cap) override;
  ssize_t write(int fd, const std::uint8_t* buf, std::size_t len) override;
  int fsync(int fd) override;
  int close(int fd) override;
  int rename(const std::string& from, const std::string& to) override;
  int remove(const std::string& path) override;
  int mkdir(const std::string& path) override;
  int sync_dir(const std::string& dir) override;
  std::optional<std::vector<std::string>> list(const std::string& dir) override;

  /// Deep copy of the file contents (open fds are not cloned) — the
  /// "pull the plug here" primitive of the crash-point matrix test.
  [[nodiscard]] std::unique_ptr<MemFileOps> clone() const;

  /// Test access to raw bytes: nullopt for unknown paths.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> file_bytes(
      const std::string& path) const;
  /// Overwrites a file's bytes (corruption injection); creates it if new.
  void set_file_bytes(const std::string& path, std::vector<std::uint8_t> bytes);
  /// Drops the last \p n bytes of \p path (simulated unsynced-tail loss).
  /// Returns false for unknown paths.
  bool truncate_tail(const std::string& path, std::size_t n);
  [[nodiscard]] std::vector<std::string> all_paths() const;

 private:
  struct OpenFile {
    std::string path;
    OpenMode mode = OpenMode::kRead;
    std::size_t pos = 0;
  };

  [[nodiscard]] bool dir_exists_locked(const std::string& dir) const;

  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::uint8_t>> files_;
  std::map<std::string, bool> dirs_;  ///< mkdir'd paths (set semantics)
  std::map<int, OpenFile> open_files_;
  int next_fd_ = 1000;
};

}  // namespace mmph::wal
