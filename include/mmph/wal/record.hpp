#pragma once

/// \file record.hpp
/// \brief Versioned, CRC-guarded WAL record codec.
///
/// One record logs one effective mutation batch against the store: a
/// batch of upserts or the ids a remove batch actually removed (unknown
/// ids are filtered *before* logging, so replay advances the store epoch
/// exactly as the original execution did). Layout, little-endian like
/// wire.hpp, 36-byte header followed by the payload:
///
///   offset  size  field
///        0     4  magic        0x4C41574D ("MWAL" on disk, LE)
///        4     1  version      kWalVersion (currently 1)
///        5     1  type         RecordType
///        6     2  dim          interest dimension (kUpsert; 0 for kRemove)
///        8     8  lsn          writer-assigned, strictly increasing
///       16     8  epoch        store epoch AFTER applying this record
///       24     4  count        users (kUpsert) / removed ids (kRemove)
///       28     4  payload_len  bytes following the header
///       32     4  crc32c       over header bytes [0,32) ++ payload
///
///   kUpsert payload: count x { id u64, weight f64, coords dim x f64 }
///   kRemove payload: count x { id u64 }
///
/// Because every applied element advances the store epoch by exactly one,
/// `epoch - count` is the epoch the record was appended at — replay can
/// verify the chain without any extra field. The decoder mirrors the wire
/// decoder's paranoia: bytes from disk are treated as hostile (a torn
/// tail IS hostile input), every length is bounds-checked before any
/// allocation, the CRC is verified before any field is trusted beyond the
/// header, and every failure is a typed status — never UB or a throw.

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmph::wal {

inline constexpr std::uint32_t kRecordMagic = 0x4C41574Du;  // "MWAL" LE
inline constexpr std::uint8_t kWalVersion = 1;
inline constexpr std::size_t kRecordHeaderBytes = 36;
/// Hard cap on one record's payload, checked before buffering decisions.
inline constexpr std::uint32_t kMaxRecordPayloadBytes = 1u << 26;  // 64 MiB
/// Hard cap on users/ids per record (matches net::kMaxBatchCount).
inline constexpr std::uint32_t kMaxRecordCount = 1u << 16;
/// Hard cap on the interest dimension (matches net::kMaxDim).
inline constexpr std::uint16_t kMaxRecordDim = 1024;

enum class RecordType : std::uint8_t {
  kUpsert = 1,  ///< insert-or-overwrite a batch of users
  kRemove = 2,  ///< remove a batch of ids (all present when logged)
};

/// One decoded (or to-be-encoded) log record. Plain vectors, not
/// serve::UserRecord — wal sits *below* serve in the layer diagram.
struct WalRecord {
  RecordType type = RecordType::kUpsert;
  std::uint64_t lsn = 0;
  std::uint64_t epoch = 0;  ///< store epoch after applying this record
  std::uint16_t dim = 0;    ///< kUpsert only; 0 for kRemove
  std::vector<std::uint64_t> ids;
  std::vector<double> weights;  ///< kUpsert: one per id
  std::vector<double> coords;   ///< kUpsert: ids.size() * dim, row-major

  [[nodiscard]] std::uint32_t count() const noexcept {
    return static_cast<std::uint32_t>(ids.size());
  }
};

/// CRC-32C (Castagnoli), the polynomial storage stacks standardize on.
/// \p seed chains partial computations (pass the previous return value).
[[nodiscard]] std::uint32_t crc32c(const std::uint8_t* data, std::size_t n,
                                   std::uint32_t seed = 0) noexcept;

/// Appends the encoded record to \p out. \throws InvalidArgument when the
/// record violates the format limits (outbound records come from trusted
/// code, so a violation is a caller bug).
void encode_record(const WalRecord& record, std::vector<std::uint8_t>& out);

/// Every way a stored record can fail to decode. kNeedMoreData is the
/// only non-error value besides kOk; at end-of-log it means a torn tail
/// (the crash interrupted an append) and recovery drops it.
enum class RecordDecodeStatus : std::uint8_t {
  kOk = 0,
  kNeedMoreData,  ///< buffer ends inside the header or payload
  kBadMagic,
  kBadVersion,
  kBadType,
  kOversized,  ///< payload_len / count / dim above its hard cap
  kBadCrc,     ///< checksum mismatch (bit rot or a torn rewrite)
  kMalformed,  ///< payload size inconsistent with type/count/dim
};

[[nodiscard]] const char* to_string(RecordDecodeStatus status) noexcept;

struct RecordDecodeResult {
  RecordDecodeStatus status = RecordDecodeStatus::kNeedMoreData;
  std::size_t consumed = 0;  ///< bytes consumed (only meaningful on kOk)
  WalRecord record;
};

/// Decodes one record from the front of [data, data + size). Atomic like
/// the wire decoder: a fully validated record, a request for more bytes,
/// or a typed error — never a partially decoded record.
[[nodiscard]] RecordDecodeResult decode_record(const std::uint8_t* data,
                                               std::size_t size);

}  // namespace mmph::wal
