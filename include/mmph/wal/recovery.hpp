#pragma once

/// \file recovery.hpp
/// \brief Crash recovery: newest valid checkpoint + log-suffix replay.
///
/// The recovery state machine, in file order:
///
///   1. SNAPSHOT — try snap-*.mmps files newest-first; the first one that
///      decodes (magic, version, CRC) becomes the base state. Corrupt
///      snapshots are counted and skipped — an older checkpoint plus a
///      longer replay reaches the same state.
///   2. REPLAY — walk wal-*.mmpl segments in ascending epoch order.
///      Records at or below the current epoch are redundant (already in
///      the checkpoint) and skipped; a record whose epoch equals
///      current + count chains and is applied with the store's exact
///      upsert/swap-remove semantics.
///   3. TORN TAIL — a record cut short at the end of a segment is the
///      crash interrupting an append. The append never returned, so the
///      op was never applied or acked: the tail bytes are dropped and
///      replay continues with the next segment (which a post-crash writer
///      started exactly at the pre-tear epoch).
///   4. STOP — any other corruption (bad CRC mid-file, a broken epoch
///      chain, a remove of an absent id) ends replay: bytes past an
///      untrusted region are not provably contiguous with the state.
///
/// The result is bitwise-identical to the pre-crash store — same rows,
/// same order, same epoch — because every applied element advanced the
/// epoch by one and the append-before-apply discipline makes "in the
/// log" a superset of "applied" that the epoch chain trims exactly.

#include <cstdint>
#include <string>

#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/snapshot.hpp"

namespace mmph::wal {

struct RecoveryResult {
  /// The recovered store content (row order preserved).
  WalSnapshot store;
  /// Epoch of the checkpoint replay started from (0 = none found).
  std::uint64_t snapshot_epoch = 0;
  /// Highest record lsn replayed (0 when none) — new writers continue
  /// after it.
  std::uint64_t last_lsn = 0;
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;  ///< redundant (covered by checkpoint)
  std::uint64_t torn_bytes_dropped = 0;
  std::uint64_t segments_scanned = 0;
  std::uint64_t snapshots_discarded = 0;  ///< corrupt checkpoints skipped
  /// False when replay stopped at corruption other than a clean torn
  /// tail (mid-file CRC failure, broken epoch chain). The store is still
  /// a consistent historical state, just possibly not the newest one.
  bool clean = true;
  /// True when the directory existed (even empty). Distinguishes
  /// "fresh start because the dir is missing" from "fresh start from an
  /// existing dir that holds no log" — wal-recover and serve-net startup
  /// report the same value, so the two tools cannot disagree about which
  /// case they saw.
  bool dir_found = false;
  /// Human-readable note about why clean == false (empty otherwise).
  std::string detail;
};

/// Recovers the store image from \p dir. \p dim_hint seeds the dimension
/// for an empty/fresh directory (0 = adopt from the first snapshot or
/// record); a record whose dim contradicts the established one stops
/// replay as corruption. Never throws on bad data — corruption is
/// reported through the result, not exceptions.
[[nodiscard]] RecoveryResult recover(const std::string& dir,
                                     std::uint16_t dim_hint = 0,
                                     FileOps& ops = FileOps::system());

}  // namespace mmph::wal
