#pragma once

/// \file writer.hpp
/// \brief Append-only log writer with group commit and checkpoint rolls.
///
/// One WalWriter owns one log directory:
///
///   <dir>/wal-<epoch>.mmpl    log segment; records with epochs > <epoch>
///   <dir>/snap-<epoch>.mmps   checkpoint of the store at <epoch>
///
/// Appends go to the newest segment; write_snapshot() checkpoints the
/// store, rolls a fresh segment named after the checkpoint epoch, and
/// prunes every file the checkpoint made redundant. Durability is
/// policy-driven (FsyncPolicy); the PlacementService appends *before*
/// applying a mutation and commits before acking, so a kOk reply implies
/// the op is in the log at least as durably as the policy promises.
///
/// Failure model: the first failed write/fsync poisons the writer — every
/// later append/commit throws WalError without touching the file. Poison
/// instead of retry keeps the on-disk tail well-defined (at most one torn
/// record, which recovery drops); the service layer surfaces the poison
/// as kInternalError and the operator restarts through recovery.
///
/// The writer also retains an in-memory tail of recently appended,
/// already-encoded records (bounded by tail_retain_bytes). tail_since()
/// serves the replication stream from it without touching the disk; a
/// subscriber that has fallen behind the retained window is told to take
/// a fresh snapshot instead.
///
/// Thread-safe: every public method serializes on one internal mutex
/// (appends come from the service's batch path, tail reads from the
/// server's event loop).

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "mmph/obs/registry.hpp"
#include "mmph/wal/file_ops.hpp"
#include "mmph/wal/record.hpp"
#include "mmph/wal/snapshot.hpp"

namespace mmph::wal {

/// When appended records hit the platter.
enum class FsyncPolicy : std::uint8_t {
  kAlways,       ///< fsync inside every append (durable before the ack)
  kGroupCommit,  ///< fsync once per commit() — one sync covers a batch
  kNever,        ///< leave syncing to the OS (benchmarks, throwaway data)
};

[[nodiscard]] const char* to_string(FsyncPolicy policy) noexcept;
/// Parses "always" / "group" / "never"; nullopt otherwise.
[[nodiscard]] std::optional<FsyncPolicy> fsync_policy_from_string(
    std::string_view text) noexcept;

struct WalConfig {
  std::string dir;
  FsyncPolicy fsync = FsyncPolicy::kGroupCommit;
  /// write_snapshot is suggested (wants_snapshot()) once this many
  /// applied elements accumulated since the last checkpoint; 0 disables
  /// the suggestion (explicit checkpoints only).
  std::uint64_t snapshot_every_ops = 0;
  /// Byte budget of the in-memory replication tail.
  std::size_t tail_retain_bytes = 4u << 20;
  /// File syscall hook table; null selects FileOps::system(). Tests point
  /// this at MemFileOps or chaos::FaultyFileOps. Must outlive the writer.
  FileOps* file_ops = nullptr;
};

/// Log file names, zero-padded so lexicographic order is epoch order.
[[nodiscard]] std::string segment_file_name(std::uint64_t epoch);
[[nodiscard]] std::string snapshot_file_name(std::uint64_t epoch);
/// Epoch encoded in \p name when it matches \p prefix<digits>\p suffix.
[[nodiscard]] std::optional<std::uint64_t> parse_file_epoch(
    std::string_view name, std::string_view prefix, std::string_view suffix);

class WalWriter {
 public:
  /// Opens \p config.dir (creating it) and starts a segment at
  /// \p base_epoch / \p base_lsn — zeros for a fresh log, the recovery
  /// result's values when continuing an existing one. \throws WalError
  /// when the directory or segment cannot be created.
  explicit WalWriter(WalConfig config, std::uint64_t base_epoch = 0,
                     std::uint64_t base_lsn = 0);
  ~WalWriter();

  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Appends one record, assigning record.lsn and record.epoch (the
  /// current epoch advanced by record.count()). Under kAlways the record
  /// is fsync'd before append returns. \throws WalError when the writer
  /// is poisoned or the write fails (which poisons it) — the caller must
  /// then NOT apply the mutation.
  void append(WalRecord& record);

  /// Durability barrier for everything appended so far (one fsync under
  /// kGroupCommit; no-op otherwise). \throws WalError on failure, which
  /// poisons the writer; the appended mutations are applied in memory but
  /// their durability is unknown — callers ack kInternalError.
  void commit();

  /// Checkpoints \p snapshot, rolls a fresh segment, and prunes files the
  /// checkpoint covers. \p snapshot.epoch must be >= the writer's epoch:
  /// equal for the normal "checkpoint what I just logged" call, greater
  /// when installing a replicated snapshot (the writer's epoch jumps).
  /// \throws WalError on any IO failure (poisons).
  void write_snapshot(const WalSnapshot& snapshot);

  /// True once snapshot_every_ops > 0 applied elements accumulated since
  /// the last checkpoint — the service's cue to call write_snapshot.
  [[nodiscard]] bool wants_snapshot() const;

  /// Marks the writer failed (store/log divergence detected upstream).
  void poison(const std::string& reason);
  [[nodiscard]] bool failed() const;

  struct TailResult {
    /// False when \p epoch predates the retained window — the subscriber
    /// needs a full snapshot before streaming can resume.
    bool covered = false;
    std::uint64_t last_epoch = 0;  ///< epoch after applying \p bytes
    std::uint32_t count = 0;       ///< whole records in \p bytes
    std::vector<std::uint8_t> bytes;
  };

  /// Encoded records with epochs > \p epoch, up to ~\p max_bytes (always
  /// whole records, at least one when any is pending).
  [[nodiscard]] TailResult tail_since(std::uint64_t epoch,
                                      std::size_t max_bytes = 1u << 20) const;

  [[nodiscard]] std::uint64_t last_lsn() const;
  [[nodiscard]] std::uint64_t last_epoch() const;
  [[nodiscard]] std::uint64_t snapshot_epoch() const;
  [[nodiscard]] std::uint64_t ops_since_snapshot() const;
  [[nodiscard]] const WalConfig& config() const noexcept { return config_; }

  /// Instrument registry (mmph_wal_*), for the merged kStats exposition.
  [[nodiscard]] const obs::Registry& registry() const noexcept {
    return registry_;
  }

 private:
  struct TailEntry {
    std::uint64_t epoch_after = 0;
    std::uint32_t count = 0;
    std::vector<std::uint8_t> bytes;
  };

  void write_all_locked(int fd, const std::uint8_t* data, std::size_t len,
                        const char* what);
  void fsync_locked(int fd, const char* what);
  [[nodiscard]] WalError poison_locked(const std::string& reason);
  void prune_locked(std::uint64_t keep_epoch);

  WalConfig config_;
  FileOps& ops_;

  mutable std::mutex mutex_;
  int fd_ = -1;
  bool failed_ = false;
  bool dirty_ = false;  ///< bytes appended since the last fsync
  std::uint64_t next_lsn_ = 1;
  std::uint64_t last_epoch_ = 0;
  std::uint64_t snapshot_epoch_ = 0;
  std::uint64_t ops_since_snapshot_ = 0;

  std::deque<TailEntry> tail_;
  std::size_t tail_bytes_ = 0;
  std::uint64_t tail_base_epoch_ = 0;  ///< epoch before the oldest entry

  obs::Registry registry_;
  obs::Counter* appends_total_;
  obs::Counter* bytes_total_;
  obs::Counter* commits_total_;
  obs::Counter* snapshots_total_;
  obs::Counter* failures_total_;
  obs::Histogram* fsync_seconds_;
};

}  // namespace mmph::wal
