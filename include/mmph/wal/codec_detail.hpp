#pragma once

/// \file codec_detail.hpp
/// \brief Little-endian primitives shared by the WAL record and snapshot
/// codecs. Byte-by-byte shifts, not memcpy of host integers, so the disk
/// format reads the same bytes on every host byte order (same discipline
/// as net/wire.cpp, which keeps its copy private to one translation unit;
/// wal has two codec files, hence this small shared header).

#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace mmph::wal::detail {

inline void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

inline void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

inline void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked reader (mirror of the wire decoder's Cursor): every
/// read checks remaining() first, so a lying length field can never walk
/// past the buffer; ok_ latches false on the first short read.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  std::uint8_t u8() { return ok_ && take(1) ? data_[pos_ - 1] : 0; }

  std::uint16_t u16() {
    if (!ok_ || !take(2)) return 0;
    const std::uint8_t* p = data_ + pos_ - 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32() {
    if (!ok_ || !take(4)) return 0;
    const std::uint8_t* p = data_ + pos_ - 4;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::uint64_t u64() {
    if (!ok_ || !take(8)) return 0;
    const std::uint8_t* p = data_ + pos_ - 8;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

 private:
  bool take(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

}  // namespace mmph::wal::detail
