#pragma once

/// \file snapshot.hpp
/// \brief Epoch-stamped store image: the WAL's checkpoint format.
///
/// A WalSnapshot is the exact byte content of the InstanceStore's
/// structure-of-arrays at one epoch — ids, weights, and row-major coords
/// *in row order*. Row order matters: swap-remove makes the store's row
/// layout history-dependent, and the recovery invariant is bitwise
/// equality with the pre-crash store, so a checkpoint must capture the
/// rows exactly as they sat, not in any canonical order. File layout
/// (little-endian):
///
///   offset  size  field
///        0     4  magic     0x53504D4D ("MMPS" on disk, LE)
///        4     1  version   kWalVersion
///        5     1  reserved  0
///        6     2  dim
///        8     8  epoch
///       16     8  count
///       24     -  ids (count x u64), weights (count x f64),
///                 coords (count x dim x f64)
///      end     4  crc32c over every preceding byte
///
/// Snapshots are written to a temp name, fsync'd, then renamed into
/// place, so a reader never sees a half-written snapshot under its final
/// name; the CRC catches the remaining cases (bit rot, torn rename on
/// non-atomic filesystems) and recovery falls back to the previous
/// snapshot.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mmph/wal/record.hpp"

namespace mmph::wal {

inline constexpr std::uint32_t kSnapshotMagic = 0x53504D4Du;  // "MMPS" LE

struct WalSnapshot {
  std::uint64_t epoch = 0;
  std::uint16_t dim = 1;
  std::vector<std::uint64_t> ids;
  std::vector<double> weights;
  std::vector<double> coords;  ///< ids.size() * dim, row-major

  [[nodiscard]] std::size_t size() const noexcept { return ids.size(); }
};

/// Appends the encoded snapshot to \p out. \throws InvalidArgument on
/// inconsistent field sizes (trusted-caller contract, like encode_record).
void encode_snapshot(const WalSnapshot& snapshot,
                     std::vector<std::uint8_t>& out);

/// Decodes a whole snapshot file. Exact-size: trailing bytes are
/// kMalformed (a snapshot is one atomic unit, not a stream).
[[nodiscard]] RecordDecodeStatus decode_snapshot(const std::uint8_t* data,
                                                 std::size_t size,
                                                 WalSnapshot& out);

/// Order-sensitive 64-bit digest over (epoch, dim, ids, weights, coords)
/// — equal digests mean bitwise-equal store content. This is what
/// `mmph_cli wal-dump` prints so two directories (a recovered primary and
/// a promoted replica) can be compared with grep.
[[nodiscard]] std::uint64_t snapshot_digest(const WalSnapshot& snapshot) noexcept;

}  // namespace mmph::wal
