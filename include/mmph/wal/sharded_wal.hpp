#pragma once

/// \file sharded_wal.hpp
/// \brief Cross-loop group-commit coordinator over per-shard WAL segments.
///
/// The region-sharded InstanceStore logs each shard's mutations to that
/// shard's own WalWriter (its own directory, its own epoch chain, its own
/// lsn sequence), preserving append-before-apply *per shard*. What the
/// single-writer design got for free — "one commit() covers the batch" —
/// now needs coordination: a batch may touch several shards, and its kOk
/// acks must not go out until every touched shard's log is as durable as
/// the fsync policy promises. ShardedWal::commit_all() is that barrier:
///
///   append(shard, record)*  ->  apply to stores  ->  commit_all()  ->  ack
///
/// commit_all walks the writers in shard order and fsyncs each dirty one.
/// A failure at ANY shard poisons EVERY writer (poison-all): a barrier
/// that half-committed cannot prove which shards' bytes are durable, so
/// the whole log set is declared divergent and the operator restarts
/// through recovery — the same poison-instead-of-limp discipline as the
/// single writer, widened to the set. Each successful barrier advances a
/// commit epoch, the cross-shard ordering token the replication follow-on
/// will stamp streamed batches with.
///
/// Layout on disk:
///   shards == 1:  <dir>/wal-*.mmpl              (the legacy layout —
///                                                bit-identical mode)
///   shards  > 1:  <dir>/shard-<s>/wal-*.mmpl    one subdir per shard
///
/// Recovery (recover_sharded) replays every shard directory independently
/// with the existing single-log recovery and re-derives the global epoch
/// as the sum of shard epochs (each applied element advanced exactly one
/// shard's epoch by one, so the sum is the global mutation count — the
/// same value the sharded store reports live).
///
/// Thread-safe the same way WalWriter is: each writer serializes
/// internally, and commit_all/poison_all take them in shard order.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "mmph/wal/recovery.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::wal {

/// Directory shard \p s of \p shards logs to: \p dir itself when shards
/// is 1 (legacy layout), "<dir>/shard-<s>" otherwise.
[[nodiscard]] std::string shard_wal_dir(const std::string& dir,
                                        std::size_t shard,
                                        std::size_t shards);

/// Per-shard recovery results plus the re-derived global view.
struct ShardedRecovery {
  std::vector<RecoveryResult> shards;
  /// Sum of the shard epochs == global mutation count (see file comment).
  std::uint64_t global_epoch = 0;
  /// Total recovered rows across shards.
  std::uint64_t rows = 0;
  bool clean = true;      ///< every shard replayed clean
  bool dir_found = false; ///< any shard directory (or the base dir) existed
};

/// Recovers every shard of a sharded log independently. \p shards is the
/// configured shard count (the directory layout is derived from it, so it
/// must match what the writer ran with — wal-recover exposes --shards for
/// exactly this reason).
[[nodiscard]] ShardedRecovery recover_sharded(const std::string& dir,
                                              std::size_t shards,
                                              std::uint16_t dim_hint = 0,
                                              FileOps& ops = FileOps::system());

/// Test-only barrier fault seam (serve::FaultHook-shaped; wal must not
/// depend on serve, so the alias is restated here). Consulted once per
/// shard inside commit_all at site "wal.barrier.fsync_fail"; returning
/// true makes that shard's barrier step fail exactly like a real fsync
/// error — poison-all, WalError out.
using BarrierFaultHook = std::function<bool(std::string_view site)>;

class ShardedWal {
 public:
  /// Opens one WalWriter per shard under \p base.dir (see shard_wal_dir),
  /// continuing each shard's chain from \p recovered. \p base is the
  /// shared policy (fsync, snapshot cadence, file_ops); per-shard dirs are
  /// derived from base.dir. \throws WalError when any directory or
  /// segment cannot be created.
  ShardedWal(WalConfig base, std::size_t shards,
             const ShardedRecovery& recovered,
             BarrierFaultHook barrier_hook = {});

  ShardedWal(const ShardedWal&) = delete;
  ShardedWal& operator=(const ShardedWal&) = delete;

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return writers_.size();
  }
  [[nodiscard]] WalWriter& writer(std::size_t s) { return *writers_[s]; }
  [[nodiscard]] const WalWriter& writer(std::size_t s) const {
    return *writers_[s];
  }

  /// Appends to shard \p s (append-before-apply per shard). \throws
  /// WalError when that shard's writer is poisoned or the write fails.
  void append(std::size_t s, WalRecord& record);

  /// The cross-shard durability barrier (see file comment). On success
  /// the commit epoch advances; on any failure every writer is poisoned
  /// and WalError propagates.
  void commit_all();

  /// Barriers completed since construction.
  [[nodiscard]] std::uint64_t commit_epoch() const noexcept {
    return commit_epoch_.load(std::memory_order_relaxed);
  }

  /// True when any shard accumulated enough ops for a checkpoint.
  [[nodiscard]] bool wants_snapshot() const;
  /// True when any writer is poisoned (after which no barrier can pass).
  [[nodiscard]] bool failed() const;
  /// Poisons every writer (store/log divergence detected upstream).
  void poison_all(const std::string& reason);

  /// Per-shard replication tail (the building block for streaming
  /// per-shard segments to replicas): encoded records of shard \p s with
  /// epochs > \p epoch.
  [[nodiscard]] WalWriter::TailResult tail_since(
      std::size_t s, std::uint64_t epoch,
      std::size_t max_bytes = 1u << 20) const;

 private:
  std::vector<std::unique_ptr<WalWriter>> writers_;
  BarrierFaultHook barrier_hook_;
  /// Serializes barriers: two concurrent commit_all calls must not
  /// interleave their per-shard fsyncs (each would see a half-barrier).
  mutable std::mutex barrier_mutex_;
  std::atomic<std::uint64_t> commit_epoch_{0};
};

}  // namespace mmph::wal
