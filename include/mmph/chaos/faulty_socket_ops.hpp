#pragma once

/// \file faulty_socket_ops.hpp
/// \brief SocketOps decorator that injects transport faults from a seed.
///
/// Wraps a real (or otherwise inner) net::SocketOps and consults an
/// Injector before every syscall. Injected faults are errno-shaped — the
/// caller's existing retry/teardown logic handles an injected EINTR or
/// ECONNRESET exactly as it would a real one, which is the point: chaos
/// runs exercise the *production* failure paths, not special test paths.
///
/// Sites (prefix + name; prefix separates server-side from client-side
/// streams so each stream is consumed by exactly one thread):
///   <p>read_eintr   read returns -1/EINTR before touching the socket
///   <p>read_reset   read returns -1/ECONNRESET (peer vanished mid-frame)
///   <p>read_short   read capped to 1 byte (mid-header truncation)
///   <p>write_eintr  write returns -1/EINTR
///   <p>write_reset  write returns -1/EPIPE (peer closed; send() shape)
///   <p>write_short  write capped to 1 byte (slow-peer back-pressure)
///   <p>accept_eintr accept returns -1/EINTR (retried next poll pass)
///
/// writev() consults the same write_* sites (a gather-write is one send
/// syscall); write_short truncates it to 1 byte of the first buffer, the
/// partial-progress shape a kernel short write produces.

#include <cstddef>
#include <cstdint>
#include <string>

#include "mmph/chaos/injector.hpp"
#include "mmph/net/socket.hpp"

namespace mmph::chaos {

/// Conventional prefixes: one per consuming thread/role.
inline constexpr std::string_view kServerSitePrefix = "net.srv.";
inline constexpr std::string_view kClientSitePrefix = "net.cli.";

/// Per-event-loop server prefix ("net.srv.l<i>.") for multi-loop
/// servers: each loop gets its own injector stream, so one loop's retry
/// storm never perturbs another loop's fault sequence.
[[nodiscard]] inline std::string server_loop_site_prefix(std::size_t loop) {
  return std::string(kServerSitePrefix) + "l" + std::to_string(loop) + ".";
}

class FaultySocketOps final : public net::SocketOps {
 public:
  /// \p injector and \p inner must outlive this object. \p site_prefix is
  /// prepended to every site name consulted.
  FaultySocketOps(Injector& injector, std::string site_prefix,
                  net::SocketOps& inner = net::SocketOps::system());

  ssize_t read(int fd, std::uint8_t* buf, std::size_t cap) override;
  ssize_t write(int fd, const std::uint8_t* buf, std::size_t len) override;
  ssize_t writev(int fd, const iovec* iov, int iovcnt) override;
  int accept(int listener_fd) override;

 private:
  [[nodiscard]] bool fire(std::string_view name);

  Injector& injector_;
  std::string prefix_;
  net::SocketOps& inner_;
};

}  // namespace mmph::chaos
