#pragma once

/// \file faulty_file_ops.hpp
/// \brief wal::FileOps decorator that injects storage faults from a seed.
///
/// Wraps an inner wal::FileOps (MemFileOps in chaos runs, so crashes can
/// be simulated by cloning the filesystem) and consults an Injector
/// before write/fsync. Injected faults are errno-shaped — the WalWriter's
/// short-write loop and poison logic handle an injected EIO exactly as
/// they would a real one, so chaos runs exercise the production failure
/// paths, never special test paths.
///
/// Sites (registered in serve/fault.hpp):
///   wal.short_write  write capped to 1 byte (the write_all loop must
///                    finish the record over many calls)
///   wal.torn_record  roughly half the buffer reaches the inner file,
///                    then the write fails with EIO — the classic torn
///                    record recovery has to drop at the segment tail
///   wal.fsync_fail   fsync returns -1/EIO (the writer poisons itself;
///                    bytes already written stay valid for replay)

#include <cstddef>
#include <cstdint>
#include <string>

#include "mmph/chaos/injector.hpp"
#include "mmph/wal/file_ops.hpp"

namespace mmph::chaos {

class FaultyFileOps final : public wal::FileOps {
 public:
  /// \p injector and \p inner must outlive this object.
  FaultyFileOps(Injector& injector, wal::FileOps& inner);

  int open(const std::string& path, wal::OpenMode mode) override;
  ssize_t read(int fd, std::uint8_t* buf, std::size_t cap) override;
  ssize_t write(int fd, const std::uint8_t* buf, std::size_t len) override;
  int fsync(int fd) override;
  int close(int fd) override;
  int rename(const std::string& from, const std::string& to) override;
  int remove(const std::string& path) override;
  int mkdir(const std::string& path) override;
  int sync_dir(const std::string& dir) override;
  std::optional<std::vector<std::string>> list(const std::string& dir) override;

 private:
  Injector& injector_;
  wal::FileOps& inner_;
};

}  // namespace mmph::chaos
