#pragma once

/// \file fault_plan.hpp
/// \brief Seed-derived schedule of which fault sites fire how often.
///
/// A FaultPlan is the whole description of one chaos schedule: a master
/// seed plus a per-site firing probability. Everything downstream is a
/// deterministic function of it — the Injector derives an independent
/// PCG64 stream per site from `seed ^ fnv1a64(site)`, so two runs of the
/// same plan make identical fire/skip decisions at every site no matter
/// which other sites exist, and a failure reproduces from its printed
/// seed alone.
///
/// Probabilities are deliberately capped below 1 for the retrying net
/// sites: an injected EINTR/EAGAIN feeds the same retry loop a real one
/// would, so a site that fired on *every* consult would spin that loop
/// forever. kMaxRetryProbability keeps every schedule terminating.

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mmph::chaos {

/// FNV-1a 64-bit — stable, dependency-free site-name hash used to derive
/// per-site RNG streams.
[[nodiscard]] constexpr std::uint64_t fnv1a64(std::string_view text) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  for (const char c : text) {
    hash ^= static_cast<std::uint8_t>(c);
    hash *= 0x100000001B3ull;
  }
  return hash;
}

/// Ceiling for sites that feed retry loops (net read/write/accept): the
/// expected retry chain stays short and every loop terminates.
inline constexpr double kMaxRetryProbability = 0.35;

struct FaultSite {
  std::string site;          ///< exact name consulted at the seam
  double probability = 0.0;  ///< chance each consult fires, in [0, 1]
};

/// One reproducible chaos schedule. Construct by hand for targeted tests
/// or via the harness generators (serve_plan_for_seed / net_plan_for_seed)
/// for sweeps.
struct FaultPlan {
  std::uint64_t seed = 0;
  std::vector<FaultSite> sites;

  /// Adds (or overwrites) a site's probability; returns *this for chaining.
  FaultPlan& with(std::string_view site, double probability);

  /// Probability of \p site (0 when absent from the plan).
  [[nodiscard]] double probability_of(std::string_view site) const noexcept;
};

}  // namespace mmph::chaos
