#pragma once

/// \file harness.hpp
/// \brief Seeded chaos schedules over the serve, net, and wal stacks.
///
/// Three entry points, shared by the gtest suite and the chaos_runner
/// sweep binary. Each takes a single seed, derives a full fault schedule
/// plus a request workload from it, runs the stack under fire, and checks
/// the invariants that must survive *any* schedule:
///
///   1. exactly-once replies — every submitted request is answered
///      exactly once with a status from the valid set;
///   2. counter conservation — submitted == batched + timeouts +
///      rejected_full once the queue quiesces;
///   3. survival — the pipeline still answers cleanly after the faults
///      are disarmed;
///   4. convergence — the surviving state is *bit-identical* (objective,
///      centers, population) to a fault-free reference fed the same
///      effective operations.
///
/// Convergence is checked two different ways, matched to what each layer
/// can promise:
///   - serve: strict history replay. Faults fire before any store
///     mutation, so "answered kOk" implies "fully applied"; replaying the
///     kOk mutations in submit order onto a fresh service must reproduce
///     the placement, epoch included.
///   - net: content-based rebuild. A lost *reply* leaves an applied
///     mutation the client saw fail, so history is ambiguous; instead the
///     harness disarms, removes every id it ever used, re-adds the final
///     desired population in one known order, and compares against a
///     direct service given that same final sequence (epochs excluded).
///
/// Both force full_solve_churn_fraction = 0 so every placement is a full
/// sharded solve — a pure function of store content and row order.
///
/// The wal harness runs a WAL-attached service over an in-memory
/// filesystem with injected short writes, torn records, and fsync
/// failures, then "pulls the plug" (clones the filesystem as-is) and
/// requires recovery to reproduce the live store *bitwise* — same rows,
/// same order, same epoch (wal::snapshot_digest equality). A second probe
/// chops a random tail off the newest segment and requires recovery to
/// land on an exact earlier op boundary.

#include <cstdint>
#include <string>

#include "mmph/chaos/fault_plan.hpp"

namespace mmph::chaos {

/// Outcome of one seeded schedule. `ok == false` messages always embed
/// the seed, so any failure is reproducible from its log line.
struct ChaosResult {
  bool ok = true;
  std::uint64_t seed = 0;
  std::string message;       ///< failure description (empty when ok)
  std::uint64_t requests = 0;  ///< requests submitted during the run
  std::uint64_t faults_fired = 0;
};

struct ServeChaosOptions {
  std::uint64_t seed = 1;
  std::size_t operations = 120;  ///< scripted requests per schedule
  std::size_t queue_capacity = 32;
};

struct NetChaosOptions {
  std::uint64_t seed = 1;
  std::size_t operations = 40;  ///< client calls per schedule
  /// Server event loops. 1 (the default) runs the historical
  /// single-loop schedule with the `net.srv.` site prefix, unchanged
  /// seed-for-seed. More loops give every loop its own injected fault
  /// stream under the `net.srv.l<i>.` prefixes.
  std::size_t loops = 1;
};

struct WalChaosOptions {
  std::uint64_t seed = 1;
  std::size_t operations = 80;  ///< scripted direct-API ops per schedule
};

struct LsChaosOptions {
  std::uint64_t seed = 1;
  std::size_t operations = 60;  ///< scripted requests per schedule
};

struct StoreShardChaosOptions {
  std::uint64_t seed = 1;
  std::size_t operations = 80;  ///< scripted direct-API ops per schedule
  /// Store shards (and WAL segments). 1 exercises the legacy root-dir
  /// layout through the coordinator; >1 the per-shard dirs, the routed
  /// batch planner, and the cross-shard commit barrier.
  std::size_t shards = 4;
};

/// Seed-derived schedules (exposed so tests can inspect/override them).
[[nodiscard]] FaultPlan serve_plan_for_seed(std::uint64_t seed);
[[nodiscard]] FaultPlan net_plan_for_seed(std::uint64_t seed);
/// Multi-loop variant: sites under net.srv.l<i>. per loop plus the
/// client sites. loops == 1 returns exactly net_plan_for_seed(seed).
[[nodiscard]] FaultPlan net_plan_for_seed(std::uint64_t seed,
                                          std::size_t loops);
[[nodiscard]] FaultPlan wal_plan_for_seed(std::uint64_t seed);
[[nodiscard]] FaultPlan ls_plan_for_seed(std::uint64_t seed);
[[nodiscard]] FaultPlan store_shard_plan_for_seed(std::uint64_t seed);

/// Direct-API chaos: PlacementService + RequestBatcher under the four
/// serve fault sites, pump-driven (no sockets, no threads).
[[nodiscard]] ChaosResult run_serve_chaos(const ServeChaosOptions& options);

/// Full-stack chaos: NetClient -> faulty sockets -> NetServer ->
/// FrameDecoder -> batcher -> service, both socket directions injected.
[[nodiscard]] ChaosResult run_net_chaos(const NetChaosOptions& options);

/// Durability chaos: WAL-attached PlacementService over a MemFileOps
/// filesystem under the wal.* fault sites, then crash-clone + recover.
/// Invariant: recovered store == pre-crash store, bitwise.
[[nodiscard]] ChaosResult run_wal_chaos(const WalChaosOptions& options);

/// Local-search polish chaos: a PlacementService on the kLs solver tier
/// with ls.eval_throw (plus the output-invisible spatial.* sites) armed.
/// An eval throw mid-polish must abort only the polish: the solve keeps
/// the unpolished seed placement and the request still answers kOk.
/// Invariants: exactly-once replies, counter conservation, and after
/// disarm + one clean re-solve the survivor's placement is *bit-identical*
/// to a fault-free kLs service fed the same kOk mutations — whose
/// objective in turn is >= the kLazy placement for the same store content
/// (the polish-never-hurts contract).
[[nodiscard]] ChaosResult run_ls_chaos(const LsChaosOptions& options);

/// Sharded-store durability chaos: a region-sharded PlacementService
/// behind a ShardedWal coordinator over one MemFileOps filesystem, under
/// the wal.*, wal.barrier.*, and store.shard.* fault sites, then
/// crash-clone + recover_sharded. Invariants: every shard recovers clean,
/// each recovered shard == its live store shard *bitwise*
/// (snapshot_digest), the recovered global epoch equals the live epoch,
/// and a service restored from the recovery solves to the bit-identical
/// placement.
[[nodiscard]] ChaosResult run_store_shard_chaos(
    const StoreShardChaosOptions& options);

}  // namespace mmph::chaos
