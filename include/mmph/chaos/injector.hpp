#pragma once

/// \file injector.hpp
/// \brief Deterministic fault decision engine behind every chaos seam.
///
/// One Injector serves every fault site of a run. Each site gets its own
/// PCG64 stream seeded `plan.seed ^ fnv1a64(site)`, so the decision
/// sequence *at one site* is a pure function of (seed, site, consult
/// index) — adding a site, reordering sites, or interleaving consults
/// across threads never perturbs another site's stream. Timing can still
/// vary how many times a site is consulted (a retry loop consults again
/// after every injected EINTR), which is why the harness asserts
/// timing-robust invariants rather than byte-exact schedules.
///
/// Thread-safe: decisions serialize on an internal mutex. The mutex is a
/// leaf (no callbacks run under it), so consulting from inside the
/// batcher's or server's own locks cannot deadlock.

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "mmph/chaos/fault_plan.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/fault.hpp"

namespace mmph::chaos {

/// Per-site consult/fire tallies (diagnostics and test assertions).
struct SiteReport {
  std::string site;
  std::uint64_t consulted = 0;
  std::uint64_t fired = 0;
};

class Injector {
 public:
  explicit Injector(FaultPlan plan);

  Injector(const Injector&) = delete;
  Injector& operator=(const Injector&) = delete;

  /// One fault decision at \p site. Deterministic per (seed, site,
  /// consult index) while armed; always false while disarmed (the draw is
  /// NOT consumed, so disarm/re-arm does not shift the stream).
  [[nodiscard]] bool fire(std::string_view site);

  /// Disarmed injectors never fire — the harness disarms before its
  /// fault-free reconciliation/verification phase.
  void set_armed(bool armed) noexcept;
  [[nodiscard]] bool armed() const noexcept;

  /// Adapter for ServiceConfig::fault_hook / RequestBatcher.
  [[nodiscard]] serve::FaultHook hook();

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Tallies for every site consulted so far, sorted by site name.
  [[nodiscard]] std::vector<SiteReport> report() const;

 private:
  struct SiteState {
    double probability = 0.0;
    rnd::Pcg64 rng{0};
    std::uint64_t consulted = 0;
    std::uint64_t fired = 0;
  };

  SiteState& state_for(std::string_view site);

  FaultPlan plan_;
  mutable std::mutex mutex_;
  bool armed_ = true;
  std::unordered_map<std::string, SiteState> sites_;
};

}  // namespace mmph::chaos
