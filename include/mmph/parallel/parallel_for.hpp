#pragma once

/// \file parallel_for.hpp
/// \brief Data-parallel loop and reduction primitives on top of ThreadPool.
///
/// Scheduling is dynamic: workers claim fixed-size index chunks from a
/// shared atomic counter, so uneven per-iteration cost (e.g. branch-and-
/// bound subtrees in the exhaustive solver) load-balances automatically.
/// Exceptions thrown by the body are rethrown at the call site.

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <memory>
#include <vector>

#include "mmph/parallel/thread_pool.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::par {

/// Picks a chunk size targeting ~8 chunks per worker when the caller does
/// not specify a grain.
[[nodiscard]] inline std::size_t default_grain(std::size_t range,
                                               std::size_t workers) {
  const std::size_t target_chunks = workers * 8;
  std::size_t grain = range / (target_chunks == 0 ? 1 : target_chunks);
  return grain == 0 ? 1 : grain;
}

/// Runs body(lo, hi) over disjoint chunks covering [begin, end).
/// Chunks are claimed dynamically; the calling thread also participates,
/// so the primitive works even on a pool of one worker under contention.
template <typename ChunkBody>
void parallel_for_chunks(ThreadPool& pool, std::size_t begin, std::size_t end,
                         ChunkBody&& body, std::size_t grain = 0) {
  if (begin >= end) return;
  const std::size_t range = end - begin;
  const std::size_t workers = pool.thread_count();
  if (grain == 0) grain = default_grain(range, workers);
  if (range <= grain || workers <= 1) {
    body(begin, end);
    return;
  }

  // Shared cursor lives on the heap: worker tasks may still observe it
  // between their final claim-check and returning.
  auto next = std::make_shared<std::atomic<std::size_t>>(begin);
  auto run_chunks = [next, end, grain, &body] {
    for (;;) {
      const std::size_t lo = next->fetch_add(grain, std::memory_order_relaxed);
      if (lo >= end) return;
      const std::size_t hi = lo + grain < end ? lo + grain : end;
      body(lo, hi);
    }
  };

  const std::size_t helpers =
      std::min(workers, (range + grain - 1) / grain) - 1;
  TaskGroup group;
  for (std::size_t i = 0; i < helpers; ++i) {
    pool.submit(group.wrap(run_chunks));
  }
  // The caller works too; its exceptions propagate directly, workers' via
  // the group.
  run_chunks();
  group.wait();
}

/// Runs body(i) for every i in [begin, end).
template <typename IndexBody>
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  IndexBody&& body, std::size_t grain = 0) {
  parallel_for_chunks(
      pool, begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      grain);
}

/// Parallel reduction: acc = combine(acc, body(i)) over [begin, end),
/// starting from \p identity. `combine` must be associative and commutative;
/// `body` may be called from any worker.
template <typename T, typename IndexBody, typename Combine>
[[nodiscard]] T parallel_reduce(ThreadPool& pool, std::size_t begin,
                                std::size_t end, T identity, IndexBody&& body,
                                Combine&& combine, std::size_t grain = 0) {
  if (begin >= end) return identity;
  std::mutex merge_mutex;
  T result = identity;
  parallel_for_chunks(
      pool, begin, end,
      [&](std::size_t lo, std::size_t hi) {
        T local = identity;
        for (std::size_t i = lo; i < hi; ++i) {
          local = combine(std::move(local), body(i));
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        result = combine(std::move(result), std::move(local));
      },
      grain);
  return result;
}

}  // namespace mmph::par
