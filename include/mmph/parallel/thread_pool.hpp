#pragma once

/// \file thread_pool.hpp
/// \brief Fixed-size worker pool used by the exhaustive solver and the
/// experiment harness.
///
/// Design notes (HPC-flavored):
///   - workers are created once; parallel regions reuse them, so a sweep of
///     thousands of trials never pays thread start-up cost per trial;
///   - tasks are plain std::function<void()>; completion is tracked by the
///     caller (see TaskGroup), keeping the pool free of per-task futures;
///   - exceptions thrown by tasks are captured and rethrown at the join
///     point (first one wins), so errors in parallel code surface exactly
///     like serial errors.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace mmph::par {

/// Fixed pool of worker threads consuming a shared FIFO queue.
class ThreadPool {
 public:
  /// \p threads == 0 selects std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Drains the queue and joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Enqueues a task. Never blocks (unbounded queue).
  void submit(std::function<void()> task);

  /// Process-wide shared pool, sized to the hardware. Lazily constructed;
  /// safe for concurrent first use (C++ static-local guarantee).
  static ThreadPool& global();

 private:
  void worker_loop();

  std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// Tracks completion and the first exception of a batch of tasks.
///
/// Usage:
///   TaskGroup group;
///   for (...) pool.submit(group.wrap([=]{ ... }));
///   group.wait();   // blocks; rethrows the first captured exception
class TaskGroup {
 public:
  /// Wraps \p task so the group counts its completion and captures any
  /// exception it throws. Call before submitting; each wrapped task must
  /// run exactly once.
  [[nodiscard]] std::function<void()> wrap(std::function<void()> task);

  /// Blocks until every wrapped task has run, then rethrows the first
  /// captured exception, if any.
  void wait();

 private:
  void finish_one() noexcept;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
  std::exception_ptr error_;
};

}  // namespace mmph::par
