#include "mmph/net/client.hpp"

#include <utility>

#include "mmph/support/assert.hpp"

namespace mmph::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

NetClient::NetClient(NetClientConfig config) : config_(std::move(config)) {
  MMPH_REQUIRE(config_.max_attempts >= 1,
               "NetClient: max_attempts must be >= 1");
  MMPH_REQUIRE(config_.pipeline_window >= 1,
               "NetClient: pipeline_window must be >= 1");
}

NetClient::~NetClient() { disconnect(); }

void NetClient::disconnect() noexcept {
  sock_.close();
  decoder_ = FrameDecoder{};  // a fresh connection needs a fresh stream
  // Their replies died with the connection, but the *slots* must not:
  // every pipelined id still owes its caller exactly one completion.
  // Park them for drain_one() to answer with kConnectionLost instead of
  // silently dropping them (the old behavior, which left bulk loaders
  // unable to tell which requests were ever answered).
  while (!inflight_.empty()) {
    aborted_.push_back(inflight_.front());
    inflight_.pop_front();
  }
}

void NetClient::ensure_connected() {
  if (sock_.valid()) return;
  sock_ = tcp_connect(config_.host, config_.port, config_.connect_timeout);
  decoder_ = FrameDecoder{};
}

ResponseFrame NetClient::add_users(std::vector<serve::UserRecord> users) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.users = std::move(users);
  return roundtrip(std::move(frame));
}

ResponseFrame NetClient::remove_users(std::vector<std::uint64_t> ids) {
  RequestFrame frame;
  frame.type = FrameType::kRemoveUsers;
  frame.ids = std::move(ids);
  return roundtrip(std::move(frame));
}

ResponseFrame NetClient::query_placement() {
  RequestFrame frame;
  frame.type = FrameType::kQueryPlacement;
  return roundtrip(std::move(frame));
}

ResponseFrame NetClient::evaluate(const geo::PointSet& centers) {
  RequestFrame frame;
  frame.type = FrameType::kEvaluate;
  frame.centers = centers;
  return roundtrip(std::move(frame));
}

ResponseFrame NetClient::stats() {
  RequestFrame frame;
  frame.type = FrameType::kStats;
  return roundtrip(std::move(frame));
}

std::uint64_t NetClient::pipeline_add_users(
    std::vector<serve::UserRecord> users) {
  RequestFrame frame;
  frame.type = FrameType::kAddUsers;
  frame.users = std::move(users);
  return pipeline_send(std::move(frame));
}

std::uint64_t NetClient::pipeline_remove_users(
    std::vector<std::uint64_t> ids) {
  RequestFrame frame;
  frame.type = FrameType::kRemoveUsers;
  frame.ids = std::move(ids);
  return pipeline_send(std::move(frame));
}

std::uint64_t NetClient::pipeline_query_placement() {
  RequestFrame frame;
  frame.type = FrameType::kQueryPlacement;
  return pipeline_send(std::move(frame));
}

std::uint64_t NetClient::pipeline_evaluate(const geo::PointSet& centers) {
  RequestFrame frame;
  frame.type = FrameType::kEvaluate;
  frame.centers = centers;
  return pipeline_send(std::move(frame));
}

std::uint64_t NetClient::pipeline_send(RequestFrame frame) {
  // Aborted-but-undrained slots count against the window: the caller must
  // collect their kConnectionLost completions before refilling.
  MMPH_REQUIRE(aborted_.size() + inflight_.size() < config_.pipeline_window,
               "NetClient: pipeline window full — drain_one() first");
  frame.request_id = next_request_id_++;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);  // throws InvalidArgument on limit abuse
  try {
    ensure_connected();
    if (!send_all(sock_, bytes.data(), bytes.size(),
                  Clock::now() + config_.send_timeout, ops())) {
      throw NetError("send failed or timed out");
    }
  } catch (...) {
    // No retry on the pipelined path: earlier in-flight requests may or
    // may not have executed, so a resend could double-apply them.
    disconnect();
    throw;
  }
  inflight_.push_back(frame.request_id);
  return frame.request_id;
}

ResponseFrame NetClient::drain_one() {
  MMPH_REQUIRE(!aborted_.empty() || !inflight_.empty(),
               "NetClient: drain_one with no requests in flight");
  // Aborted slots are strictly older than anything live (they were in
  // flight when the connection died; later sends went out afterwards), so
  // FIFO order means answering them first. Synthesized locally — the
  // server's reply, if it ever made one, is unreachable on the old
  // connection.
  if (!aborted_.empty()) {
    ResponseFrame lost;
    lost.request_id = aborted_.front();
    lost.status = WireStatus::kConnectionLost;
    aborted_.pop_front();
    return lost;
  }
  const std::uint64_t want_id = inflight_.front();
  const auto deadline = Clock::now() + config_.recv_timeout;
  std::uint8_t chunk[kRecvChunk];
  try {
    for (;;) {
      for (;;) {
        FrameDecoder::Result decoded = decoder_.next();
        if (decoded.status == DecodeStatus::kNeedMoreData) break;
        if (decoded.status != DecodeStatus::kOk) {
          throw NetError(std::string("protocol error from server: ") +
                         to_string(decoded.status));
        }
        if (!decoded.is_response) {
          throw NetError("server sent a request frame");
        }
        // Replies are FIFO per connection, so the next response is the
        // oldest in-flight request's — or a connection-level id-0 notice
        // (kOverloaded), which *is* that request's answer.
        if (decoded.response.request_id == want_id ||
            decoded.response.request_id == 0) {
          inflight_.pop_front();
          return decoded.response;
        }
        throw NetError("pipelined reply out of order: want " +
                       std::to_string(want_id) + ", got " +
                       std::to_string(decoded.response.request_id));
      }
      const IoResult r =
          recv_some(sock_, chunk, sizeof(chunk), deadline, ops());
      if (r.status == IoStatus::kWouldBlock) {
        throw NetError("recv timed out");
      }
      if (r.status != IoStatus::kOk) {
        throw NetError("connection closed by server");
      }
      decoder_.feed(chunk, r.bytes);
    }
  } catch (...) {
    disconnect();
    throw;
  }
}

ResponseFrame NetClient::roundtrip(RequestFrame frame) {
  MMPH_REQUIRE(aborted_.empty() && inflight_.empty(),
               "NetClient: blocking call while pipelined requests are in "
               "flight or awaiting abort completions — drain them first");
  frame.request_id = next_request_id_++;
  std::vector<std::uint8_t> bytes;
  encode_request(frame, bytes);  // throws InvalidArgument on limit abuse

  std::string last_error = "no attempt made";
  for (std::size_t try_n = 0; try_n < config_.max_attempts; ++try_n) {
    if (try_n > 0) ++reconnects_;
    try {
      ensure_connected();
      return attempt(bytes);
    } catch (const NetError& e) {
      last_error = e.what();
      disconnect();  // next attempt starts from a clean connection
    }
  }
  throw NetError("request " + std::to_string(frame.request_id) + " to " +
                 config_.host + ":" + std::to_string(config_.port) +
                 " failed after " + std::to_string(config_.max_attempts) +
                 " attempts: " + last_error);
}

ResponseFrame NetClient::attempt(const std::vector<std::uint8_t>& bytes) {
  const std::uint64_t want_id = next_request_id_ - 1;
  if (!send_all(sock_, bytes.data(), bytes.size(),
                Clock::now() + config_.send_timeout, ops())) {
    throw NetError("send failed or timed out");
  }

  const auto deadline = Clock::now() + config_.recv_timeout;
  std::uint8_t chunk[kRecvChunk];
  for (;;) {
    // Drain already-buffered frames before touching the socket.
    for (;;) {
      FrameDecoder::Result decoded = decoder_.next();
      if (decoded.status == DecodeStatus::kNeedMoreData) break;
      if (decoded.status != DecodeStatus::kOk) {
        throw NetError(std::string("protocol error from server: ") +
                       to_string(decoded.status));
      }
      if (!decoded.is_response) {
        throw NetError("server sent a request frame");
      }
      if (decoded.response.request_id == want_id) return decoded.response;
      // request_id 0 carries connection-level notices (kOverloaded,
      // kBadRequest for an unparseable header): that *is* the answer.
      if (decoded.response.request_id == 0) return decoded.response;
      // Stale response (e.g. from a request whose reply we abandoned on
      // a previous timeout): skip it and keep reading.
    }
    const IoResult r = recv_some(sock_, chunk, sizeof(chunk), deadline, ops());
    if (r.status == IoStatus::kWouldBlock) {
      throw NetError("recv timed out");
    }
    if (r.status != IoStatus::kOk) {
      throw NetError("connection closed by server");
    }
    decoder_.feed(chunk, r.bytes);
  }
}

}  // namespace mmph::net
