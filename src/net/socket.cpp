#include "mmph/net/socket.hpp"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>

namespace mmph::net {
namespace {

using Clock = std::chrono::steady_clock;

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    throw_errno("fcntl(O_NONBLOCK)");
  }
}

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw NetError("bad IPv4 address '" + host + "'");
  }
  return addr;
}

/// Remaining milliseconds until \p deadline, clamped to [0, INT_MAX].
int poll_timeout_ms(Clock::time_point deadline) {
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      deadline - Clock::now());
  return static_cast<int>(std::clamp<long long>(left.count(), 0, 1 << 30));
}

/// poll() one fd for \p events; true when an event arrived in time.
bool poll_one(int fd, short events, Clock::time_point deadline) {
  for (;;) {
    pollfd pfd{fd, events, 0};
    const int rc = ::poll(&pfd, 1, poll_timeout_ms(deadline));
    if (rc > 0) return true;
    if (rc == 0) return false;  // timeout
    if (errno != EINTR) return false;
  }
}

}  // namespace

ssize_t SocketOps::read(int fd, std::uint8_t* buf, std::size_t cap) {
  return ::read(fd, buf, cap);
}

ssize_t SocketOps::write(int fd, const std::uint8_t* buf, std::size_t len) {
  return ::send(fd, buf, len, MSG_NOSIGNAL);
}

ssize_t SocketOps::writev(int fd, const iovec* iov, int iovcnt) {
  msghdr msg{};
  msg.msg_iov = const_cast<iovec*>(iov);
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  return ::sendmsg(fd, &msg, MSG_NOSIGNAL);
}

int SocketOps::accept(int listener_fd) {
  return ::accept(listener_fd, nullptr, nullptr);
}

SocketOps& SocketOps::system() noexcept {
  static SocketOps instance;
  return instance;
}

void Socket::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

std::pair<Socket, std::uint16_t> tcp_listen(const std::string& host,
                                            std::uint16_t port, int backlog,
                                            bool reuse_port) {
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  const int one = 1;
  (void)::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuse_port &&
      ::setsockopt(sock.fd(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) <
          0) {
    // Surface, don't degrade: a caller asking for shared-port accept
    // distribution must not silently get one listener and N starved loops.
    throw_errno("setsockopt(SO_REUSEPORT)");
  }
  sockaddr_in addr = make_addr(host, port);
  if (::bind(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) < 0) {
    throw_errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(sock.fd(), backlog) < 0) throw_errno("listen");
  set_nonblocking(sock.fd());

  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(sock.fd(), reinterpret_cast<sockaddr*>(&bound), &len) <
      0) {
    throw_errno("getsockname");
  }
  return {std::move(sock), ntohs(bound.sin_port)};
}

Socket tcp_accept(const Socket& listener, SocketOps& ops) {
  const int fd = ops.accept(listener.fd());
  if (fd < 0) return Socket{};  // EAGAIN/transient: nothing pending
  Socket sock(fd);
  set_nonblocking(fd);
  const int one = 1;
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Socket tcp_connect(const std::string& host, std::uint16_t port,
                   std::chrono::milliseconds timeout) {
  const auto deadline = Clock::now() + timeout;
  Socket sock(::socket(AF_INET, SOCK_STREAM, 0));
  if (!sock.valid()) throw_errno("socket");
  set_nonblocking(sock.fd());
  sockaddr_in addr = make_addr(host, port);
  if (::connect(sock.fd(), reinterpret_cast<const sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    if (errno != EINPROGRESS) {
      throw_errno("connect " + host + ":" + std::to_string(port));
    }
    if (!poll_one(sock.fd(), POLLOUT, deadline)) {
      throw NetError("connect " + host + ":" + std::to_string(port) +
                     ": timed out");
    }
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(sock.fd(), SOL_SOCKET, SO_ERROR, &err, &len) < 0 ||
        err != 0) {
      throw NetError("connect " + host + ":" + std::to_string(port) + ": " +
                     std::strerror(err != 0 ? err : errno));
    }
  }
  // Back to blocking: the client serializes one call at a time and uses
  // poll() per operation for deadlines.
  const int flags = ::fcntl(sock.fd(), F_GETFL, 0);
  if (flags >= 0) (void)::fcntl(sock.fd(), F_SETFL, flags & ~O_NONBLOCK);
  const int one = 1;
  (void)::setsockopt(sock.fd(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

IoResult sock_read(const Socket& sock, std::uint8_t* buf, std::size_t cap,
                   SocketOps& ops) {
  for (;;) {
    const ssize_t n = ops.read(sock.fd(), buf, cap);
    if (n > 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (n == 0) return {IoStatus::kClosed, 0};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult sock_write(const Socket& sock, const std::uint8_t* buf,
                    std::size_t len, SocketOps& ops) {
  for (;;) {
    const ssize_t n = ops.write(sock.fd(), buf, len);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

IoResult sock_writev(const Socket& sock, const iovec* iov, int iovcnt,
                     SocketOps& ops) {
  for (;;) {
    const ssize_t n = ops.writev(sock.fd(), iov, iovcnt);
    if (n >= 0) return {IoStatus::kOk, static_cast<std::size_t>(n)};
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return {IoStatus::kWouldBlock, 0};
    }
    return {IoStatus::kError, 0};
  }
}

bool send_all(const Socket& sock, const std::uint8_t* buf, std::size_t len,
              Clock::time_point deadline, SocketOps& ops) {
  std::size_t sent = 0;
  while (sent < len) {
    const IoResult r = sock_write(sock, buf + sent, len - sent, ops);
    switch (r.status) {
      case IoStatus::kOk:
        sent += r.bytes;
        break;
      case IoStatus::kWouldBlock:
        if (!poll_one(sock.fd(), POLLOUT, deadline)) return false;
        break;
      case IoStatus::kClosed:
      case IoStatus::kError:
        return false;
    }
  }
  return true;
}

IoResult recv_some(const Socket& sock, std::uint8_t* buf, std::size_t cap,
                   Clock::time_point deadline, SocketOps& ops) {
  if (!poll_one(sock.fd(), POLLIN, deadline)) {
    return {IoStatus::kWouldBlock, 0};
  }
  return sock_read(sock, buf, cap, ops);
}

}  // namespace mmph::net
