#include "mmph/net/wire.hpp"

#include <bit>
#include <cmath>
#include <utility>

#include "mmph/support/assert.hpp"
#include "mmph/support/error.hpp"

namespace mmph::net {
namespace {

// --- primitive little-endian encoding -------------------------------------
// Byte-by-byte shifts, not memcpy of host integers: the format must read
// the same bytes on every host byte order.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int shift = 0; shift < 32; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int shift = 0; shift < 64; shift += 8) {
    out.push_back(static_cast<std::uint8_t>(v >> shift));
  }
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked big-to-small reader over one frame's payload. Every
/// read checks remaining() first, so a lying payload_len can never walk
/// past the buffer; ok_ latches false on the first short read.
class Cursor {
 public:
  Cursor(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool ok() const noexcept { return ok_; }

  std::uint8_t u8() { return ok_ && take(1) ? data_[pos_ - 1] : 0; }

  std::uint16_t u16() {
    if (!ok_ || !take(2)) return 0;
    const std::uint8_t* p = data_ + pos_ - 2;
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }

  std::uint32_t u32() {
    if (!ok_ || !take(4)) return 0;
    const std::uint8_t* p = data_ + pos_ - 4;
    return static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
  }

  std::uint64_t u64() {
    if (!ok_ || !take(8)) return 0;
    const std::uint8_t* p = data_ + pos_ - 8;
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }

  double f64() { return std::bit_cast<double>(u64()); }

 private:
  bool take(std::size_t n) {
    if (remaining() < n) {
      ok_ = false;
      return false;
    }
    pos_ += n;
    return true;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

void put_header(std::vector<std::uint8_t>& out, FrameType type,
                std::uint64_t request_id, std::uint32_t payload_len) {
  put_u32(out, kMagic);
  out.push_back(kWireVersion);
  out.push_back(static_cast<std::uint8_t>(type));
  put_u16(out, 0);  // reserved
  put_u64(out, request_id);
  put_u32(out, payload_len);
}

/// Patches the payload_len field once the payload has been appended (the
/// encoders write the header first, so the length is known only after).
void patch_payload_len(std::vector<std::uint8_t>& out,
                       std::size_t header_start) {
  const std::size_t payload = out.size() - header_start - kHeaderBytes;
  MMPH_REQUIRE(payload <= kMaxPayloadBytes,
               "wire: encoded payload exceeds kMaxPayloadBytes");
  const auto len = static_cast<std::uint32_t>(payload);
  for (int i = 0; i < 4; ++i) {
    out[header_start + 16 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(len >> (8 * i));
  }
}

bool finite(double v) noexcept { return std::isfinite(v); }

}  // namespace

const char* to_string(FrameType type) noexcept {
  switch (type) {
    case FrameType::kAddUsers: return "kAddUsers";
    case FrameType::kRemoveUsers: return "kRemoveUsers";
    case FrameType::kQueryPlacement: return "kQueryPlacement";
    case FrameType::kEvaluate: return "kEvaluate";
    case FrameType::kResponse: return "kResponse";
    case FrameType::kStats: return "kStats";
    case FrameType::kReplSubscribe: return "kReplSubscribe";
    case FrameType::kReplSnapshot: return "kReplSnapshot";
    case FrameType::kReplOps: return "kReplOps";
  }
  return "FrameType(?)";
}

const char* to_string(WireStatus status) noexcept {
  switch (status) {
    case WireStatus::kOk: return "kOk";
    case WireStatus::kTimeout: return "kTimeout";
    case WireStatus::kRejected: return "kRejected";
    case WireStatus::kShutdown: return "kShutdown";
    case WireStatus::kOverloaded: return "kOverloaded";
    case WireStatus::kBadRequest: return "kBadRequest";
    case WireStatus::kInternalError: return "kInternalError";
    case WireStatus::kConnectionLost: return "kConnectionLost";
  }
  return "WireStatus(?)";
}

const char* to_string(DecodeStatus status) noexcept {
  switch (status) {
    case DecodeStatus::kOk: return "kOk";
    case DecodeStatus::kNeedMoreData: return "kNeedMoreData";
    case DecodeStatus::kBadMagic: return "kBadMagic";
    case DecodeStatus::kBadVersion: return "kBadVersion";
    case DecodeStatus::kBadType: return "kBadType";
    case DecodeStatus::kOversizedFrame: return "kOversizedFrame";
    case DecodeStatus::kOversizedBatch: return "kOversizedBatch";
    case DecodeStatus::kBadDimension: return "kBadDimension";
    case DecodeStatus::kMalformedPayload: return "kMalformedPayload";
  }
  return "DecodeStatus(?)";
}

WireStatus to_wire_status(serve::ResponseStatus status) noexcept {
  switch (status) {
    case serve::ResponseStatus::kOk: return WireStatus::kOk;
    case serve::ResponseStatus::kTimeout: return WireStatus::kTimeout;
    case serve::ResponseStatus::kRejected: return WireStatus::kRejected;
    case serve::ResponseStatus::kShutdown: return WireStatus::kShutdown;
    case serve::ResponseStatus::kBadRequest: return WireStatus::kBadRequest;
    case serve::ResponseStatus::kInternalError:
      return WireStatus::kInternalError;
  }
  return WireStatus::kInternalError;
}

void encode_request(const RequestFrame& frame,
                    std::vector<std::uint8_t>& out) {
  const std::size_t header_start = out.size();
  put_header(out, frame.type, frame.request_id, 0);
  switch (frame.type) {
    case FrameType::kAddUsers: {
      MMPH_REQUIRE(frame.users.size() <= kMaxBatchCount,
                   "wire: add batch exceeds kMaxBatchCount");
      MMPH_REQUIRE(!frame.users.empty(), "wire: empty add batch");
      const std::size_t dim = frame.users.front().interest.size();
      MMPH_REQUIRE(dim >= 1 && dim <= kMaxDim, "wire: bad user dimension");
      put_u32(out, static_cast<std::uint32_t>(frame.users.size()));
      put_u16(out, static_cast<std::uint16_t>(dim));
      for (const serve::UserRecord& user : frame.users) {
        MMPH_REQUIRE(user.interest.size() == dim,
                     "wire: ragged user dimensions in one frame");
        put_u64(out, user.id);
        put_f64(out, user.weight);
        for (const double c : user.interest) put_f64(out, c);
      }
      break;
    }
    case FrameType::kRemoveUsers:
      MMPH_REQUIRE(frame.ids.size() <= kMaxBatchCount,
                   "wire: remove batch exceeds kMaxBatchCount");
      put_u32(out, static_cast<std::uint32_t>(frame.ids.size()));
      for (const std::uint64_t id : frame.ids) put_u64(out, id);
      break;
    case FrameType::kQueryPlacement:
    case FrameType::kStats:
      break;  // empty payload
    case FrameType::kReplSubscribe:
      put_u64(out, frame.have_epoch);
      break;
    case FrameType::kEvaluate: {
      MMPH_REQUIRE(frame.centers.has_value(), "wire: evaluate needs centers");
      const geo::PointSet& centers = *frame.centers;
      MMPH_REQUIRE(centers.size() <= kMaxBatchCount,
                   "wire: center batch exceeds kMaxBatchCount");
      MMPH_REQUIRE(centers.dim() >= 1 && centers.dim() <= kMaxDim,
                   "wire: bad center dimension");
      put_u32(out, static_cast<std::uint32_t>(centers.size()));
      put_u16(out, static_cast<std::uint16_t>(centers.dim()));
      for (const double c : centers.raw()) put_f64(out, c);
      break;
    }
    case FrameType::kResponse:
    case FrameType::kReplSnapshot:
    case FrameType::kReplOps:
      throw InvalidArgument("wire: encode_request given a non-request type");
  }
  patch_payload_len(out, header_start);
}

void encode_repl(const ReplFrame& frame, std::vector<std::uint8_t>& out) {
  const std::size_t header_start = out.size();
  switch (frame.type) {
    case FrameType::kReplSnapshot:
      MMPH_REQUIRE(frame.flags <= (kReplChunkFirst | kReplChunkLast),
                   "wire: bad snapshot chunk flags");
      MMPH_REQUIRE(frame.count == 0, "wire: snapshot chunk carries no count");
      put_header(out, frame.type, frame.request_id, 0);
      put_u64(out, frame.epoch);
      out.push_back(frame.flags);
      put_u32(out, static_cast<std::uint32_t>(frame.blob.size()));
      break;
    case FrameType::kReplOps:
      MMPH_REQUIRE(frame.flags == 0, "wire: ops frame carries no flags");
      MMPH_REQUIRE(frame.count >= 1, "wire: empty ops frame");
      put_header(out, frame.type, frame.request_id, 0);
      put_u64(out, frame.epoch);
      put_u32(out, frame.count);
      put_u32(out, static_cast<std::uint32_t>(frame.blob.size()));
      break;
    default:
      throw InvalidArgument("wire: encode_repl given a non-repl type");
  }
  out.insert(out.end(), frame.blob.begin(), frame.blob.end());
  patch_payload_len(out, header_start);  // also enforces kMaxPayloadBytes
}

void encode_response(const ResponseFrame& frame,
                     std::vector<std::uint8_t>& out) {
  const std::size_t header_start = out.size();
  put_header(out, FrameType::kResponse, frame.request_id, 0);
  const geo::PointSet* centers =
      frame.centers.has_value() ? &*frame.centers : nullptr;
  if (centers != nullptr) {
    MMPH_REQUIRE(centers->size() <= kMaxBatchCount,
                 "wire: center batch exceeds kMaxBatchCount");
    MMPH_REQUIRE(centers->dim() >= 1 && centers->dim() <= kMaxDim,
                 "wire: bad center dimension");
  }
  const std::string* stats =
      frame.stats.has_value() ? &*frame.stats : nullptr;
  if (stats != nullptr) {
    MMPH_REQUIRE(stats->size() <= kMaxPayloadBytes,
                 "wire: stats blob exceeds kMaxPayloadBytes");
  }
  out.push_back(static_cast<std::uint8_t>(frame.status));
  // Flags byte (v1's has_centers): bit0 = centers follow, bit1 = stats
  // blob follows the centers.
  const std::uint8_t flags =
      static_cast<std::uint8_t>((centers != nullptr ? 1 : 0) |
                                (stats != nullptr ? 2 : 0));
  out.push_back(flags);
  put_u16(out, centers != nullptr
                   ? static_cast<std::uint16_t>(centers->dim())
                   : 0);
  put_u32(out, centers != nullptr
                   ? static_cast<std::uint32_t>(centers->size())
                   : 0);
  put_u64(out, frame.epoch);
  put_f64(out, frame.objective);
  if (centers != nullptr) {
    for (const double c : centers->raw()) put_f64(out, c);
  }
  if (stats != nullptr) {
    put_u32(out, static_cast<std::uint32_t>(stats->size()));
    out.insert(out.end(), stats->begin(), stats->end());
  }
  patch_payload_len(out, header_start);
}

void FrameDecoder::feed(const std::uint8_t* data, std::size_t n) {
  if (poisoned_) return;  // stream is dead; don't grow the buffer
  buffer_.insert(buffer_.end(), data, data + n);
}

FrameDecoder::Result FrameDecoder::next() {
  Result result;
  if (poisoned_) {
    result.status = poison_status_;
    result.request_id = poison_request_id_;
    return result;
  }
  const auto fail = [&](DecodeStatus status) {
    poisoned_ = true;
    poison_status_ = status;
    poison_request_id_ = result.request_id;
    buffer_.clear();
    offset_ = 0;
    result.status = status;
    return result;
  };

  if (buffered() < kHeaderBytes) return result;  // kNeedMoreData
  const std::uint8_t* head = buffer_.data() + offset_;
  Cursor header(head, kHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t type_byte = header.u8();
  const std::uint16_t reserved = header.u16();
  const std::uint64_t request_id = header.u64();
  const std::uint32_t payload_len = header.u32();
  result.request_id = request_id;

  if (magic != kMagic) return fail(DecodeStatus::kBadMagic);
  if (version != kWireVersion) return fail(DecodeStatus::kBadVersion);
  if (type_byte < static_cast<std::uint8_t>(FrameType::kAddUsers) ||
      type_byte > static_cast<std::uint8_t>(FrameType::kReplOps)) {
    return fail(DecodeStatus::kBadType);
  }
  if (reserved != 0) return fail(DecodeStatus::kMalformedPayload);
  if (payload_len > kMaxPayloadBytes) {
    return fail(DecodeStatus::kOversizedFrame);
  }
  if (buffered() < kHeaderBytes + payload_len) return result;  // incomplete

  const auto type = static_cast<FrameType>(type_byte);
  Cursor body(head + kHeaderBytes, payload_len);
  switch (type) {
    case FrameType::kAddUsers: {
      const std::uint32_t count = body.u32();
      const std::uint16_t dim = body.u16();
      if (!body.ok() || count == 0) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      if (count > kMaxBatchCount) return fail(DecodeStatus::kOversizedBatch);
      if (dim == 0 || dim > kMaxDim) return fail(DecodeStatus::kBadDimension);
      // Exact-size check before the element loop: a consistent frame has
      // no trailing bytes and no short records.
      const std::uint64_t need =
          static_cast<std::uint64_t>(count) * (16 + 8ull * dim);
      if (body.remaining() != need) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      result.request.users.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        serve::UserRecord user;
        user.id = body.u64();
        user.weight = body.f64();
        if (!finite(user.weight) || user.weight <= 0.0) {
          return fail(DecodeStatus::kMalformedPayload);
        }
        user.interest.resize(dim);
        for (std::uint16_t d = 0; d < dim; ++d) {
          user.interest[d] = body.f64();
          if (!finite(user.interest[d])) {
            return fail(DecodeStatus::kMalformedPayload);
          }
        }
        result.request.users.push_back(std::move(user));
      }
      break;
    }
    case FrameType::kRemoveUsers: {
      const std::uint32_t count = body.u32();
      if (!body.ok()) return fail(DecodeStatus::kMalformedPayload);
      if (count > kMaxBatchCount) return fail(DecodeStatus::kOversizedBatch);
      if (body.remaining() != 8ull * count) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      result.request.ids.reserve(count);
      for (std::uint32_t i = 0; i < count; ++i) {
        result.request.ids.push_back(body.u64());
      }
      break;
    }
    case FrameType::kQueryPlacement:
    case FrameType::kStats:
      if (payload_len != 0) return fail(DecodeStatus::kMalformedPayload);
      break;
    case FrameType::kReplSubscribe:
      if (payload_len != 8) return fail(DecodeStatus::kMalformedPayload);
      result.request.have_epoch = body.u64();
      break;
    case FrameType::kReplSnapshot: {
      result.repl.epoch = body.u64();
      result.repl.flags = body.u8();
      const std::uint32_t blob_len = body.u32();
      if (!body.ok() ||
          result.repl.flags > (kReplChunkFirst | kReplChunkLast) ||
          body.remaining() != blob_len) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      const std::uint8_t* blob = head + kHeaderBytes + (payload_len - blob_len);
      result.repl.blob.assign(blob, blob + blob_len);
      result.repl.type = type;
      result.repl.request_id = request_id;
      result.is_repl = true;
      break;
    }
    case FrameType::kReplOps: {
      result.repl.epoch = body.u64();
      result.repl.count = body.u32();
      const std::uint32_t blob_len = body.u32();
      if (!body.ok() || result.repl.count == 0 ||
          result.repl.count > kMaxBatchCount ||
          body.remaining() != blob_len) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      const std::uint8_t* blob = head + kHeaderBytes + (payload_len - blob_len);
      result.repl.blob.assign(blob, blob + blob_len);
      result.repl.type = type;
      result.repl.request_id = request_id;
      result.is_repl = true;
      break;
    }
    case FrameType::kEvaluate: {
      const std::uint32_t count = body.u32();
      const std::uint16_t dim = body.u16();
      if (!body.ok()) return fail(DecodeStatus::kMalformedPayload);
      if (count > kMaxBatchCount) return fail(DecodeStatus::kOversizedBatch);
      if (dim == 0 || dim > kMaxDim) return fail(DecodeStatus::kBadDimension);
      if (body.remaining() != 8ull * count * dim) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      geo::PointSet centers(dim);
      centers.reserve(count);
      std::vector<double> row(dim);
      for (std::uint32_t i = 0; i < count; ++i) {
        for (std::uint16_t d = 0; d < dim; ++d) {
          row[d] = body.f64();
          if (!finite(row[d])) return fail(DecodeStatus::kMalformedPayload);
        }
        centers.push_back(geo::ConstVec(row.data(), row.size()));
      }
      result.request.centers = std::move(centers);
      break;
    }
    case FrameType::kResponse: {
      const std::uint8_t status = body.u8();
      const std::uint8_t flags = body.u8();
      const std::uint16_t dim = body.u16();
      const std::uint32_t count = body.u32();
      result.response.epoch = body.u64();
      result.response.objective = body.f64();
      if (!body.ok()) return fail(DecodeStatus::kMalformedPayload);
      // kConnectionLost is deliberately above the cut: it is synthesized
      // by the client for locally-failed slots, never decoded off a wire.
      if (status > static_cast<std::uint8_t>(WireStatus::kInternalError) ||
          flags > 3) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      if (!finite(result.response.objective)) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      result.response.status = static_cast<WireStatus>(status);
      const bool has_centers = (flags & 1) != 0;
      const bool has_stats = (flags & 2) != 0;
      if (has_centers) {
        if (count > kMaxBatchCount) {
          return fail(DecodeStatus::kOversizedBatch);
        }
        if (dim == 0 || dim > kMaxDim) {
          return fail(DecodeStatus::kBadDimension);
        }
        if (body.remaining() < 8ull * count * dim) {
          return fail(DecodeStatus::kMalformedPayload);
        }
        geo::PointSet centers(dim);
        centers.reserve(count);
        std::vector<double> row(dim);
        for (std::uint32_t i = 0; i < count; ++i) {
          for (std::uint16_t d = 0; d < dim; ++d) {
            row[d] = body.f64();
            if (!finite(row[d])) {
              return fail(DecodeStatus::kMalformedPayload);
            }
          }
          centers.push_back(geo::ConstVec(row.data(), row.size()));
        }
        result.response.centers = std::move(centers);
      } else if (dim != 0 || count != 0) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      if (has_stats) {
        const std::uint32_t stats_len = body.u32();
        if (!body.ok() || body.remaining() != stats_len) {
          return fail(DecodeStatus::kMalformedPayload);
        }
        std::string stats(stats_len, '\0');
        for (std::uint32_t i = 0; i < stats_len; ++i) {
          stats[i] = static_cast<char>(body.u8());
        }
        result.response.stats = std::move(stats);
      }
      // Exact-size check: a consistent frame has no trailing bytes.
      if (body.remaining() != 0) {
        return fail(DecodeStatus::kMalformedPayload);
      }
      result.response.request_id = request_id;
      result.is_response = true;
      break;
    }
  }
  if (!body.ok()) return fail(DecodeStatus::kMalformedPayload);

  result.request.type = type;
  result.request.request_id = request_id;
  result.status = DecodeStatus::kOk;
  offset_ += kHeaderBytes + payload_len;
  // Reclaim the consumed prefix once it dominates the buffer.
  if (offset_ > buffer_.size() / 2 && offset_ >= kHeaderBytes) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(offset_));
    offset_ = 0;
  }
  return result;
}

}  // namespace mmph::net
