#include "mmph/net/replica.hpp"

#include <algorithm>
#include <utility>

#include "mmph/support/assert.hpp"
#include "mmph/wal/record.hpp"
#include "mmph/wal/snapshot.hpp"

namespace mmph::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kRecvChunk = 64 * 1024;

}  // namespace

ReplicaAgent::ReplicaAgent(serve::PlacementService& service,
                           ReplicaAgentConfig config)
    : service_(service), config_(std::move(config)) {
  MMPH_REQUIRE(config_.port != 0, "ReplicaAgent: primary port must be set");
}

ReplicaAgent::~ReplicaAgent() { stop(); }

void ReplicaAgent::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  service_.set_read_only(true);
  thread_ = std::thread([this] { run(); });
}

void ReplicaAgent::stop() {
  running_.store(false);
  if (thread_.joinable()) thread_.join();
  connected_.store(false);
}

std::uint64_t ReplicaAgent::lag_ops() const {
  const std::uint64_t primary = primary_epoch();
  const std::uint64_t local = service_.epoch();
  return primary > local ? primary - local : 0;
}

void ReplicaAgent::publish_lag() {
  service_.set_repl_lag(static_cast<double>(lag_ops()));
}

void ReplicaAgent::run() {
  while (running_.load(std::memory_order_relaxed)) {
    try {
      session();
    } catch (...) {
      // NetError, StateError, anything else: the session is over; fall
      // through to the backoff and resubscribe from the current epoch.
    }
    connected_.store(false);
    if (!running_.load(std::memory_order_relaxed)) break;
    resyncs_.fetch_add(1, std::memory_order_relaxed);
    std::this_thread::sleep_for(config_.retry_backoff);
  }
}

void ReplicaAgent::session() {
  Socket sock = tcp_connect(config_.host, config_.port,
                            config_.connect_timeout);  // throws NetError

  RequestFrame subscribe;
  subscribe.type = FrameType::kReplSubscribe;
  subscribe.request_id = 1;
  subscribe.have_epoch = service_.epoch();
  std::vector<std::uint8_t> bytes;
  encode_request(subscribe, bytes);
  if (!send_all(sock, bytes.data(), bytes.size(),
                Clock::now() + config_.send_timeout, ops())) {
    return;
  }
  connected_.store(true);
  snapshot_buf_.clear();
  snapshot_open_ = false;

  FrameDecoder decoder;
  std::uint8_t chunk[kRecvChunk];
  while (running_.load(std::memory_order_relaxed)) {
    const IoResult r = recv_some(sock, chunk, sizeof(chunk),
                                 Clock::now() + config_.poll_interval, ops());
    if (r.status == IoStatus::kClosed || r.status == IoStatus::kError) return;
    if (r.bytes == 0) continue;  // poll window elapsed; re-check stop flag
    decoder.feed(chunk, r.bytes);
    for (;;) {
      FrameDecoder::Result decoded = decoder.next();
      if (decoded.status == DecodeStatus::kNeedMoreData) break;
      if (decoded.status != DecodeStatus::kOk) return;  // poisoned stream
      if (decoded.is_response) {
        // The only response on this stream is a rejection of the
        // subscribe itself (e.g. the primary runs without a WAL).
        if (decoded.response.status != WireStatus::kOk) return;
        continue;
      }
      if (!decoded.is_repl) return;  // primary speaking the wrong direction
      if (config_.fault_hook && config_.fault_hook(serve::kFaultReplicaLag)) {
        // Injected ingest stall: the frame sits unapplied while the
        // primary's epoch is already known — observable replication lag.
        primary_epoch_.store(decoded.repl.epoch, std::memory_order_relaxed);
        publish_lag();
        std::this_thread::sleep_for(config_.retry_backoff);
      }
      if (!ingest(decoded.repl)) return;
    }
  }
}

bool ReplicaAgent::ingest(const ReplFrame& frame) {
  primary_epoch_.store(std::max(primary_epoch(), frame.epoch),
                       std::memory_order_relaxed);
  publish_lag();

  if (frame.type == FrameType::kReplSnapshot) {
    if ((frame.flags & kReplChunkFirst) != 0) {
      snapshot_buf_.clear();
      snapshot_open_ = true;
    }
    if (!snapshot_open_) return false;  // chunk without a first chunk
    snapshot_buf_.insert(snapshot_buf_.end(), frame.blob.begin(),
                         frame.blob.end());
    if ((frame.flags & kReplChunkLast) == 0) return true;
    snapshot_open_ = false;
    wal::WalSnapshot snapshot;
    if (wal::decode_snapshot(snapshot_buf_.data(), snapshot_buf_.size(),
                             snapshot) != wal::RecordDecodeStatus::kOk ||
        snapshot.epoch != frame.epoch) {
      return false;
    }
    service_.restore_from(snapshot);  // throws on dim mismatch -> session ends
    installs_.fetch_add(1, std::memory_order_relaxed);
    publish_lag();
    return true;
  }

  // kReplOps: a run of encoded WAL records, each individually guarded.
  std::size_t offset = 0;
  std::uint32_t applied = 0;
  while (offset < frame.blob.size()) {
    const wal::RecordDecodeResult decoded = wal::decode_record(
        frame.blob.data() + offset, frame.blob.size() - offset);
    if (decoded.status != wal::RecordDecodeStatus::kOk) return false;
    offset += decoded.consumed;
    if (decoded.record.epoch <= service_.epoch()) continue;  // replayed tail
    service_.apply_replicated(decoded.record);  // StateError on chain break
    records_applied_.fetch_add(1, std::memory_order_relaxed);
    ++applied;
  }
  if (offset != frame.blob.size()) return false;
  (void)applied;
  publish_lag();
  return true;
}

}  // namespace mmph::net
