#include "mmph/net/metrics.hpp"

#include "mmph/io/stats.hpp"

namespace mmph::net {

void NetMetrics::count_accepted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.accepted;
}

void NetMetrics::count_rejected_overloaded() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.rejected_overloaded;
}

void NetMetrics::count_closed_idle() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.closed_idle;
}

void NetMetrics::count_closed_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.closed_error;
}

void NetMetrics::add_bytes_in(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.bytes_in += n;
}

void NetMetrics::add_bytes_out(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.bytes_out += n;
}

void NetMetrics::count_frame_in() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.frames_in;
}

void NetMetrics::count_frame_out() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.frames_out;
}

void NetMetrics::count_frame_error() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.frame_errors;
}

void NetMetrics::count_request() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.requests;
}

void NetMetrics::count_timeout() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.timeouts;
}

void NetMetrics::set_open_connections(std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.open_connections = n;
}

void NetMetrics::record_latency(double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (latency_seconds_.size() >= kMaxLatencySamples) {
    latency_seconds_.erase(latency_seconds_.begin(),
                           latency_seconds_.begin() + kMaxLatencySamples / 2);
  }
  latency_seconds_.push_back(seconds);
}

NetMetricsSnapshot NetMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  NetMetricsSnapshot snap = counters_;
  if (!latency_seconds_.empty()) {
    snap.latency_p50_seconds = io::percentile(latency_seconds_, 0.50);
    snap.latency_p99_seconds = io::percentile(latency_seconds_, 0.99);
  }
  return snap;
}

void NetMetrics::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = NetMetricsSnapshot{};
  latency_seconds_.clear();
}

}  // namespace mmph::net
