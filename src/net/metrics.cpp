#include "mmph/net/metrics.hpp"

namespace mmph::net {

NetMetrics::NetMetrics()
    : accepted_(&registry_.counter("mmph_net_accepted_total",
                                   "connections accepted")),
      rejected_overloaded_(
          &registry_.counter("mmph_net_rejected_overloaded_total",
                             "connections shed by max-connections")),
      closed_idle_(&registry_.counter("mmph_net_closed_idle_total",
                                      "connections reaped idle")),
      closed_error_(&registry_.counter("mmph_net_closed_error_total",
                                       "connections closed after error")),
      bytes_in_(&registry_.counter("mmph_net_bytes_in_total",
                                   "bytes read from peers")),
      bytes_out_(&registry_.counter("mmph_net_bytes_out_total",
                                    "bytes written to peers")),
      frames_in_(&registry_.counter("mmph_net_frames_in_total",
                                    "request frames decoded")),
      frames_out_(&registry_.counter("mmph_net_frames_out_total",
                                     "response frames encoded")),
      frame_errors_(&registry_.counter("mmph_net_frame_errors_total",
                                       "typed decode failures")),
      requests_(&registry_.counter("mmph_net_requests_total",
                                   "requests submitted to the service")),
      timeouts_(&registry_.counter("mmph_net_timeouts_total",
                                   "requests answered kTimeout")),
      open_connections_(&registry_.gauge("mmph_net_open_connections",
                                         "currently open connections")),
      latency_seconds_(
          &registry_.histogram("mmph_net_request_latency_seconds",
                               "request latency, decode to encode")) {}

NetMetricsSnapshot NetMetrics::snapshot() const {
  NetMetricsSnapshot snap;
  snap.accepted = accepted_->value();
  snap.rejected_overloaded = rejected_overloaded_->value();
  snap.closed_idle = closed_idle_->value();
  snap.closed_error = closed_error_->value();
  snap.bytes_in = bytes_in_->value();
  snap.bytes_out = bytes_out_->value();
  snap.frames_in = frames_in_->value();
  snap.frames_out = frames_out_->value();
  snap.frame_errors = frame_errors_->value();
  snap.requests = requests_->value();
  snap.timeouts = timeouts_->value();
  snap.open_connections =
      static_cast<std::size_t>(open_connections_->value());
  const obs::HistogramSnapshot hist = latency_seconds_->snapshot();
  snap.latency_p50_seconds = hist.quantile(0.50);
  snap.latency_p99_seconds = hist.quantile(0.99);
  return snap;
}

}  // namespace mmph::net
