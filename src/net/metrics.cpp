#include "mmph/net/metrics.hpp"

#include <string>

namespace mmph::net {
namespace {

std::string labeled(const char* base, std::size_t loop) {
  return std::string(base) + "{loop=\"" + std::to_string(loop) + "\"}";
}

}  // namespace

NetMetrics::NetMetrics(std::size_t loops)
    : accepted_(&registry_.counter("mmph_net_accepted_total",
                                   "connections accepted")),
      rejected_overloaded_(
          &registry_.counter("mmph_net_rejected_overloaded_total",
                             "connections shed by max-connections")),
      closed_idle_(&registry_.counter("mmph_net_closed_idle_total",
                                      "connections reaped idle")),
      closed_error_(&registry_.counter("mmph_net_closed_error_total",
                                       "connections closed after error")),
      bytes_in_(&registry_.counter("mmph_net_bytes_in_total",
                                   "bytes read from peers")),
      bytes_out_(&registry_.counter("mmph_net_bytes_out_total",
                                    "bytes written to peers")),
      frames_in_(&registry_.counter("mmph_net_frames_in_total",
                                    "request frames decoded")),
      frames_out_(&registry_.counter("mmph_net_frames_out_total",
                                     "response frames encoded")),
      frame_errors_(&registry_.counter("mmph_net_frame_errors_total",
                                       "typed decode failures")),
      requests_(&registry_.counter("mmph_net_requests_total",
                                   "requests submitted to the service")),
      timeouts_(&registry_.counter("mmph_net_timeouts_total",
                                   "requests answered kTimeout")),
      ownership_checks_(
          &registry_.counter("mmph_net_ownership_checks_total",
                             "loop-affinity assertions passed")),
      open_connections_(&registry_.gauge("mmph_net_open_connections",
                                         "currently open connections")),
      latency_seconds_(
          &registry_.histogram("mmph_net_request_latency_seconds",
                               "request latency, decode to encode")) {
  if (loops == 0) loops = 1;
  loops_.resize(loops);
  // Register each labeled family's series together so the exposition
  // writer emits one HELP/TYPE header per family (see obs::Registry).
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].agg_ = this;
    loops_[i].accepted_ = &registry_.counter(
        labeled("mmph_net_loop_accepted_total", i),
        "connections accepted, by owning loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].frames_in_ =
        &registry_.counter(labeled("mmph_net_loop_frames_in_total", i),
                           "request frames decoded, by loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].frames_out_ =
        &registry_.counter(labeled("mmph_net_loop_frames_out_total", i),
                           "response frames encoded, by loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].requests_ =
        &registry_.counter(labeled("mmph_net_loop_requests_total", i),
                           "requests submitted, by loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].bytes_in_ = &registry_.counter(
        labeled("mmph_net_loop_bytes_in_total", i), "bytes read, by loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].bytes_out_ =
        &registry_.counter(labeled("mmph_net_loop_bytes_out_total", i),
                           "bytes written, by loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].ownership_checks_ = &registry_.counter(
        labeled("mmph_net_loop_ownership_checks_total", i),
        "loop-affinity assertions passed, by loop");
  }
  for (std::size_t i = 0; i < loops; ++i) {
    loops_[i].open_connections_ =
        &registry_.gauge(labeled("mmph_net_loop_open_connections", i),
                         "open connections owned, by loop");
  }
}

NetMetricsSnapshot NetMetrics::snapshot() const {
  NetMetricsSnapshot snap;
  snap.accepted = accepted_->value();
  snap.rejected_overloaded = rejected_overloaded_->value();
  snap.closed_idle = closed_idle_->value();
  snap.closed_error = closed_error_->value();
  snap.bytes_in = bytes_in_->value();
  snap.bytes_out = bytes_out_->value();
  snap.frames_in = frames_in_->value();
  snap.frames_out = frames_out_->value();
  snap.frame_errors = frame_errors_->value();
  snap.requests = requests_->value();
  snap.timeouts = timeouts_->value();
  snap.ownership_checks = ownership_checks_->value();
  snap.open_connections =
      static_cast<std::size_t>(open_connections_->value());
  const obs::HistogramSnapshot hist = latency_seconds_->snapshot();
  snap.latency_p50_seconds = hist.quantile(0.50);
  snap.latency_p99_seconds = hist.quantile(0.99);
  return snap;
}

NetLoopSnapshot NetMetrics::loop_snapshot(std::size_t index) const {
  const Loop& loop = loops_.at(index);
  NetLoopSnapshot snap;
  snap.accepted = loop.accepted_->value();
  snap.frames_in = loop.frames_in_->value();
  snap.frames_out = loop.frames_out_->value();
  snap.requests = loop.requests_->value();
  snap.bytes_in = loop.bytes_in_->value();
  snap.bytes_out = loop.bytes_out_->value();
  snap.ownership_checks = loop.ownership_checks_->value();
  snap.open_connections =
      static_cast<std::size_t>(loop.open_connections_->value());
  return snap;
}

}  // namespace mmph::net
