#include "mmph/net/server.hpp"

#include <poll.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <future>
#include <sstream>
#include <utility>

#include "mmph/support/assert.hpp"
#include "mmph/trace/span.hpp"

namespace mmph::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
/// Stop queueing replication frames once a subscriber's unsent backlog
/// reaches this; the stream resumes as the socket drains.
constexpr std::size_t kReplWatermark = 1u << 20;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

/// Per-connection state: decoder for inbound bytes, a bounded write
/// buffer for outbound frames, and the FIFO of submitted-but-unanswered
/// requests (responses are encoded in arrival order, so a pipelining
/// client can match replies to requests positionally as well as by id).
struct NetServer::Connection {
  Socket sock;
  FrameDecoder decoder;
  std::vector<std::uint8_t> out;
  std::size_t out_offset = 0;
  Clock::time_point opened = Clock::now();
  Clock::time_point last_activity = Clock::now();
  bool close_after_flush = false;

  struct Pending {
    std::uint64_t request_id = 0;
    Clock::time_point arrival;
    std::future<serve::Response> future;
  };
  std::deque<Pending> pending;

  // Replication subscriber state (set by kReplSubscribe; see
  // pump_replication). A non-empty repl_snapshot means a full-store
  // image is mid-stream and ops are held back until it finishes.
  bool repl_subscriber = false;
  std::uint64_t repl_request_id = 0;
  std::uint64_t repl_epoch = 0;  ///< subscriber is synced through here
  std::uint64_t repl_snapshot_epoch = 0;
  std::vector<std::uint8_t> repl_snapshot;  ///< encoded snapshot file
  std::size_t repl_snapshot_offset = 0;

  [[nodiscard]] std::size_t unsent() const noexcept {
    return out.size() - out_offset;
  }
};

NetServer::NetServer(serve::ServiceConfig service_config,
                     NetServerConfig net_config, par::ThreadPool* pool)
    : config_(std::move(net_config)),
      ops_(config_.socket_ops != nullptr ? *config_.socket_ops
                                         : SocketOps::system()),
      service_(std::make_unique<serve::PlacementService>(service_config,
                                                         pool)) {
  MMPH_REQUIRE(config_.max_connections >= 1,
               "NetServer: max_connections must be >= 1");
  MMPH_REQUIRE(config_.poll_interval.count() >= 1,
               "NetServer: poll_interval must be >= 1ms");
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  try {
    auto [sock, port] = tcp_listen(config_.host, config_.port);
    listener_ = std::move(sock);
    port_ = port;
  } catch (...) {
    running_.store(false);
    throw;
  }
  // Last-resort barrier: anything the per-connection try/catch in
  // event_loop() cannot attribute to one peer (accept, pump, poll
  // bookkeeping) stops the server instead of std::terminate'ing the
  // whole process.
  loop_ = std::thread([this] {
    try {
      event_loop();
    } catch (...) {
      running_.store(false);
    }
  });
}

void NetServer::stop() {
  running_.store(false);
  if (loop_.joinable()) loop_.join();
  while (!connections_.empty()) close_connection(connections_.size() - 1);
  listener_.close();
  service_->stop();
}

void NetServer::event_loop() {
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->close_after_flush) events |= POLLIN;
      if (conn->unsent() > 0) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(config_.poll_interval.count()));
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: shut down

    // Connections accepted below have no pollfd entry yet; only the
    // first `polled` connections may consult fds[i + 1].
    const std::size_t polled = fds.size() - 1;
    if ((fds[0].revents & POLLIN) != 0) accept_pending();

    // Read + decode + submit. Walk backwards so close_connection's
    // swap-remove cannot skip an element (the element swapped into a
    // closed slot is always one this loop has already visited or a
    // just-accepted connection with nothing to read yet).
    for (std::size_t i = polled; i-- > 0;) {
      Connection& conn = *connections_[i];
      const short revents = fds[i + 1].revents;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        close_connection(i);
        continue;
      }
      if ((revents & POLLIN) == 0) continue;
      bool alive;
      try {
        alive = read_and_submit(conn);
      } catch (...) {
        // Exception barrier: a throw here (encode limits, allocation)
        // is this connection's problem, not the server's.
        metrics_.count_closed_error();
        alive = false;
      }
      if (!alive) close_connection(i);
    }

    // One synchronous drain answers everything decoded this iteration
    // (and anything a direct in-process submit() queued meanwhile).
    while (service_->pump(std::chrono::milliseconds(0)) > 0) {
    }

    const auto now = Clock::now();
    for (std::size_t i = connections_.size(); i-- > 0;) {
      Connection& conn = *connections_[i];
      bool alive = true;
      try {
        collect_replies(conn);
        pump_replication(conn);
        if (conn.unsent() > 0) alive = flush(conn);
      } catch (...) {
        // future.get() rethrow or encode failure: same barrier as above.
        metrics_.count_closed_error();
        alive = false;
      }
      if (!alive) {
        close_connection(i);
        continue;
      }
      if (conn.close_after_flush && conn.unsent() == 0) {
        metrics_.count_closed_error();
        close_connection(i);
        continue;
      }
      // Idle or wedged (peer neither sends frames nor drains replies
      // for a whole idle window): reclaim the slot. Replication
      // subscribers are exempt — a caught-up replica is legitimately
      // silent for as long as the primary has no churn.
      if (!conn.repl_subscriber && conn.pending.empty() &&
          now - conn.last_activity > config_.idle_timeout) {
        metrics_.count_closed_idle();
        close_connection(i);
        continue;
      }
    }
  }
}

void NetServer::accept_pending() {
  for (;;) {
    Socket sock = tcp_accept(listener_, ops_);
    if (!sock.valid()) return;
    if (connections_.size() >= config_.max_connections) {
      // Shed load explicitly: tell the peer why before closing. The
      // write is best-effort — a peer that cannot take ~50 bytes
      // immediately learns of the shed via the close instead.
      ResponseFrame shed;
      shed.status = WireStatus::kOverloaded;
      std::vector<std::uint8_t> bytes;
      encode_response(shed, bytes);
      (void)sock_write(sock, bytes.data(), bytes.size(), ops_);
      metrics_.count_rejected_overloaded();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    connections_.push_back(std::move(conn));
    metrics_.count_accepted();
    metrics_.set_open_connections(connections_.size());
  }
}

bool NetServer::read_and_submit(Connection& conn) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const IoResult r = sock_read(conn.sock, chunk, sizeof(chunk), ops_);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) return false;  // EOF or error
    metrics_.add_bytes_in(r.bytes);
    conn.decoder.feed(chunk, r.bytes);
    if (conn.decoder.buffered() + conn.unsent() > config_.max_buffered_bytes) {
      return false;  // peer floods faster than we drain: drop it
    }
  }

  const auto arrival = Clock::now();
  for (;;) {
    FrameDecoder::Result decoded = conn.decoder.next();
    if (decoded.status == DecodeStatus::kNeedMoreData) break;
    if (decoded.status != DecodeStatus::kOk || decoded.is_response ||
        decoded.is_repl) {
      // Typed decode failure (or a peer speaking the wrong direction):
      // answer kBadRequest so the peer can log *why*, then drop the
      // connection — after a framing error the stream is garbage.
      metrics_.count_frame_error();
      ResponseFrame reply;
      reply.request_id = decoded.request_id;
      reply.status = WireStatus::kBadRequest;
      encode_response(reply, conn.out);
      metrics_.count_frame_out();
      conn.close_after_flush = true;
      break;
    }

    metrics_.count_frame_in();
    conn.last_activity = arrival;
    RequestFrame& frame = decoded.request;

    // Stats scrapes are answered inline from the registries, not routed
    // through the service queue: they must work even when the queue is
    // saturated (that is exactly when an operator scrapes). Like the
    // dim-mismatch reply below, this jumps the per-connection FIFO ahead
    // of still-pending service requests.
    if (frame.type == FrameType::kStats) {
      ResponseFrame reply;
      reply.request_id = frame.request_id;
      reply.status = WireStatus::kOk;
      reply.epoch = service_->epoch();
      reply.stats = render_stats();
      encode_response(reply, conn.out);
      metrics_.count_frame_out();
      metrics_.count_request();
      continue;
    }

    // A replica announcing itself. Answered inline like kStats; from the
    // next pump_replication pass this connection receives the stream.
    // Servers running without a WAL have no log to stream: kBadRequest.
    if (frame.type == FrameType::kReplSubscribe) {
      metrics_.count_request();
      if (service_->wal() == nullptr) {
        ResponseFrame reply;
        reply.request_id = frame.request_id;
        reply.status = WireStatus::kBadRequest;
        reply.epoch = service_->epoch();
        encode_response(reply, conn.out);
        metrics_.count_frame_out();
        continue;
      }
      conn.repl_subscriber = true;
      conn.repl_request_id = frame.request_id;
      conn.repl_epoch = frame.have_epoch;
      conn.repl_snapshot.clear();
      conn.repl_snapshot_offset = 0;
      continue;
    }

    // Well-framed but unusable for *this* service: wrong interest-space
    // dimension. Answered per-request; the connection stays healthy.
    const std::size_t service_dim = service_->config().dim;
    const bool dim_mismatch =
        (frame.type == FrameType::kAddUsers &&
         frame.users.front().interest.size() != service_dim) ||
        (frame.type == FrameType::kEvaluate && frame.centers.has_value() &&
         frame.centers->dim() != service_dim);
    if (dim_mismatch) {
      ResponseFrame reply;
      reply.request_id = frame.request_id;
      reply.status = WireStatus::kBadRequest;
      reply.epoch = service_->epoch();
      encode_response(reply, conn.out);
      metrics_.count_frame_out();
      continue;
    }

    serve::Request request;
    switch (frame.type) {
      case FrameType::kAddUsers:
        request = serve::Request::add_users(std::move(frame.users));
        break;
      case FrameType::kRemoveUsers:
        request = serve::Request::remove_users(std::move(frame.ids));
        break;
      case FrameType::kQueryPlacement:
        request = serve::Request::query_placement();
        break;
      case FrameType::kEvaluate:
        request = serve::Request::evaluate(std::move(*frame.centers));
        break;
      case FrameType::kResponse:
      case FrameType::kStats:
      case FrameType::kReplSubscribe:
      case FrameType::kReplSnapshot:
      case FrameType::kReplOps:
        continue;  // unreachable: all handled or rejected above
    }
    request.deadline = arrival + config_.request_deadline;

    Connection::Pending pending;
    pending.request_id = frame.request_id;
    pending.arrival = arrival;
    pending.future = service_->submit(std::move(request));
    conn.pending.push_back(std::move(pending));
    metrics_.count_request();
  }
  return true;
}

void NetServer::collect_replies(Connection& conn) {
  while (!conn.pending.empty()) {
    Connection::Pending& head = conn.pending.front();
    if (head.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      break;  // keep per-connection response order
    }
    const serve::Response response = head.future.get();

    ResponseFrame reply;
    reply.request_id = head.request_id;
    reply.status = to_wire_status(response.status);
    reply.epoch = response.epoch;
    reply.objective = response.objective;
    if (response.solution.has_value()) {
      reply.centers = response.solution->centers;
    }
    encode_response(reply, conn.out);
    metrics_.count_frame_out();
    if (reply.status == WireStatus::kTimeout) metrics_.count_timeout();

    const double latency = seconds_since(head.arrival);
    metrics_.record_latency(latency);
    trace::SpanCollector::global().record("net.request", latency);
    conn.pending.pop_front();
  }
}

void NetServer::pump_replication(Connection& conn) {
  if (!conn.repl_subscriber) return;
  wal::WalWriter* wal = service_->wal();
  if (wal == nullptr) return;
  while (conn.unsent() < kReplWatermark) {
    if (!conn.repl_snapshot.empty()) {
      // A full-store image is mid-stream: next chunk.
      const std::size_t remaining =
          conn.repl_snapshot.size() - conn.repl_snapshot_offset;
      const std::size_t n = std::min(remaining, kReplChunkBytes);
      ReplFrame chunk;
      chunk.type = FrameType::kReplSnapshot;
      chunk.request_id = conn.repl_request_id;
      chunk.epoch = conn.repl_snapshot_epoch;
      chunk.flags = static_cast<std::uint8_t>(
          (conn.repl_snapshot_offset == 0 ? kReplChunkFirst : 0) |
          (n == remaining ? kReplChunkLast : 0));
      const auto* base = conn.repl_snapshot.data() + conn.repl_snapshot_offset;
      chunk.blob.assign(base, base + n);
      encode_repl(chunk, conn.out);
      metrics_.count_frame_out();
      conn.repl_snapshot_offset += n;
      if (n == remaining) {
        conn.repl_snapshot.clear();
        conn.repl_snapshot_offset = 0;
        conn.repl_epoch = conn.repl_snapshot_epoch;
      }
      continue;
    }
    wal::WalWriter::TailResult tail =
        wal->tail_since(conn.repl_epoch, kReplChunkBytes);
    if (!tail.covered) {
      // The subscriber is behind the retained log window; restart it
      // from a full snapshot of the live store.
      wal::WalSnapshot snap = service_->wal_snapshot();
      conn.repl_snapshot_epoch = snap.epoch;
      conn.repl_snapshot.clear();
      conn.repl_snapshot_offset = 0;
      encode_snapshot(snap, conn.repl_snapshot);
      continue;
    }
    if (tail.count == 0) break;  // subscriber is caught up
    ReplFrame ops;
    ops.type = FrameType::kReplOps;
    ops.request_id = conn.repl_request_id;
    ops.epoch = tail.last_epoch;
    ops.count = tail.count;
    ops.blob = std::move(tail.bytes);
    // encode_repl throws past the event loop's per-connection barrier if
    // one record alone exceeds the frame cap (possible only through the
    // direct API with a batch far above net::kMaxBatchCount) — the
    // subscriber is dropped rather than sent a torn stream.
    encode_repl(ops, conn.out);
    metrics_.count_frame_out();
    conn.repl_epoch = tail.last_epoch;
  }
}

bool NetServer::flush(Connection& conn) {
  while (conn.unsent() > 0) {
    const IoResult r = sock_write(conn.sock, conn.out.data() + conn.out_offset,
                                  conn.unsent(), ops_);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) return false;
    conn.out_offset += r.bytes;
    metrics_.add_bytes_out(r.bytes);
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > conn.out.size() / 2) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() +
                       static_cast<std::ptrdiff_t>(conn.out_offset));
    conn.out_offset = 0;
  }
  return true;
}

std::string NetServer::render_stats() const {
  std::ostringstream out;
  metrics_.registry().write_exposition(out);
  service_->metrics_registry().write_exposition(out);
  if (service_->wal() != nullptr) {
    service_->wal()->registry().write_exposition(out);
  }
  trace::SpanCollector::global().registry().write_exposition(out);
  return out.str();
}

void NetServer::close_connection(std::size_t index) {
  trace::SpanCollector::global().record(
      "net.conn", seconds_since(connections_[index]->opened));
  // Gauge first: a peer observes EOF the moment the fd below is closed,
  // and may read the metrics snapshot before this thread runs again.
  metrics_.set_open_connections(connections_.size() - 1);
  connections_[index] = std::move(connections_.back());
  connections_.pop_back();
}

}  // namespace mmph::net
