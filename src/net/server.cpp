#include "mmph/net/server.hpp"

#include <poll.h>

#include <cerrno>
#include <chrono>
#include <deque>
#include <future>
#include <sstream>
#include <utility>

#include "mmph/support/assert.hpp"
#include "mmph/trace/span.hpp"

namespace mmph::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

/// Per-connection state: decoder for inbound bytes, a bounded write
/// buffer for outbound frames, and the FIFO of submitted-but-unanswered
/// requests (responses are encoded in arrival order, so a pipelining
/// client can match replies to requests positionally as well as by id).
struct NetServer::Connection {
  Socket sock;
  FrameDecoder decoder;
  std::vector<std::uint8_t> out;
  std::size_t out_offset = 0;
  Clock::time_point opened = Clock::now();
  Clock::time_point last_activity = Clock::now();
  bool close_after_flush = false;

  struct Pending {
    std::uint64_t request_id = 0;
    Clock::time_point arrival;
    std::future<serve::Response> future;
  };
  std::deque<Pending> pending;

  [[nodiscard]] std::size_t unsent() const noexcept {
    return out.size() - out_offset;
  }
};

NetServer::NetServer(serve::ServiceConfig service_config,
                     NetServerConfig net_config, par::ThreadPool* pool)
    : config_(std::move(net_config)),
      ops_(config_.socket_ops != nullptr ? *config_.socket_ops
                                         : SocketOps::system()),
      service_(std::make_unique<serve::PlacementService>(service_config,
                                                         pool)) {
  MMPH_REQUIRE(config_.max_connections >= 1,
               "NetServer: max_connections must be >= 1");
  MMPH_REQUIRE(config_.poll_interval.count() >= 1,
               "NetServer: poll_interval must be >= 1ms");
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  try {
    auto [sock, port] = tcp_listen(config_.host, config_.port);
    listener_ = std::move(sock);
    port_ = port;
  } catch (...) {
    running_.store(false);
    throw;
  }
  // Last-resort barrier: anything the per-connection try/catch in
  // event_loop() cannot attribute to one peer (accept, pump, poll
  // bookkeeping) stops the server instead of std::terminate'ing the
  // whole process.
  loop_ = std::thread([this] {
    try {
      event_loop();
    } catch (...) {
      running_.store(false);
    }
  });
}

void NetServer::stop() {
  running_.store(false);
  if (loop_.joinable()) loop_.join();
  while (!connections_.empty()) close_connection(connections_.size() - 1);
  listener_.close();
  service_->stop();
}

void NetServer::event_loop() {
  std::vector<pollfd> fds;
  while (running_.load(std::memory_order_relaxed)) {
    fds.clear();
    fds.push_back({listener_.fd(), POLLIN, 0});
    for (const auto& conn : connections_) {
      short events = 0;
      if (!conn->close_after_flush) events |= POLLIN;
      if (conn->unsent() > 0) events |= POLLOUT;
      fds.push_back({conn->sock.fd(), events, 0});
    }
    const int rc = ::poll(fds.data(), fds.size(),
                          static_cast<int>(config_.poll_interval.count()));
    if (rc < 0 && errno != EINTR) break;  // poll itself failed: shut down

    // Connections accepted below have no pollfd entry yet; only the
    // first `polled` connections may consult fds[i + 1].
    const std::size_t polled = fds.size() - 1;
    if ((fds[0].revents & POLLIN) != 0) accept_pending();

    // Read + decode + submit. Walk backwards so close_connection's
    // swap-remove cannot skip an element (the element swapped into a
    // closed slot is always one this loop has already visited or a
    // just-accepted connection with nothing to read yet).
    for (std::size_t i = polled; i-- > 0;) {
      Connection& conn = *connections_[i];
      const short revents = fds[i + 1].revents;
      if ((revents & (POLLERR | POLLHUP | POLLNVAL)) != 0 &&
          (revents & POLLIN) == 0) {
        close_connection(i);
        continue;
      }
      if ((revents & POLLIN) == 0) continue;
      bool alive;
      try {
        alive = read_and_submit(conn);
      } catch (...) {
        // Exception barrier: a throw here (encode limits, allocation)
        // is this connection's problem, not the server's.
        metrics_.count_closed_error();
        alive = false;
      }
      if (!alive) close_connection(i);
    }

    // One synchronous drain answers everything decoded this iteration
    // (and anything a direct in-process submit() queued meanwhile).
    while (service_->pump(std::chrono::milliseconds(0)) > 0) {
    }

    const auto now = Clock::now();
    for (std::size_t i = connections_.size(); i-- > 0;) {
      Connection& conn = *connections_[i];
      bool alive = true;
      try {
        collect_replies(conn);
        if (conn.unsent() > 0) alive = flush(conn);
      } catch (...) {
        // future.get() rethrow or encode failure: same barrier as above.
        metrics_.count_closed_error();
        alive = false;
      }
      if (!alive) {
        close_connection(i);
        continue;
      }
      if (conn.close_after_flush && conn.unsent() == 0) {
        metrics_.count_closed_error();
        close_connection(i);
        continue;
      }
      // Idle or wedged (peer neither sends frames nor drains replies
      // for a whole idle window): reclaim the slot.
      if (conn.pending.empty() &&
          now - conn.last_activity > config_.idle_timeout) {
        metrics_.count_closed_idle();
        close_connection(i);
        continue;
      }
    }
  }
}

void NetServer::accept_pending() {
  for (;;) {
    Socket sock = tcp_accept(listener_, ops_);
    if (!sock.valid()) return;
    if (connections_.size() >= config_.max_connections) {
      // Shed load explicitly: tell the peer why before closing. The
      // write is best-effort — a peer that cannot take ~50 bytes
      // immediately learns of the shed via the close instead.
      ResponseFrame shed;
      shed.status = WireStatus::kOverloaded;
      std::vector<std::uint8_t> bytes;
      encode_response(shed, bytes);
      (void)sock_write(sock, bytes.data(), bytes.size(), ops_);
      metrics_.count_rejected_overloaded();
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->sock = std::move(sock);
    connections_.push_back(std::move(conn));
    metrics_.count_accepted();
    metrics_.set_open_connections(connections_.size());
  }
}

bool NetServer::read_and_submit(Connection& conn) {
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const IoResult r = sock_read(conn.sock, chunk, sizeof(chunk), ops_);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) return false;  // EOF or error
    metrics_.add_bytes_in(r.bytes);
    conn.decoder.feed(chunk, r.bytes);
    if (conn.decoder.buffered() + conn.unsent() > config_.max_buffered_bytes) {
      return false;  // peer floods faster than we drain: drop it
    }
  }

  const auto arrival = Clock::now();
  for (;;) {
    FrameDecoder::Result decoded = conn.decoder.next();
    if (decoded.status == DecodeStatus::kNeedMoreData) break;
    if (decoded.status != DecodeStatus::kOk || decoded.is_response) {
      // Typed decode failure (or a peer speaking the wrong direction):
      // answer kBadRequest so the peer can log *why*, then drop the
      // connection — after a framing error the stream is garbage.
      metrics_.count_frame_error();
      ResponseFrame reply;
      reply.request_id = decoded.request_id;
      reply.status = WireStatus::kBadRequest;
      encode_response(reply, conn.out);
      metrics_.count_frame_out();
      conn.close_after_flush = true;
      break;
    }

    metrics_.count_frame_in();
    conn.last_activity = arrival;
    RequestFrame& frame = decoded.request;

    // Stats scrapes are answered inline from the registries, not routed
    // through the service queue: they must work even when the queue is
    // saturated (that is exactly when an operator scrapes). Like the
    // dim-mismatch reply below, this jumps the per-connection FIFO ahead
    // of still-pending service requests.
    if (frame.type == FrameType::kStats) {
      ResponseFrame reply;
      reply.request_id = frame.request_id;
      reply.status = WireStatus::kOk;
      reply.epoch = service_->epoch();
      reply.stats = render_stats();
      encode_response(reply, conn.out);
      metrics_.count_frame_out();
      metrics_.count_request();
      continue;
    }

    // Well-framed but unusable for *this* service: wrong interest-space
    // dimension. Answered per-request; the connection stays healthy.
    const std::size_t service_dim = service_->config().dim;
    const bool dim_mismatch =
        (frame.type == FrameType::kAddUsers &&
         frame.users.front().interest.size() != service_dim) ||
        (frame.type == FrameType::kEvaluate && frame.centers.has_value() &&
         frame.centers->dim() != service_dim);
    if (dim_mismatch) {
      ResponseFrame reply;
      reply.request_id = frame.request_id;
      reply.status = WireStatus::kBadRequest;
      reply.epoch = service_->epoch();
      encode_response(reply, conn.out);
      metrics_.count_frame_out();
      continue;
    }

    serve::Request request;
    switch (frame.type) {
      case FrameType::kAddUsers:
        request = serve::Request::add_users(std::move(frame.users));
        break;
      case FrameType::kRemoveUsers:
        request = serve::Request::remove_users(std::move(frame.ids));
        break;
      case FrameType::kQueryPlacement:
        request = serve::Request::query_placement();
        break;
      case FrameType::kEvaluate:
        request = serve::Request::evaluate(std::move(*frame.centers));
        break;
      case FrameType::kResponse:
      case FrameType::kStats:
        continue;  // unreachable: both handled above
    }
    request.deadline = arrival + config_.request_deadline;

    Connection::Pending pending;
    pending.request_id = frame.request_id;
    pending.arrival = arrival;
    pending.future = service_->submit(std::move(request));
    conn.pending.push_back(std::move(pending));
    metrics_.count_request();
  }
  return true;
}

void NetServer::collect_replies(Connection& conn) {
  while (!conn.pending.empty()) {
    Connection::Pending& head = conn.pending.front();
    if (head.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      break;  // keep per-connection response order
    }
    const serve::Response response = head.future.get();

    ResponseFrame reply;
    reply.request_id = head.request_id;
    reply.status = to_wire_status(response.status);
    reply.epoch = response.epoch;
    reply.objective = response.objective;
    if (response.solution.has_value()) {
      reply.centers = response.solution->centers;
    }
    encode_response(reply, conn.out);
    metrics_.count_frame_out();
    if (reply.status == WireStatus::kTimeout) metrics_.count_timeout();

    const double latency = seconds_since(head.arrival);
    metrics_.record_latency(latency);
    trace::SpanCollector::global().record("net.request", latency);
    conn.pending.pop_front();
  }
}

bool NetServer::flush(Connection& conn) {
  while (conn.unsent() > 0) {
    const IoResult r = sock_write(conn.sock, conn.out.data() + conn.out_offset,
                                  conn.unsent(), ops_);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) return false;
    conn.out_offset += r.bytes;
    metrics_.add_bytes_out(r.bytes);
  }
  if (conn.out_offset == conn.out.size()) {
    conn.out.clear();
    conn.out_offset = 0;
  } else if (conn.out_offset > conn.out.size() / 2) {
    conn.out.erase(conn.out.begin(),
                   conn.out.begin() +
                       static_cast<std::ptrdiff_t>(conn.out_offset));
    conn.out_offset = 0;
  }
  return true;
}

std::string NetServer::render_stats() const {
  std::ostringstream out;
  metrics_.registry().write_exposition(out);
  service_->metrics_registry().write_exposition(out);
  trace::SpanCollector::global().registry().write_exposition(out);
  return out.str();
}

void NetServer::close_connection(std::size_t index) {
  trace::SpanCollector::global().record(
      "net.conn", seconds_since(connections_[index]->opened));
  // Gauge first: a peer observes EOF the moment the fd below is closed,
  // and may read the metrics snapshot before this thread runs again.
  metrics_.set_open_connections(connections_.size() - 1);
  connections_[index] = std::move(connections_.back());
  connections_.pop_back();
}

}  // namespace mmph::net
