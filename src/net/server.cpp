#include "mmph/net/server.hpp"

#include <cerrno>
#include <chrono>
#include <deque>
#include <future>
#include <mutex>
#include <sstream>
#include <utility>

#include "mmph/support/assert.hpp"
#include "mmph/trace/span.hpp"

namespace mmph::net {
namespace {

using Clock = std::chrono::steady_clock;

constexpr std::size_t kReadChunk = 64 * 1024;
/// Stop queueing replication frames once a subscriber's unsent backlog
/// reaches this; the stream resumes as the socket drains.
constexpr std::size_t kReplWatermark = 1u << 20;
/// Encoded frames append to the newest write segment until it reaches
/// this size, then a fresh segment starts; flush() gathers segments into
/// one writev. Bounds both per-segment reallocation and iovec count.
constexpr std::size_t kSegmentBytes = 64 * 1024;
/// Max segments gathered into a single writev call.
constexpr int kMaxIov = 64;
/// Max events drained per epoll_wait.
constexpr int kMaxEpollEvents = 128;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

}  // namespace

/// Per-connection state: decoder for inbound bytes, a segmented write
/// queue for outbound frames (flushed with writev), the requests decoded
/// this iteration but not yet submitted (staged), and the FIFO of
/// submitted-but-unanswered requests (responses are encoded in arrival
/// order, so a pipelining client can match replies to requests
/// positionally as well as by id).
struct NetServer::Connection {
  Socket sock;
  std::size_t owner = 0;  ///< index of the one loop allowed to touch this
  FrameDecoder decoder;

  /// Outbound frames, as a queue of buffer segments. out_offset is the
  /// sent prefix of the front segment; out_bytes is the total unsent.
  std::deque<std::vector<std::uint8_t>> outq;
  std::size_t out_offset = 0;
  std::size_t out_bytes = 0;
  bool want_write = false;  ///< EPOLLOUT currently registered

  std::uint32_t ready = 0;  ///< epoll events gathered this iteration

  Clock::time_point opened = Clock::now();
  Clock::time_point last_activity = Clock::now();
  bool close_after_flush = false;

  /// Requests decoded in the current read pass, awaiting one
  /// submit_batch. Parallel arrays (request payload / wire bookkeeping).
  std::vector<serve::Request> staged;
  struct StagedMeta {
    std::uint64_t request_id = 0;
    Clock::time_point arrival;
  };
  std::vector<StagedMeta> staged_meta;

  struct Pending {
    std::uint64_t request_id = 0;
    Clock::time_point arrival;
    std::future<serve::Response> future;
  };
  std::deque<Pending> pending;

  // Replication subscriber state (set by kReplSubscribe; see
  // pump_replication). A non-empty repl_snapshot means a full-store
  // image is mid-stream and ops are held back until it finishes.
  bool repl_subscriber = false;
  std::uint64_t repl_request_id = 0;
  std::uint64_t repl_epoch = 0;  ///< subscriber is synced through here
  std::uint64_t repl_snapshot_epoch = 0;
  std::vector<std::uint8_t> repl_snapshot;  ///< encoded snapshot file
  std::size_t repl_snapshot_offset = 0;

  [[nodiscard]] std::size_t unsent() const noexcept { return out_bytes; }

  /// Segment new frames append to (starts a fresh one at the size cap).
  [[nodiscard]] std::vector<std::uint8_t>& out_tail() {
    if (outq.empty() || outq.back().size() >= kSegmentBytes) {
      outq.emplace_back();
    }
    return outq.back();
  }

  /// Encodes one outbound frame onto the write queue, keeping the
  /// unsent-byte count exact.
  void queue(const ResponseFrame& reply) {
    std::vector<std::uint8_t>& seg = out_tail();
    const std::size_t before = seg.size();
    encode_response(reply, seg);
    out_bytes += seg.size() - before;
  }
  void queue(const ReplFrame& frame) {
    std::vector<std::uint8_t>& seg = out_tail();
    const std::size_t before = seg.size();
    encode_repl(frame, seg);
    out_bytes += seg.size() - before;
  }
};

/// One event loop: epoll + wakeup eventfd, an optional listener, and the
/// connections it exclusively owns. The mailbox is the only cross-loop
/// entry point (handoff mode): another loop deposits an accepted socket
/// under mail_mutex and signals the wakeup; everything else on this
/// struct is touched by the owning thread only.
struct NetServer::Loop {
  std::size_t index = 0;
  SocketOps* ops = nullptr;
  NetMetrics::Loop* met = nullptr;
  EpollSet epoll;
  Wakeup wakeup;
  Socket listener;  ///< valid when this loop owns a listener
  std::vector<std::unique_ptr<Connection>> conns;

  std::mutex mail_mutex;
  std::vector<Socket> mailbox;

  std::size_t next_handoff = 0;  ///< loop 0 only, handoff mode
  std::thread thread;
};

NetServer::NetServer(serve::ServiceConfig service_config,
                     NetServerConfig net_config, par::ThreadPool* pool)
    : config_(std::move(net_config)),
      service_(std::make_unique<serve::PlacementService>(service_config,
                                                         pool)),
      metrics_(config_.loops) {
  MMPH_REQUIRE(config_.loops >= 1 && config_.loops <= 64,
               "NetServer: loops must be in [1, 64]");
  MMPH_REQUIRE(config_.max_connections >= 1,
               "NetServer: max_connections must be >= 1");
  MMPH_REQUIRE(config_.poll_interval.count() >= 1,
               "NetServer: poll_interval must be >= 1ms");
  MMPH_REQUIRE(config_.loop_socket_ops.empty() ||
                   config_.loop_socket_ops.size() == config_.loops,
               "NetServer: loop_socket_ops must be empty or one per loop");
  for (SocketOps* ops : config_.loop_socket_ops) {
    MMPH_REQUIRE(ops != nullptr, "NetServer: loop_socket_ops entries must "
                                 "be non-null");
  }
}

NetServer::~NetServer() { stop(); }

void NetServer::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  try {
    resolved_mode_ = config_.accept_mode;
    if (resolved_mode_ == AcceptMode::kAuto) {
      resolved_mode_ =
          config_.loops > 1 ? AcceptMode::kReusePort : AcceptMode::kHandoff;
    }
    SocketOps& shared_ops = config_.socket_ops != nullptr
                                ? *config_.socket_ops
                                : SocketOps::system();
    loops_.clear();
    for (std::size_t i = 0; i < config_.loops; ++i) {
      auto loop = std::make_unique<Loop>();
      loop->index = i;
      loop->ops = config_.loop_socket_ops.empty()
                      ? &shared_ops
                      : config_.loop_socket_ops[i];
      loop->met = &metrics_.loop(i);
      loops_.push_back(std::move(loop));
    }
    if (resolved_mode_ == AcceptMode::kReusePort) {
      // Every loop binds its own listener on the shared port. The first
      // bind resolves an ephemeral request (port 0) to a concrete port
      // the remaining listeners then join.
      std::uint16_t port = config_.port;
      for (auto& loop : loops_) {
        auto [sock, bound] = tcp_listen(config_.host, port, 64,
                                        /*reuse_port=*/true);
        loop->listener = std::move(sock);
        port = bound;
      }
      port_ = port;
    } else {
      auto [sock, bound] = tcp_listen(config_.host, config_.port);
      loops_.front()->listener = std::move(sock);
      port_ = bound;
    }
  } catch (...) {
    loops_.clear();
    running_.store(false);
    throw;
  }
  // Last-resort barrier: anything the per-connection try/catch in
  // run_loop() cannot attribute to one peer (accept, pump, epoll
  // bookkeeping) stops the server instead of std::terminate'ing the
  // whole process.
  for (auto& loop : loops_) {
    Loop* raw = loop.get();
    raw->thread = std::thread([this, raw] {
      try {
        run_loop(*raw);
      } catch (...) {
        running_.store(false);
      }
    });
  }
}

void NetServer::stop() {
  running_.store(false);
  for (auto& loop : loops_) {
    if (loop) loop->wakeup.signal();
  }
  for (auto& loop : loops_) {
    if (loop && loop->thread.joinable()) loop->thread.join();
  }
  for (auto& loop : loops_) {
    if (!loop) continue;
    while (!loop->conns.empty()) {
      close_connection(*loop, loop->conns.size() - 1);
    }
    loop->listener.close();
  }
  loops_.clear();
  open_total_.store(0);
  service_->stop();
}

void NetServer::run_loop(Loop& loop) {
  loop.epoll.add(loop.wakeup.fd(), EPOLLIN, &loop.wakeup);
  if (loop.listener.valid()) {
    loop.epoll.add(loop.listener.fd(), EPOLLIN, &loop);
  }
  epoll_event events[kMaxEpollEvents];
  while (running_.load(std::memory_order_relaxed)) {
    const int n =
        loop.epoll.wait(events, kMaxEpollEvents,
                        static_cast<int>(config_.poll_interval.count()));
    bool listener_ready = false;
    for (int e = 0; e < n; ++e) {
      void* tag = events[e].data.ptr;
      if (tag == &loop) {
        listener_ready = true;
      } else if (tag == &loop.wakeup) {
        loop.wakeup.drain();
      } else {
        static_cast<Connection*>(tag)->ready |= events[e].events;
      }
    }
    if (listener_ready) accept_pending(loop);
    adopt_mailbox(loop);

    // Read + decode + submit, in fixed (reverse) connection order —
    // epoll readiness only selects *which* connections are visited, never
    // the order, which is what keeps --loops 1 replay deterministic.
    // Walking backwards means close_connection's swap-remove cannot skip
    // an element (the element swapped into a closed slot is always one
    // this pass has already visited or a just-accepted connection with no
    // readiness yet).
    for (std::size_t i = loop.conns.size(); i-- > 0;) {
      Connection& conn = *loop.conns[i];
      const std::uint32_t ready = conn.ready;
      conn.ready = 0;
      if ((ready & (EPOLLERR | EPOLLHUP)) != 0 && (ready & EPOLLIN) == 0) {
        close_connection(loop, i);
        continue;
      }
      // A connection already condemned to close-after-flush only waits
      // for its backlog to drain; nothing further is read from it.
      if (conn.close_after_flush) continue;
      if ((ready & EPOLLIN) == 0) continue;
      bool alive;
      try {
        alive = read_and_stage(loop, conn);
        if (alive) submit_staged(loop, conn);
      } catch (...) {
        // Exception barrier: a throw here (encode limits, allocation)
        // is this connection's problem, not the server's.
        metrics_.count_closed_error();
        alive = false;
      }
      if (!alive) close_connection(loop, i);
    }

    // One synchronous drain answers everything decoded this iteration
    // (and anything a direct in-process submit() queued meanwhile). With
    // several loops the drain serializes on the service internally; each
    // loop's replies come back through the per-request futures no matter
    // which loop's drain processed them.
    while (service_->pump(std::chrono::milliseconds(0)) > 0) {
    }

    const auto now = Clock::now();
    for (std::size_t i = loop.conns.size(); i-- > 0;) {
      Connection& conn = *loop.conns[i];
      bool alive = true;
      try {
        collect_replies(loop, conn);
        pump_replication(loop, conn);
        if (conn.unsent() > 0) alive = flush(loop, conn);
      } catch (...) {
        // future.get() rethrow or encode failure: same barrier as above.
        metrics_.count_closed_error();
        alive = false;
      }
      if (!alive) {
        close_connection(loop, i);
        continue;
      }
      if (conn.close_after_flush && conn.unsent() == 0) {
        metrics_.count_closed_error();
        close_connection(loop, i);
        continue;
      }
      // Idle or wedged (peer neither sends frames nor drains replies
      // for a whole idle window): reclaim the slot. Replication
      // subscribers are exempt — a caught-up replica is legitimately
      // silent for as long as the primary has no churn.
      if (!conn.repl_subscriber && conn.pending.empty() &&
          now - conn.last_activity > config_.idle_timeout) {
        metrics_.count_closed_idle();
        close_connection(loop, i);
        continue;
      }
      // Re-derive write interest: EPOLLOUT is registered only while a
      // backlog exists, so an idle socket costs no spurious wakeups.
      const bool want = conn.unsent() > 0;
      if (want != conn.want_write) {
        conn.want_write = want;
        loop.epoll.mod(conn.sock.fd(),
                       EPOLLIN | (want ? EPOLLOUT : 0u), &conn);
      }
    }
  }
}

void NetServer::accept_pending(Loop& loop) {
  for (;;) {
    Socket sock = tcp_accept(loop.listener, *loop.ops);
    if (!sock.valid()) return;
    if (open_total_.load(std::memory_order_relaxed) >=
        config_.max_connections) {
      // Shed load explicitly: tell the peer why before closing. The
      // write is best-effort — a peer that cannot take ~50 bytes
      // immediately learns of the shed via the close instead.
      ResponseFrame shed;
      shed.status = WireStatus::kOverloaded;
      std::vector<std::uint8_t> bytes;
      encode_response(shed, bytes);
      (void)sock_write(sock, bytes.data(), bytes.size(), *loop.ops);
      metrics_.count_rejected_overloaded();
      continue;
    }
    open_total_.fetch_add(1, std::memory_order_relaxed);
    if (resolved_mode_ == AcceptMode::kHandoff && loops_.size() > 1) {
      const std::size_t target = loop.next_handoff++ % loops_.size();
      if (target != loop.index) {
        Loop& dest = *loops_[target];
        {
          std::lock_guard<std::mutex> lock(dest.mail_mutex);
          dest.mailbox.push_back(std::move(sock));
        }
        dest.wakeup.signal();
        continue;
      }
    }
    adopt_connection(loop, std::move(sock));
  }
}

void NetServer::adopt_mailbox(Loop& loop) {
  if (resolved_mode_ != AcceptMode::kHandoff || loops_.size() == 1) return;
  std::vector<Socket> adopted;
  {
    std::lock_guard<std::mutex> lock(loop.mail_mutex);
    adopted.swap(loop.mailbox);
  }
  for (Socket& sock : adopted) adopt_connection(loop, std::move(sock));
}

void NetServer::adopt_connection(Loop& loop, Socket sock) {
  auto conn = std::make_unique<Connection>();
  conn->sock = std::move(sock);
  conn->owner = loop.index;
  loop.epoll.add(conn->sock.fd(), EPOLLIN, conn.get());
  loop.conns.push_back(std::move(conn));
  loop.met->count_accepted();
  loop.met->set_open_connections(loop.conns.size());
  metrics_.set_open_connections(
      open_total_.load(std::memory_order_relaxed));
}

void NetServer::assert_owner(const Loop& loop, Connection& conn) {
  MMPH_ASSERT(conn.owner == loop.index,
              "connection touched by a loop that does not own it");
  loop.met->count_ownership_check();
}

bool NetServer::read_and_stage(Loop& loop, Connection& conn) {
  assert_owner(loop, conn);
  std::uint8_t chunk[kReadChunk];
  for (;;) {
    const IoResult r = sock_read(conn.sock, chunk, sizeof(chunk), *loop.ops);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) return false;  // EOF or error
    loop.met->add_bytes_in(r.bytes);
    conn.decoder.feed(chunk, r.bytes);
    if (conn.decoder.buffered() + conn.unsent() > config_.max_buffered_bytes) {
      return false;  // peer floods faster than we drain: drop it
    }
  }

  const auto arrival = Clock::now();
  for (;;) {
    FrameDecoder::Result decoded = conn.decoder.next();
    if (decoded.status == DecodeStatus::kNeedMoreData) break;
    if (decoded.status != DecodeStatus::kOk || decoded.is_response ||
        decoded.is_repl) {
      // Typed decode failure (or a peer speaking the wrong direction):
      // answer kBadRequest so the peer can log *why*, then drop the
      // connection — after a framing error the stream is garbage.
      metrics_.count_frame_error();
      ResponseFrame reply;
      reply.request_id = decoded.request_id;
      reply.status = WireStatus::kBadRequest;
      conn.queue(reply);
      loop.met->count_frame_out();
      conn.close_after_flush = true;
      break;
    }

    loop.met->count_frame_in();
    conn.last_activity = arrival;
    RequestFrame& frame = decoded.request;

    // Stats scrapes are answered inline from the registries, not routed
    // through the service queue: they must work even when the queue is
    // saturated (that is exactly when an operator scrapes). Like the
    // dim-mismatch reply below, this jumps the per-connection FIFO ahead
    // of still-pending service requests.
    if (frame.type == FrameType::kStats) {
      ResponseFrame reply;
      reply.request_id = frame.request_id;
      reply.status = WireStatus::kOk;
      reply.epoch = service_->epoch();
      reply.stats = render_stats();
      conn.queue(reply);
      loop.met->count_frame_out();
      loop.met->count_request();
      continue;
    }

    // A replica announcing itself. Answered inline like kStats; from the
    // next pump_replication pass this connection receives the stream.
    // Servers running without a WAL have no log to stream: kBadRequest.
    if (frame.type == FrameType::kReplSubscribe) {
      loop.met->count_request();
      if (service_->wal() == nullptr) {
        ResponseFrame reply;
        reply.request_id = frame.request_id;
        reply.status = WireStatus::kBadRequest;
        reply.epoch = service_->epoch();
        conn.queue(reply);
        loop.met->count_frame_out();
        continue;
      }
      conn.repl_subscriber = true;
      conn.repl_request_id = frame.request_id;
      conn.repl_epoch = frame.have_epoch;
      conn.repl_snapshot.clear();
      conn.repl_snapshot_offset = 0;
      continue;
    }

    // Well-framed but unusable for *this* service: wrong interest-space
    // dimension. Answered per-request; the connection stays healthy.
    const std::size_t service_dim = service_->config().dim;
    const bool dim_mismatch =
        (frame.type == FrameType::kAddUsers &&
         frame.users.front().interest.size() != service_dim) ||
        (frame.type == FrameType::kEvaluate && frame.centers.has_value() &&
         frame.centers->dim() != service_dim);
    if (dim_mismatch) {
      ResponseFrame reply;
      reply.request_id = frame.request_id;
      reply.status = WireStatus::kBadRequest;
      reply.epoch = service_->epoch();
      conn.queue(reply);
      loop.met->count_frame_out();
      continue;
    }

    serve::Request request;
    switch (frame.type) {
      case FrameType::kAddUsers:
        request = serve::Request::add_users(std::move(frame.users));
        break;
      case FrameType::kRemoveUsers:
        request = serve::Request::remove_users(std::move(frame.ids));
        break;
      case FrameType::kQueryPlacement:
        request = serve::Request::query_placement();
        break;
      case FrameType::kEvaluate:
        request = serve::Request::evaluate(std::move(*frame.centers));
        break;
      case FrameType::kResponse:
      case FrameType::kStats:
      case FrameType::kReplSubscribe:
      case FrameType::kReplSnapshot:
      case FrameType::kReplOps:
        continue;  // unreachable: all handled or rejected above
    }
    request.deadline = arrival + config_.request_deadline;
    // Loop-affinity probe: the owning loop's index rides along so the
    // sharded store can report how often a loop's requests land on "its"
    // shard (hint % shards) — a routing-quality signal, never a router.
    request.shard_hint = static_cast<std::uint32_t>(loop.index);

    conn.staged.push_back(std::move(request));
    conn.staged_meta.push_back({frame.request_id, arrival});
    loop.met->count_request();
  }
  return true;
}

void NetServer::submit_staged(Loop& loop, Connection& conn) {
  if (conn.staged.empty()) return;
  assert_owner(loop, conn);
  std::vector<std::future<serve::Response>> futures =
      service_->submit_batch(std::move(conn.staged));
  conn.staged.clear();
  for (std::size_t i = 0; i < futures.size(); ++i) {
    Connection::Pending pending;
    pending.request_id = conn.staged_meta[i].request_id;
    pending.arrival = conn.staged_meta[i].arrival;
    pending.future = std::move(futures[i]);
    conn.pending.push_back(std::move(pending));
  }
  conn.staged_meta.clear();
}

void NetServer::collect_replies(Loop& loop, Connection& conn) {
  assert_owner(loop, conn);
  while (!conn.pending.empty()) {
    Connection::Pending& head = conn.pending.front();
    if (head.future.wait_for(std::chrono::seconds(0)) !=
        std::future_status::ready) {
      break;  // keep per-connection response order
    }
    const serve::Response response = head.future.get();

    ResponseFrame reply;
    reply.request_id = head.request_id;
    reply.status = to_wire_status(response.status);
    reply.epoch = response.epoch;
    reply.objective = response.objective;
    if (response.solution.has_value()) {
      reply.centers = response.solution->centers;
    }
    conn.queue(reply);
    loop.met->count_frame_out();
    if (reply.status == WireStatus::kTimeout) metrics_.count_timeout();

    const double latency = seconds_since(head.arrival);
    metrics_.record_latency(latency);
    trace::SpanCollector::global().record("net.request", latency);
    conn.pending.pop_front();
  }
}

void NetServer::pump_replication(Loop& loop, Connection& conn) {
  if (!conn.repl_subscriber) return;
  wal::WalWriter* wal = service_->wal();
  if (wal == nullptr) return;
  while (conn.unsent() < kReplWatermark) {
    if (!conn.repl_snapshot.empty()) {
      // A full-store image is mid-stream: next chunk.
      const std::size_t remaining =
          conn.repl_snapshot.size() - conn.repl_snapshot_offset;
      const std::size_t n = std::min(remaining, kReplChunkBytes);
      ReplFrame chunk;
      chunk.type = FrameType::kReplSnapshot;
      chunk.request_id = conn.repl_request_id;
      chunk.epoch = conn.repl_snapshot_epoch;
      chunk.flags = static_cast<std::uint8_t>(
          (conn.repl_snapshot_offset == 0 ? kReplChunkFirst : 0) |
          (n == remaining ? kReplChunkLast : 0));
      const auto* base = conn.repl_snapshot.data() + conn.repl_snapshot_offset;
      chunk.blob.assign(base, base + n);
      conn.queue(chunk);
      loop.met->count_frame_out();
      conn.repl_snapshot_offset += n;
      if (n == remaining) {
        conn.repl_snapshot.clear();
        conn.repl_snapshot_offset = 0;
        conn.repl_epoch = conn.repl_snapshot_epoch;
      }
      continue;
    }
    wal::WalWriter::TailResult tail =
        wal->tail_since(conn.repl_epoch, kReplChunkBytes);
    if (!tail.covered) {
      // The subscriber is behind the retained log window; restart it
      // from a full snapshot of the live store.
      wal::WalSnapshot snap = service_->wal_snapshot();
      conn.repl_snapshot_epoch = snap.epoch;
      conn.repl_snapshot.clear();
      conn.repl_snapshot_offset = 0;
      encode_snapshot(snap, conn.repl_snapshot);
      continue;
    }
    if (tail.count == 0) break;  // subscriber is caught up
    ReplFrame ops;
    ops.type = FrameType::kReplOps;
    ops.request_id = conn.repl_request_id;
    ops.epoch = tail.last_epoch;
    ops.count = tail.count;
    ops.blob = std::move(tail.bytes);
    // encode_repl throws past the event loop's per-connection barrier if
    // one record alone exceeds the frame cap (possible only through the
    // direct API with a batch far above net::kMaxBatchCount) — the
    // subscriber is dropped rather than sent a torn stream.
    conn.queue(ops);
    loop.met->count_frame_out();
    conn.repl_epoch = tail.last_epoch;
  }
}

bool NetServer::flush(Loop& loop, Connection& conn) {
  assert_owner(loop, conn);
  while (conn.unsent() > 0) {
    iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t offset = conn.out_offset;
    for (auto& seg : conn.outq) {
      if (iovcnt == kMaxIov) break;
      iov[iovcnt].iov_base = seg.data() + offset;
      iov[iovcnt].iov_len = seg.size() - offset;
      ++iovcnt;
      offset = 0;
    }
    const IoResult r = sock_writev(conn.sock, iov, iovcnt, *loop.ops);
    if (r.status == IoStatus::kWouldBlock) break;
    if (r.status != IoStatus::kOk) return false;
    if (r.bytes == 0) break;  // defensive: no progress, treat as blocked
    loop.met->add_bytes_out(r.bytes);
    conn.out_bytes -= r.bytes;
    std::size_t left = r.bytes;
    while (left > 0) {
      std::vector<std::uint8_t>& front = conn.outq.front();
      const std::size_t avail = front.size() - conn.out_offset;
      if (left >= avail) {
        left -= avail;
        conn.outq.pop_front();
        conn.out_offset = 0;
      } else {
        conn.out_offset += left;
        left = 0;
      }
    }
  }
  return true;
}

std::string NetServer::render_stats() const {
  std::ostringstream out;
  metrics_.registry().write_exposition(out);
  service_->metrics_registry().write_exposition(out);
  if (service_->wal() != nullptr) {
    service_->wal()->registry().write_exposition(out);
  }
  trace::SpanCollector::global().registry().write_exposition(out);
  return out.str();
}

void NetServer::close_connection(Loop& loop, std::size_t index) {
  Connection& conn = *loop.conns[index];
  trace::SpanCollector::global().record("net.conn",
                                        seconds_since(conn.opened));
  loop.epoll.del(conn.sock.fd());
  // Frames decoded before the failure were already accepted into the
  // pipeline: submit them even though their replies have nowhere to go
  // (mutations must not silently vanish once counted as requests).
  if (!conn.staged.empty()) {
    std::vector<std::future<serve::Response>> dropped =
        service_->submit_batch(std::move(conn.staged));
    conn.staged.clear();
    conn.staged_meta.clear();
  }
  open_total_.fetch_sub(1, std::memory_order_relaxed);
  // Gauge first: a peer observes EOF the moment the fd below is closed,
  // and may read the metrics snapshot before this thread runs again.
  metrics_.set_open_connections(
      open_total_.load(std::memory_order_relaxed));
  loop.met->set_open_connections(loop.conns.size() - 1);
  loop.conns[index] = std::move(loop.conns.back());
  loop.conns.pop_back();
}

}  // namespace mmph::net
