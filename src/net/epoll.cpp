#include "mmph/net/epoll.hpp"

#include <sys/eventfd.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace mmph::net {

EpollSet::EpollSet() : fd_(::epoll_create1(EPOLL_CLOEXEC)) {
  if (fd_ < 0) {
    throw NetError(std::string("epoll_create1: ") + std::strerror(errno));
  }
}

EpollSet::~EpollSet() {
  if (fd_ >= 0) ::close(fd_);
}

void EpollSet::add(int fd, std::uint32_t events, void* tag) noexcept {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  (void)::epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev);
}

void EpollSet::mod(int fd, std::uint32_t events, void* tag) noexcept {
  epoll_event ev{};
  ev.events = events;
  ev.data.ptr = tag;
  (void)::epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev);
}

void EpollSet::del(int fd) noexcept {
  (void)::epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr);
}

int EpollSet::wait(epoll_event* out, int cap, int timeout_ms) noexcept {
  const int n = ::epoll_wait(fd_, out, cap, timeout_ms);
  return n < 0 ? 0 : n;  // EINTR (or any wait error): treat as timeout
}

Wakeup::Wakeup() : fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {
  if (fd_ < 0) {
    throw NetError(std::string("eventfd: ") + std::strerror(errno));
  }
}

Wakeup::~Wakeup() {
  if (fd_ >= 0) ::close(fd_);
}

void Wakeup::signal() noexcept {
  const std::uint64_t one = 1;
  // EAGAIN means the counter is already nonzero — the wakeup is pending.
  (void)::write(fd_, &one, sizeof(one));
}

void Wakeup::drain() noexcept {
  std::uint64_t value = 0;
  (void)::read(fd_, &value, sizeof(value));
}

}  // namespace mmph::net
