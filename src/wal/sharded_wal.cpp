#include "mmph/wal/sharded_wal.hpp"

#include <cerrno>
#include <utility>

#include "mmph/support/assert.hpp"

namespace mmph::wal {

std::string shard_wal_dir(const std::string& dir, std::size_t shard,
                          std::size_t shards) {
  MMPH_REQUIRE(shard < shards, "shard_wal_dir: shard out of range");
  if (shards == 1) return dir;
  return dir + "/shard-" + std::to_string(shard);
}

ShardedRecovery recover_sharded(const std::string& dir, std::size_t shards,
                                std::uint16_t dim_hint, FileOps& ops) {
  MMPH_REQUIRE(shards >= 1, "recover_sharded: shards must be >= 1");
  ShardedRecovery out;
  out.shards.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    out.shards.push_back(
        recover(shard_wal_dir(dir, s, shards), dim_hint, ops));
    const RecoveryResult& part = out.shards.back();
    out.global_epoch += part.store.epoch;
    out.rows += part.store.ids.size();
    out.clean = out.clean && part.clean;
    out.dir_found = out.dir_found || part.dir_found;
  }
  if (shards > 1 && !out.dir_found) {
    // No shard dir existed; the base dir itself may still (empty sharded
    // deployment after mkdir but before any write).
    out.dir_found = ops.list(dir).has_value();
  }
  return out;
}

ShardedWal::ShardedWal(WalConfig base, std::size_t shards,
                       const ShardedRecovery& recovered,
                       BarrierFaultHook barrier_hook)
    : barrier_hook_(std::move(barrier_hook)) {
  MMPH_REQUIRE(shards >= 1, "ShardedWal: shards must be >= 1");
  // An empty recovery result means a fresh log set (every shard starts at
  // epoch/lsn zero); a non-empty one must match the shard count exactly.
  MMPH_REQUIRE(recovered.shards.empty() || recovered.shards.size() == shards,
               "ShardedWal: recovery result is for a different shard count");
  FileOps& ops = base.file_ops != nullptr ? *base.file_ops : FileOps::system();
  if (shards > 1) {
    // The per-shard writers mkdir their own subdirs; the base dir is ours.
    if (ops.mkdir(base.dir) < 0 && errno != EEXIST) {
      throw WalError("sharded wal: mkdir " + base.dir + " failed");
    }
  }
  writers_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    WalConfig config = base;
    config.dir = shard_wal_dir(base.dir, s, shards);
    const std::uint64_t base_epoch =
        recovered.shards.empty() ? 0 : recovered.shards[s].store.epoch;
    const std::uint64_t base_lsn =
        recovered.shards.empty() ? 0 : recovered.shards[s].last_lsn;
    writers_.push_back(
        std::make_unique<WalWriter>(std::move(config), base_epoch, base_lsn));
  }
}

void ShardedWal::append(std::size_t s, WalRecord& record) {
  MMPH_REQUIRE(s < writers_.size(), "ShardedWal: shard out of range");
  writers_[s]->append(record);
}

void ShardedWal::commit_all() {
  std::lock_guard<std::mutex> lock(barrier_mutex_);
  for (std::size_t s = 0; s < writers_.size(); ++s) {
    try {
      if (barrier_hook_ && barrier_hook_("wal.barrier.fsync_fail")) {
        throw WalError("wal: injected barrier fsync failure at shard " +
                       std::to_string(s));
      }
      writers_[s]->commit();
    } catch (const WalError&) {
      // Half a barrier is no barrier: shards before s fsync'd, s did not.
      // Nothing appended under this barrier may be acked, so the whole
      // writer set is declared divergent.
      poison_all("group-commit barrier failed at shard " + std::to_string(s));
      throw;
    }
  }
  commit_epoch_.fetch_add(1, std::memory_order_relaxed);
}

bool ShardedWal::wants_snapshot() const {
  for (const auto& w : writers_) {
    if (w->wants_snapshot()) return true;
  }
  return false;
}

bool ShardedWal::failed() const {
  for (const auto& w : writers_) {
    if (w->failed()) return true;
  }
  return false;
}

void ShardedWal::poison_all(const std::string& reason) {
  for (auto& w : writers_) w->poison(reason);
}

WalWriter::TailResult ShardedWal::tail_since(std::size_t s,
                                             std::uint64_t epoch,
                                             std::size_t max_bytes) const {
  MMPH_REQUIRE(s < writers_.size(), "ShardedWal: shard out of range");
  return writers_[s]->tail_since(epoch, max_bytes);
}

}  // namespace mmph::wal
