#include "mmph/wal/file_ops.hpp"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

namespace mmph::wal {
namespace {

/// True when \p path names a file directly inside \p dir.
bool directly_inside(const std::string& dir, const std::string& path) {
  if (path.size() <= dir.size() + 1) return false;
  if (path.compare(0, dir.size(), dir) != 0) return false;
  if (path[dir.size()] != '/') return false;
  return path.find('/', dir.size() + 1) == std::string::npos;
}

}  // namespace

int FileOps::open(const std::string& path, OpenMode mode) {
  int flags = 0;
  switch (mode) {
    case OpenMode::kRead: flags = O_RDONLY; break;
    case OpenMode::kAppend: flags = O_WRONLY | O_CREAT | O_APPEND; break;
    case OpenMode::kTruncate: flags = O_WRONLY | O_CREAT | O_TRUNC; break;
  }
  return ::open(path.c_str(), flags | O_CLOEXEC, 0644);
}

ssize_t FileOps::read(int fd, std::uint8_t* buf, std::size_t cap) {
  return ::read(fd, buf, cap);
}

ssize_t FileOps::write(int fd, const std::uint8_t* buf, std::size_t len) {
  return ::write(fd, buf, len);
}

int FileOps::fsync(int fd) { return ::fsync(fd); }

int FileOps::close(int fd) { return ::close(fd); }

int FileOps::rename(const std::string& from, const std::string& to) {
  return ::rename(from.c_str(), to.c_str());
}

int FileOps::remove(const std::string& path) { return ::unlink(path.c_str()); }

int FileOps::mkdir(const std::string& path) {
  return ::mkdir(path.c_str(), 0755);
}

int FileOps::sync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (fd < 0) return -1;
  const int rc = ::fsync(fd);
  const int saved = errno;
  ::close(fd);
  errno = saved;
  return rc;
}

std::optional<std::vector<std::string>> FileOps::list(const std::string& dir) {
  DIR* handle = ::opendir(dir.c_str());
  if (handle == nullptr) return std::nullopt;
  std::vector<std::string> names;
  while (dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(handle);
  std::sort(names.begin(), names.end());
  return names;
}

FileOps& FileOps::system() noexcept {
  static FileOps instance;
  return instance;
}

// --- MemFileOps -------------------------------------------------------------

int MemFileOps::open(const std::string& path, OpenMode mode) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = files_.find(path);
  if (mode == OpenMode::kRead) {
    if (it == files_.end()) {
      errno = ENOENT;
      return -1;
    }
  } else if (it == files_.end()) {
    it = files_.emplace(path, std::vector<std::uint8_t>{}).first;
  } else if (mode == OpenMode::kTruncate) {
    it->second.clear();
  }
  const int fd = next_fd_++;
  OpenFile file;
  file.path = path;
  file.mode = mode;
  file.pos = mode == OpenMode::kAppend ? it->second.size() : 0;
  open_files_.emplace(fd, std::move(file));
  return fd;
}

ssize_t MemFileOps::read(int fd, std::uint8_t* buf, std::size_t cap) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end() || it->second.mode != OpenMode::kRead) {
    errno = EBADF;
    return -1;
  }
  const auto file = files_.find(it->second.path);
  if (file == files_.end()) {
    errno = EIO;
    return -1;
  }
  const std::vector<std::uint8_t>& bytes = file->second;
  if (it->second.pos >= bytes.size()) return 0;
  const std::size_t n = std::min(cap, bytes.size() - it->second.pos);
  std::copy_n(bytes.begin() + static_cast<std::ptrdiff_t>(it->second.pos), n,
              buf);
  it->second.pos += n;
  return static_cast<ssize_t>(n);
}

ssize_t MemFileOps::write(int fd, const std::uint8_t* buf, std::size_t len) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = open_files_.find(fd);
  if (it == open_files_.end() || it->second.mode == OpenMode::kRead) {
    errno = EBADF;
    return -1;
  }
  const auto file = files_.find(it->second.path);
  if (file == files_.end()) {
    errno = EIO;
    return -1;
  }
  file->second.insert(file->second.end(), buf, buf + len);
  it->second.pos = file->second.size();
  return static_cast<ssize_t>(len);
}

int MemFileOps::fsync(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_files_.count(fd) == 0) {
    errno = EBADF;
    return -1;
  }
  return 0;
}

int MemFileOps::close(int fd) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (open_files_.erase(fd) == 0) {
    errno = EBADF;
    return -1;
  }
  return 0;
}

int MemFileOps::rename(const std::string& from, const std::string& to) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(from);
  if (it == files_.end()) {
    errno = ENOENT;
    return -1;
  }
  files_[to] = std::move(it->second);
  files_.erase(it);
  return 0;
}

int MemFileOps::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (files_.erase(path) == 0) {
    errno = ENOENT;
    return -1;
  }
  return 0;
}

int MemFileOps::mkdir(const std::string& path) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (dir_exists_locked(path)) {
    errno = EEXIST;
    return -1;
  }
  dirs_[path] = true;
  return 0;
}

int MemFileOps::sync_dir(const std::string&) { return 0; }

bool MemFileOps::dir_exists_locked(const std::string& dir) const {
  if (dirs_.count(dir) != 0) return true;
  // Files planted directly (set_file_bytes, pre-dir-tracking tests) imply
  // their directory.
  for (const auto& [path, bytes] : files_) {
    (void)bytes;
    if (directly_inside(dir, path)) return true;
  }
  return false;
}

std::optional<std::vector<std::string>> MemFileOps::list(
    const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!dir_exists_locked(dir)) {
    errno = ENOENT;  // opendir parity: missing dir, not empty dir
    return std::nullopt;
  }
  std::vector<std::string> names;
  for (const auto& [path, bytes] : files_) {
    (void)bytes;
    if (directly_inside(dir, path)) names.push_back(path.substr(dir.size() + 1));
  }
  return names;  // std::map iterates sorted, names stay sorted
}

std::unique_ptr<MemFileOps> MemFileOps::clone() const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto copy = std::make_unique<MemFileOps>();
  copy->files_ = files_;
  copy->dirs_ = dirs_;
  return copy;
}

std::optional<std::vector<std::uint8_t>> MemFileOps::file_bytes(
    const std::string& path) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) return std::nullopt;
  return it->second;
}

void MemFileOps::set_file_bytes(const std::string& path,
                                std::vector<std::uint8_t> bytes) {
  std::lock_guard<std::mutex> lock(mutex_);
  files_[path] = std::move(bytes);
}

bool MemFileOps::truncate_tail(const std::string& path, std::size_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  const auto it = files_.find(path);
  if (it == files_.end()) return false;
  it->second.resize(it->second.size() - std::min(n, it->second.size()));
  return true;
}

std::vector<std::string> MemFileOps::all_paths() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> paths;
  for (const auto& [path, bytes] : files_) {
    (void)bytes;
    paths.push_back(path);
  }
  return paths;
}

}  // namespace mmph::wal
