#include "mmph/wal/writer.hpp"

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <utility>

#include "mmph/support/assert.hpp"

namespace mmph::wal {
namespace {

using Clock = std::chrono::steady_clock;

std::string with_errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

const char* to_string(FsyncPolicy policy) noexcept {
  switch (policy) {
    case FsyncPolicy::kAlways: return "always";
    case FsyncPolicy::kGroupCommit: return "group";
    case FsyncPolicy::kNever: return "never";
  }
  return "FsyncPolicy(?)";
}

std::optional<FsyncPolicy> fsync_policy_from_string(
    std::string_view text) noexcept {
  if (text == "always") return FsyncPolicy::kAlways;
  if (text == "group") return FsyncPolicy::kGroupCommit;
  if (text == "never") return FsyncPolicy::kNever;
  return std::nullopt;
}

std::string segment_file_name(std::uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "wal-%020llu.mmpl",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::string snapshot_file_name(std::uint64_t epoch) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "snap-%020llu.mmps",
                static_cast<unsigned long long>(epoch));
  return buf;
}

std::optional<std::uint64_t> parse_file_epoch(std::string_view name,
                                              std::string_view prefix,
                                              std::string_view suffix) {
  if (name.size() != prefix.size() + 20 + suffix.size()) return std::nullopt;
  if (name.substr(0, prefix.size()) != prefix) return std::nullopt;
  if (name.substr(prefix.size() + 20) != suffix) return std::nullopt;
  std::uint64_t epoch = 0;
  for (std::size_t i = prefix.size(); i < prefix.size() + 20; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return std::nullopt;
    // 20 decimal digits can exceed 2^64; saturate instead of wrapping so
    // a hostile name cannot alias a small epoch.
    if (epoch > (~0ull - static_cast<std::uint64_t>(c - '0')) / 10) {
      return std::nullopt;
    }
    epoch = epoch * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return epoch;
}

WalWriter::WalWriter(WalConfig config, std::uint64_t base_epoch,
                     std::uint64_t base_lsn)
    : config_(std::move(config)),
      ops_(config_.file_ops != nullptr ? *config_.file_ops
                                       : FileOps::system()),
      next_lsn_(base_lsn + 1),
      last_epoch_(base_epoch),
      snapshot_epoch_(base_epoch),
      tail_base_epoch_(base_epoch),
      appends_total_(&registry_.counter(
          "mmph_wal_appends_total", "Records appended to the write-ahead log")),
      bytes_total_(&registry_.counter("mmph_wal_bytes",
                                      "Bytes appended to the write-ahead log")),
      commits_total_(&registry_.counter("mmph_wal_commits_total",
                                        "Group-commit durability barriers")),
      snapshots_total_(&registry_.counter("mmph_wal_snapshots_total",
                                          "Checkpoints written")),
      failures_total_(&registry_.counter(
          "mmph_wal_failures_total", "WAL writes/fsyncs that failed")),
      fsync_seconds_(&registry_.histogram("mmph_wal_fsync_seconds",
                                          "Latency of WAL fsync calls")) {
  MMPH_REQUIRE(!config_.dir.empty(), "WalWriter: dir must be set");
  if (ops_.mkdir(config_.dir) < 0 && errno != EEXIST) {
    throw WalError(with_errno("wal: mkdir " + config_.dir));
  }
  // Truncate, not append: a file with this base epoch can only hold torn
  // garbage from a run that poisoned itself at this exact epoch (recovery
  // replayed everything usable into base_epoch already).
  const std::string path = config_.dir + "/" + segment_file_name(base_epoch);
  fd_ = ops_.open(path, OpenMode::kTruncate);
  if (fd_ < 0) throw WalError(with_errno("wal: open " + path));
  if (ops_.sync_dir(config_.dir) < 0) {
    throw WalError(with_errno("wal: sync_dir " + config_.dir));
  }
}

WalWriter::~WalWriter() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (fd_ >= 0) {
    if (dirty_ && !failed_) (void)ops_.fsync(fd_);
    (void)ops_.close(fd_);
    fd_ = -1;
  }
}

WalError WalWriter::poison_locked(const std::string& reason) {
  failed_ = true;
  failures_total_->add();
  return WalError(reason);
}

void WalWriter::write_all_locked(int fd, const std::uint8_t* data,
                                 std::size_t len, const char* what) {
  std::size_t written = 0;
  while (written < len) {
    const ssize_t n = ops_.write(fd, data + written, len - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw poison_locked(with_errno(std::string("wal: write ") + what));
    }
    if (n == 0) {
      throw poison_locked(std::string("wal: zero-byte write ") + what);
    }
    written += static_cast<std::size_t>(n);
  }
}

void WalWriter::fsync_locked(int fd, const char* what) {
  const auto start = Clock::now();
  int rc;
  do {
    rc = ops_.fsync(fd);
  } while (rc < 0 && errno == EINTR);
  fsync_seconds_->observe(
      std::chrono::duration<double>(Clock::now() - start).count());
  if (rc < 0) {
    throw poison_locked(with_errno(std::string("wal: fsync ") + what));
  }
}

void WalWriter::append(WalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) throw WalError("wal: writer is poisoned");
  record.lsn = next_lsn_;
  record.epoch = last_epoch_ + record.count();

  std::vector<std::uint8_t> bytes;
  encode_record(record, bytes);
  write_all_locked(fd_, bytes.data(), bytes.size(), "segment");
  dirty_ = true;
  if (config_.fsync == FsyncPolicy::kAlways) {
    fsync_locked(fd_, "segment");
    dirty_ = false;
  }

  appends_total_->add();
  bytes_total_->add(bytes.size());
  next_lsn_ += 1;
  last_epoch_ = record.epoch;
  ops_since_snapshot_ += record.count();

  TailEntry entry;
  entry.epoch_after = record.epoch;
  entry.count = record.count();
  tail_bytes_ += bytes.size();
  entry.bytes = std::move(bytes);
  tail_.push_back(std::move(entry));
  while (tail_bytes_ > config_.tail_retain_bytes && !tail_.empty()) {
    tail_bytes_ -= tail_.front().bytes.size();
    tail_base_epoch_ = tail_.front().epoch_after;
    tail_.pop_front();
  }
}

void WalWriter::commit() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) throw WalError("wal: writer is poisoned");
  if (config_.fsync == FsyncPolicy::kGroupCommit && dirty_) {
    fsync_locked(fd_, "segment");
    dirty_ = false;
    commits_total_->add();
  }
}

void WalWriter::write_snapshot(const WalSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (failed_) throw WalError("wal: writer is poisoned");
  MMPH_REQUIRE(snapshot.epoch >= last_epoch_,
               "WalWriter::write_snapshot: snapshot behind the log");

  std::vector<std::uint8_t> bytes;
  encode_snapshot(snapshot, bytes);

  // Temp + fsync + rename + dir sync: a crash at any point leaves either
  // the old snapshot set or the complete new one under its final name.
  const std::string tmp = config_.dir + "/snap.tmp";
  const std::string final_path =
      config_.dir + "/" + snapshot_file_name(snapshot.epoch);
  const int snap_fd = ops_.open(tmp, OpenMode::kTruncate);
  if (snap_fd < 0) throw poison_locked(with_errno("wal: open " + tmp));
  try {
    write_all_locked(snap_fd, bytes.data(), bytes.size(), "snapshot");
    fsync_locked(snap_fd, "snapshot");
  } catch (...) {
    (void)ops_.close(snap_fd);
    throw;
  }
  if (ops_.close(snap_fd) < 0) {
    throw poison_locked(with_errno("wal: close " + tmp));
  }
  if (ops_.rename(tmp, final_path) < 0) {
    throw poison_locked(with_errno("wal: rename " + final_path));
  }
  if (ops_.sync_dir(config_.dir) < 0) {
    throw poison_locked(with_errno("wal: sync_dir " + config_.dir));
  }

  // Roll the segment: records at or below the checkpoint epoch are now
  // redundant, so the fresh segment starts empty at the checkpoint.
  if (fd_ >= 0) (void)ops_.close(fd_);
  fd_ = -1;
  const std::string seg =
      config_.dir + "/" + segment_file_name(snapshot.epoch);
  fd_ = ops_.open(seg, OpenMode::kTruncate);
  if (fd_ < 0) throw poison_locked(with_errno("wal: open " + seg));
  if (ops_.sync_dir(config_.dir) < 0) {
    throw poison_locked(with_errno("wal: sync_dir " + config_.dir));
  }
  dirty_ = false;

  if (snapshot.epoch > last_epoch_) {
    // Installing a foreign (replicated) snapshot: the epoch jumps, so the
    // retained tail no longer chains to the log.
    tail_.clear();
    tail_bytes_ = 0;
    tail_base_epoch_ = snapshot.epoch;
    last_epoch_ = snapshot.epoch;
  }
  snapshot_epoch_ = snapshot.epoch;
  ops_since_snapshot_ = 0;
  snapshots_total_->add();
  prune_locked(snapshot.epoch);
}

void WalWriter::prune_locked(std::uint64_t keep_epoch) {
  const auto names = ops_.list(config_.dir);
  if (!names.has_value()) return;  // pruning is best-effort
  for (const std::string& name : *names) {
    const auto snap_epoch = parse_file_epoch(name, "snap-", ".mmps");
    const auto seg_epoch = parse_file_epoch(name, "wal-", ".mmpl");
    const bool stale = (snap_epoch.has_value() && *snap_epoch < keep_epoch) ||
                       (seg_epoch.has_value() && *seg_epoch < keep_epoch);
    if (stale) (void)ops_.remove(config_.dir + "/" + name);
  }
}

bool WalWriter::wants_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return !failed_ && config_.snapshot_every_ops > 0 &&
         ops_since_snapshot_ >= config_.snapshot_every_ops;
}

void WalWriter::poison(const std::string& reason) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!failed_) (void)poison_locked(reason);
}

bool WalWriter::failed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return failed_;
}

WalWriter::TailResult WalWriter::tail_since(std::uint64_t epoch,
                                            std::size_t max_bytes) const {
  std::lock_guard<std::mutex> lock(mutex_);
  TailResult result;
  if (epoch < tail_base_epoch_) return result;  // fell behind the window
  result.covered = true;
  result.last_epoch = epoch;
  for (const TailEntry& entry : tail_) {
    if (entry.epoch_after <= epoch) continue;
    if (!result.bytes.empty() &&
        result.bytes.size() + entry.bytes.size() > max_bytes) {
      break;
    }
    result.bytes.insert(result.bytes.end(), entry.bytes.begin(),
                        entry.bytes.end());
    result.count += entry.count;
    result.last_epoch = entry.epoch_after;
  }
  return result;
}

std::uint64_t WalWriter::last_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_lsn_ - 1;
}

std::uint64_t WalWriter::last_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return last_epoch_;
}

std::uint64_t WalWriter::snapshot_epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_epoch_;
}

std::uint64_t WalWriter::ops_since_snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ops_since_snapshot_;
}

}  // namespace mmph::wal
