#include "mmph/wal/record.hpp"

#include <array>
#include <bit>
#include <cmath>

#include "mmph/support/assert.hpp"
#include "mmph/wal/codec_detail.hpp"

namespace mmph::wal {
namespace {

/// Table-driven CRC-32C (reflected polynomial 0x82F63B78), built once at
/// static-init time. Software only: portable, and fast enough that the
/// append path is dominated by the write() syscall, not the checksum.
std::array<std::uint32_t, 256> make_crc32c_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc & 1u) != 0 ? (crc >> 1) ^ 0x82F63B78u : crc >> 1;
    }
    table[i] = crc;
  }
  return table;
}

const std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

bool finite(double v) noexcept { return std::isfinite(v); }

}  // namespace

std::uint32_t crc32c(const std::uint8_t* data, std::size_t n,
                     std::uint32_t seed) noexcept {
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < n; ++i) {
    crc = (crc >> 8) ^ kCrc32cTable[(crc ^ data[i]) & 0xFFu];
  }
  return ~crc;
}

void encode_record(const WalRecord& record, std::vector<std::uint8_t>& out) {
  const std::size_t count = record.ids.size();
  MMPH_REQUIRE(count >= 1 && count <= kMaxRecordCount,
               "wal: record count out of range");
  std::size_t payload = count * 8;
  if (record.type == RecordType::kUpsert) {
    MMPH_REQUIRE(record.dim >= 1 && record.dim <= kMaxRecordDim,
                 "wal: record dim out of range");
    MMPH_REQUIRE(record.weights.size() == count,
                 "wal: weights/ids size mismatch");
    MMPH_REQUIRE(record.coords.size() == count * record.dim,
                 "wal: coords/ids size mismatch");
    payload += count * (8 + 8ull * record.dim);
  } else {
    MMPH_REQUIRE(record.type == RecordType::kRemove, "wal: bad record type");
    MMPH_REQUIRE(record.dim == 0, "wal: remove record carries a dim");
    MMPH_REQUIRE(record.weights.empty() && record.coords.empty(),
                 "wal: remove record carries upsert fields");
  }
  MMPH_REQUIRE(payload <= kMaxRecordPayloadBytes,
               "wal: record payload exceeds kMaxRecordPayloadBytes");

  const std::size_t header_start = out.size();
  detail::put_u32(out, kRecordMagic);
  out.push_back(kWalVersion);
  out.push_back(static_cast<std::uint8_t>(record.type));
  detail::put_u16(out, record.dim);
  detail::put_u64(out, record.lsn);
  detail::put_u64(out, record.epoch);
  detail::put_u32(out, static_cast<std::uint32_t>(count));
  detail::put_u32(out, static_cast<std::uint32_t>(payload));
  detail::put_u32(out, 0);  // crc placeholder
  if (record.type == RecordType::kUpsert) {
    for (std::size_t i = 0; i < count; ++i) {
      detail::put_u64(out, record.ids[i]);
      detail::put_f64(out, record.weights[i]);
      for (std::uint16_t d = 0; d < record.dim; ++d) {
        detail::put_f64(out, record.coords[i * record.dim + d]);
      }
    }
  } else {
    for (const std::uint64_t id : record.ids) detail::put_u64(out, id);
  }

  // CRC over everything except the crc field itself: the first 32 header
  // bytes, then the payload.
  const std::uint8_t* base = out.data() + header_start;
  std::uint32_t crc = crc32c(base, kRecordHeaderBytes - 4);
  crc = crc32c(base + kRecordHeaderBytes, payload, crc);
  for (int i = 0; i < 4; ++i) {
    out[header_start + 32 + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(crc >> (8 * i));
  }
}

const char* to_string(RecordDecodeStatus status) noexcept {
  switch (status) {
    case RecordDecodeStatus::kOk: return "kOk";
    case RecordDecodeStatus::kNeedMoreData: return "kNeedMoreData";
    case RecordDecodeStatus::kBadMagic: return "kBadMagic";
    case RecordDecodeStatus::kBadVersion: return "kBadVersion";
    case RecordDecodeStatus::kBadType: return "kBadType";
    case RecordDecodeStatus::kOversized: return "kOversized";
    case RecordDecodeStatus::kBadCrc: return "kBadCrc";
    case RecordDecodeStatus::kMalformed: return "kMalformed";
  }
  return "RecordDecodeStatus(?)";
}

RecordDecodeResult decode_record(const std::uint8_t* data, std::size_t size) {
  RecordDecodeResult result;
  const auto fail = [&](RecordDecodeStatus status) {
    result.status = status;
    return result;
  };
  if (size < kRecordHeaderBytes) return result;  // kNeedMoreData

  detail::Cursor header(data, kRecordHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t type_byte = header.u8();
  const std::uint16_t dim = header.u16();
  const std::uint64_t lsn = header.u64();
  const std::uint64_t epoch = header.u64();
  const std::uint32_t count = header.u32();
  const std::uint32_t payload_len = header.u32();
  const std::uint32_t stored_crc = header.u32();

  if (magic != kRecordMagic) return fail(RecordDecodeStatus::kBadMagic);
  if (version != kWalVersion) return fail(RecordDecodeStatus::kBadVersion);
  if (type_byte != static_cast<std::uint8_t>(RecordType::kUpsert) &&
      type_byte != static_cast<std::uint8_t>(RecordType::kRemove)) {
    return fail(RecordDecodeStatus::kBadType);
  }
  if (payload_len > kMaxRecordPayloadBytes || count > kMaxRecordCount) {
    return fail(RecordDecodeStatus::kOversized);
  }
  if (size < kRecordHeaderBytes + payload_len) return result;  // torn tail

  std::uint32_t crc = crc32c(data, kRecordHeaderBytes - 4);
  crc = crc32c(data + kRecordHeaderBytes, payload_len, crc);
  if (crc != stored_crc) return fail(RecordDecodeStatus::kBadCrc);

  const auto type = static_cast<RecordType>(type_byte);
  if (count == 0) return fail(RecordDecodeStatus::kMalformed);
  if (type == RecordType::kUpsert) {
    if (dim == 0 || dim > kMaxRecordDim) {
      return fail(RecordDecodeStatus::kOversized);
    }
    if (payload_len != static_cast<std::uint64_t>(count) * (16 + 8ull * dim)) {
      return fail(RecordDecodeStatus::kMalformed);
    }
  } else {
    if (dim != 0) return fail(RecordDecodeStatus::kMalformed);
    if (payload_len != 8ull * count) {
      return fail(RecordDecodeStatus::kMalformed);
    }
  }
  // The chain rule "epoch - count = epoch before this record" needs the
  // subtraction to be meaningful.
  if (epoch < count) return fail(RecordDecodeStatus::kMalformed);

  WalRecord record;
  record.type = type;
  record.lsn = lsn;
  record.epoch = epoch;
  record.dim = type == RecordType::kUpsert ? dim : 0;
  record.ids.reserve(count);
  detail::Cursor body(data + kRecordHeaderBytes, payload_len);
  if (type == RecordType::kUpsert) {
    record.weights.reserve(count);
    record.coords.reserve(static_cast<std::size_t>(count) * dim);
    for (std::uint32_t i = 0; i < count; ++i) {
      record.ids.push_back(body.u64());
      const double weight = body.f64();
      if (!finite(weight) || weight <= 0.0) {
        return fail(RecordDecodeStatus::kMalformed);
      }
      record.weights.push_back(weight);
      for (std::uint16_t d = 0; d < dim; ++d) {
        const double c = body.f64();
        if (!finite(c)) return fail(RecordDecodeStatus::kMalformed);
        record.coords.push_back(c);
      }
    }
  } else {
    for (std::uint32_t i = 0; i < count; ++i) {
      record.ids.push_back(body.u64());
    }
  }
  if (!body.ok() || body.remaining() != 0) {
    return fail(RecordDecodeStatus::kMalformed);
  }

  result.record = std::move(record);
  result.consumed = kRecordHeaderBytes + payload_len;
  result.status = RecordDecodeStatus::kOk;
  return result;
}

}  // namespace mmph::wal
