#include "mmph/wal/recovery.hpp"

#include <algorithm>
#include <cerrno>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mmph/wal/record.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::wal {
namespace {

/// Whole-file read through the FileOps seam; nullopt on any error.
std::optional<std::vector<std::uint8_t>> read_file(FileOps& ops,
                                                   const std::string& path) {
  const int fd = ops.open(path, OpenMode::kRead);
  if (fd < 0) return std::nullopt;
  std::vector<std::uint8_t> bytes;
  std::uint8_t chunk[64 * 1024];
  for (;;) {
    const ssize_t n = ops.read(fd, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      (void)ops.close(fd);
      return std::nullopt;
    }
    if (n == 0) break;
    bytes.insert(bytes.end(), chunk, chunk + n);
  }
  (void)ops.close(fd);
  return bytes;
}

using RowIndex = std::unordered_map<std::uint64_t, std::size_t>;

RowIndex build_index(const WalSnapshot& state) {
  RowIndex index;
  index.reserve(state.ids.size());
  for (std::size_t row = 0; row < state.ids.size(); ++row) {
    index.emplace(state.ids[row], row);
  }
  return index;
}

/// Applies one record with InstanceStore's exact semantics (overwrite on
/// duplicate id, swap-remove) so the replayed row order is bitwise what
/// the live store had. Returns false on an impossible record (remove of
/// an absent id) — the log and the state have diverged.
bool apply_record(WalSnapshot& state, RowIndex& index,
                  const WalRecord& record) {
  const std::size_t dim = state.dim;
  if (record.type == RecordType::kUpsert) {
    for (std::size_t i = 0; i < record.ids.size(); ++i) {
      const std::uint64_t id = record.ids[i];
      const auto it = index.find(id);
      if (it != index.end()) {
        const std::size_t row = it->second;
        state.weights[row] = record.weights[i];
        std::copy_n(record.coords.begin() +
                        static_cast<std::ptrdiff_t>(i * dim),
                    dim,
                    state.coords.begin() +
                        static_cast<std::ptrdiff_t>(row * dim));
      } else {
        index.emplace(id, state.ids.size());
        state.ids.push_back(id);
        state.weights.push_back(record.weights[i]);
        state.coords.insert(
            state.coords.end(),
            record.coords.begin() + static_cast<std::ptrdiff_t>(i * dim),
            record.coords.begin() + static_cast<std::ptrdiff_t>((i + 1) * dim));
      }
      ++state.epoch;
    }
    return true;
  }
  for (const std::uint64_t id : record.ids) {
    const auto it = index.find(id);
    if (it == index.end()) return false;  // effective removes only
    const std::size_t row = it->second;
    const std::size_t last = state.ids.size() - 1;
    if (row != last) {
      state.ids[row] = state.ids[last];
      state.weights[row] = state.weights[last];
      std::copy_n(
          state.coords.begin() + static_cast<std::ptrdiff_t>(last * dim), dim,
          state.coords.begin() + static_cast<std::ptrdiff_t>(row * dim));
      index[state.ids[row]] = row;
    }
    state.ids.pop_back();
    state.weights.pop_back();
    state.coords.resize(state.coords.size() - dim);
    index.erase(it);
    ++state.epoch;
  }
  return true;
}

}  // namespace

RecoveryResult recover(const std::string& dir, std::uint16_t dim_hint,
                       FileOps& ops) {
  RecoveryResult result;
  result.store.dim = dim_hint == 0 ? 1 : dim_hint;

  const auto names = ops.list(dir);
  if (!names.has_value()) return result;  // no directory: fresh start
  // An existing-but-empty dir is also a fresh start, but a *witnessed*
  // one: dir_found lets wal-recover and serve-net startup report it
  // distinctly from a dir that never existed.
  result.dir_found = true;

  std::vector<std::pair<std::uint64_t, std::string>> snapshots;
  std::vector<std::pair<std::uint64_t, std::string>> segments;
  for (const std::string& name : *names) {
    if (const auto snap_epoch = parse_file_epoch(name, "snap-", ".mmps")) {
      snapshots.emplace_back(*snap_epoch, dir + "/" + name);
    } else if (const auto seg_epoch = parse_file_epoch(name, "wal-", ".mmpl")) {
      segments.emplace_back(*seg_epoch, dir + "/" + name);
    }
  }
  std::sort(snapshots.begin(), snapshots.end());
  std::sort(segments.begin(), segments.end());

  // 1. SNAPSHOT: newest checkpoint that survives its CRC.
  bool have_dim = dim_hint != 0;
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    const auto bytes = read_file(ops, it->second);
    WalSnapshot snapshot;
    if (bytes.has_value() &&
        decode_snapshot(bytes->data(), bytes->size(), snapshot) ==
            RecordDecodeStatus::kOk &&
        snapshot.epoch == it->first &&
        (!have_dim || snapshot.dim == result.store.dim)) {
      result.store = std::move(snapshot);
      result.snapshot_epoch = result.store.epoch;
      have_dim = true;
      break;
    }
    ++result.snapshots_discarded;
  }

  // 2. REPLAY the segment suffix, chained by epoch.
  RowIndex index = build_index(result.store);
  const auto stop = [&](std::string why) {
    result.clean = false;
    result.detail = std::move(why);
  };
  for (const auto& [base, path] : segments) {
    if (!result.clean) break;
    // A segment whose records all predate the checkpoint (a survived
    // prune victim) is skipped wholesale by the per-record epoch filter;
    // scanning it is still cheap and keeps the logic uniform.
    const auto bytes = read_file(ops, path);
    if (!bytes.has_value()) continue;  // unreadable pre-checkpoint leftover
    ++result.segments_scanned;
    std::size_t offset = 0;
    while (offset < bytes->size()) {
      const RecordDecodeResult decoded =
          decode_record(bytes->data() + offset, bytes->size() - offset);
      if (decoded.status == RecordDecodeStatus::kNeedMoreData) {
        // Torn tail: the crash cut an append short. Never applied, never
        // acked — drop it and let the next segment continue the chain.
        result.torn_bytes_dropped += bytes->size() - offset;
        break;
      }
      if (decoded.status != RecordDecodeStatus::kOk) {
        stop(std::string("corrupt record (") + to_string(decoded.status) +
             ") in " + path);
        break;
      }
      const WalRecord& record = decoded.record;
      offset += decoded.consumed;
      if (record.epoch <= result.store.epoch) {
        ++result.records_skipped;  // checkpoint already covers it
        // Still the newest lsn seen: a writer restarted after recovery
        // must continue past skipped records' lsns too, or a fully
        // checkpointed log would hand out duplicate lsns.
        if (record.lsn > result.last_lsn) result.last_lsn = record.lsn;
        continue;
      }
      if (record.epoch != result.store.epoch + record.count()) {
        stop("broken epoch chain in " + path);
        break;
      }
      if (record.type == RecordType::kUpsert) {
        if (!have_dim && result.store.ids.empty()) {
          result.store.dim = record.dim;
          have_dim = true;
        }
        if (record.dim != result.store.dim) {
          stop("record dimension mismatch in " + path);
          break;
        }
      }
      if (!apply_record(result.store, index, record)) {
        stop("remove of an absent id in " + path);
        break;
      }
      result.last_lsn = record.lsn;
      ++result.records_applied;
    }
  }
  return result;
}

}  // namespace mmph::wal
