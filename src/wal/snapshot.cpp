#include "mmph/wal/snapshot.hpp"

#include <bit>
#include <cmath>

#include "mmph/support/assert.hpp"
#include "mmph/wal/codec_detail.hpp"

namespace mmph::wal {
namespace {

constexpr std::size_t kSnapshotHeaderBytes = 24;

/// FNV-1a over a 64-bit word, fed byte-by-byte (little-endian order, so
/// the digest is platform-independent like the codecs).
std::uint64_t fnv_word(std::uint64_t hash, std::uint64_t word) noexcept {
  for (int shift = 0; shift < 64; shift += 8) {
    hash ^= (word >> shift) & 0xFFu;
    hash *= 0x100000001B3ull;
  }
  return hash;
}

}  // namespace

void encode_snapshot(const WalSnapshot& snapshot,
                     std::vector<std::uint8_t>& out) {
  const std::size_t count = snapshot.ids.size();
  MMPH_REQUIRE(snapshot.dim >= 1 && snapshot.dim <= kMaxRecordDim,
               "wal: snapshot dim out of range");
  MMPH_REQUIRE(snapshot.weights.size() == count,
               "wal: snapshot weights/ids size mismatch");
  MMPH_REQUIRE(snapshot.coords.size() == count * snapshot.dim,
               "wal: snapshot coords/ids size mismatch");

  const std::size_t start = out.size();
  detail::put_u32(out, kSnapshotMagic);
  out.push_back(kWalVersion);
  out.push_back(0);  // reserved
  detail::put_u16(out, snapshot.dim);
  detail::put_u64(out, snapshot.epoch);
  detail::put_u64(out, static_cast<std::uint64_t>(count));
  for (const std::uint64_t id : snapshot.ids) detail::put_u64(out, id);
  for (const double w : snapshot.weights) detail::put_f64(out, w);
  for (const double c : snapshot.coords) detail::put_f64(out, c);
  const std::uint32_t crc = crc32c(out.data() + start, out.size() - start);
  detail::put_u32(out, crc);
}

RecordDecodeStatus decode_snapshot(const std::uint8_t* data, std::size_t size,
                                   WalSnapshot& out) {
  if (size < kSnapshotHeaderBytes + 4) {
    return RecordDecodeStatus::kNeedMoreData;
  }
  detail::Cursor header(data, kSnapshotHeaderBytes);
  const std::uint32_t magic = header.u32();
  const std::uint8_t version = header.u8();
  const std::uint8_t reserved = header.u8();
  const std::uint16_t dim = header.u16();
  const std::uint64_t epoch = header.u64();
  const std::uint64_t count = header.u64();

  if (magic != kSnapshotMagic) return RecordDecodeStatus::kBadMagic;
  if (version != kWalVersion) return RecordDecodeStatus::kBadVersion;
  if (reserved != 0) return RecordDecodeStatus::kMalformed;
  if (dim == 0 || dim > kMaxRecordDim) return RecordDecodeStatus::kOversized;
  // Size math in 64-bit with the count bounded first: a hostile count
  // cannot overflow the expected-size computation.
  const std::uint64_t body = size - kSnapshotHeaderBytes - 4;
  if (count > body / 16) return RecordDecodeStatus::kOversized;
  const std::uint64_t need = count * (16 + 8ull * dim);
  if (body < need) return RecordDecodeStatus::kNeedMoreData;
  if (body != need) return RecordDecodeStatus::kMalformed;
  // A snapshot can only stand in for the store state it claims: count
  // applied elements need at least count epoch ticks.
  if (epoch < count) return RecordDecodeStatus::kMalformed;

  const std::uint32_t crc = crc32c(data, size - 4);
  detail::Cursor tail(data + size - 4, 4);
  if (crc != tail.u32()) return RecordDecodeStatus::kBadCrc;

  WalSnapshot snapshot;
  snapshot.epoch = epoch;
  snapshot.dim = dim;
  snapshot.ids.reserve(count);
  snapshot.weights.reserve(count);
  snapshot.coords.reserve(count * dim);
  detail::Cursor cursor(data + kSnapshotHeaderBytes, need);
  for (std::uint64_t i = 0; i < count; ++i) {
    snapshot.ids.push_back(cursor.u64());
  }
  for (std::uint64_t i = 0; i < count; ++i) {
    const double w = cursor.f64();
    if (!std::isfinite(w) || w <= 0.0) return RecordDecodeStatus::kMalformed;
    snapshot.weights.push_back(w);
  }
  for (std::uint64_t i = 0; i < count * dim; ++i) {
    const double c = cursor.f64();
    if (!std::isfinite(c)) return RecordDecodeStatus::kMalformed;
    snapshot.coords.push_back(c);
  }
  out = std::move(snapshot);
  return RecordDecodeStatus::kOk;
}

std::uint64_t snapshot_digest(const WalSnapshot& snapshot) noexcept {
  std::uint64_t hash = 0xCBF29CE484222325ull;
  hash = fnv_word(hash, snapshot.epoch);
  hash = fnv_word(hash, snapshot.dim);
  hash = fnv_word(hash, snapshot.ids.size());
  for (const std::uint64_t id : snapshot.ids) hash = fnv_word(hash, id);
  for (const double w : snapshot.weights) {
    hash = fnv_word(hash, std::bit_cast<std::uint64_t>(w));
  }
  for (const double c : snapshot.coords) {
    hash = fnv_word(hash, std::bit_cast<std::uint64_t>(c));
  }
  return hash;
}

}  // namespace mmph::wal
