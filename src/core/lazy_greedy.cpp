#include "mmph/core/lazy_greedy.hpp"

#include <optional>
#include <queue>
#include <utility>
#include <vector>

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {
namespace {

struct HeapEntry {
  double gain;        // last-evaluated coverage reward (upper bound now)
  std::size_t index;  // candidate point index
  std::size_t round;  // round in which `gain` was evaluated
};

// Max-heap on gain; ties resolve toward the *lowest* index so the selection
// matches GreedyLocalSolver's ascending-scan tie-breaking.
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.index > b.index;
  }
};

}  // namespace

Solution LazyGreedySolver::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = fresh_residual(problem);
  last_evals_.store(0, std::memory_order_relaxed);

  // Evaluation backends, strongest first: a spatial radius index (per-eval
  // cost O(points-in-ball) instead of O(n)), else an ActiveSet over the
  // blocked kernels (exhausted points compact away). Sums — and therefore
  // center selection — are identical across all three paths: dropped and
  // out-of-ball terms are exact zeros.
  const auto indexed = kernels::IndexedActiveSet::try_make(problem, index_);
  const bool blocked = !indexed && kernels::blocked_enabled();
  std::optional<kernels::ActiveSet> active;
  if (blocked) active.emplace(problem);

  const auto evaluate = [&](std::size_t i) {
    last_evals_.fetch_add(1, std::memory_order_relaxed);
    if (indexed) return indexed->coverage_reward(problem.point(i));
    return blocked ? active->coverage_reward(problem.point(i))
                   : coverage_reward(problem, problem.point(i), sol.residual);
  };

  // First-round scan: every candidate's fresh gain. This O(n^2) pass is
  // the one cost laziness cannot avoid, so it shards across the pool when
  // one was provided (per-slot writes keep the result deterministic).
  const kernels::ParallelEvaluator evaluator(pool_);
  const std::vector<double> gains =
      indexed ? evaluator.map(problem.size(),
                              [&](std::size_t i) {
                                return indexed->coverage_reward(
                                    problem.point(i));
                              })
      : blocked ? evaluator.point_gains(*active)
                : evaluator.point_gains(problem, sol.residual);
  last_evals_.fetch_add(problem.size(), std::memory_order_relaxed);

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    heap.push(HeapEntry{gains[i], i, 1});  // fresh for round 1
  }

  for (std::size_t round = 1; round <= k; ++round) {
    // Pop until the top entry's gain is fresh for this round. Stale gains
    // are upper bounds (submodularity), so a fresh top is globally best.
    HeapEntry top = heap.top();
    while (top.round != round) {
      heap.pop();
      top.gain = evaluate(top.index);
      top.round = round;
      heap.push(top);
      top = heap.top();
    }
    sol.centers.push_back(problem.point(top.index));
    const double g =
        indexed ? indexed->apply_center(problem.point(top.index))
        : blocked
            ? active->apply_center(problem.point(top.index))
            : apply_center(problem, problem.point(top.index), sol.residual);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
    // The chosen entry stays in the heap with a now-stale gain; future
    // re-evaluation yields ~0 marginal gain, which is correct (re-picking
    // an exhausted center is allowed by the paper's formulation).
  }
  if (indexed) {
    indexed->export_residual(sol.residual);
  } else if (blocked) {
    active->export_residual(sol.residual);
  }
  return sol;
}

}  // namespace mmph::core
