#include "mmph/core/lazy_greedy.hpp"

#include <queue>
#include <vector>

#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {
namespace {

struct HeapEntry {
  double gain;        // last-evaluated coverage reward (upper bound now)
  std::size_t index;  // candidate point index
  std::size_t round;  // round in which `gain` was evaluated
};

// Max-heap on gain; ties resolve toward the *lowest* index so the selection
// matches GreedyLocalSolver's ascending-scan tie-breaking.
struct HeapLess {
  bool operator()(const HeapEntry& a, const HeapEntry& b) const noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.index > b.index;
  }
};

}  // namespace

Solution LazyGreedySolver::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = fresh_residual(problem);
  last_evals_ = 0;

  std::priority_queue<HeapEntry, std::vector<HeapEntry>, HeapLess> heap;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const double g = coverage_reward(problem, problem.point(i), sol.residual);
    ++last_evals_;
    heap.push(HeapEntry{g, i, 1});  // fresh for round 1

  }

  for (std::size_t round = 1; round <= k; ++round) {
    // Pop until the top entry's gain is fresh for this round. Stale gains
    // are upper bounds (submodularity), so a fresh top is globally best.
    HeapEntry top = heap.top();
    while (top.round != round) {
      heap.pop();
      top.gain = coverage_reward(problem, problem.point(top.index),
                                 sol.residual);
      ++last_evals_;
      top.round = round;
      heap.push(top);
      top = heap.top();
    }
    sol.centers.push_back(problem.point(top.index));
    const double g =
        apply_center(problem, problem.point(top.index), sol.residual);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
    // The chosen entry stays in the heap with a now-stale gain; future
    // re-evaluation yields ~0 marginal gain, which is correct (re-picking
    // an exhausted center is allowed by the paper's formulation).
  }
  return sol;
}

}  // namespace mmph::core
