#include "mmph/core/objective.hpp"

#include <algorithm>

#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

double objective_value(const Problem& problem, const geo::PointSet& centers) {
  if (centers.empty()) return 0.0;
  MMPH_REQUIRE(centers.dim() == problem.dim(),
               "objective_value: center dimension mismatch");
  double f = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    double s = 0.0;
    for (std::size_t j = 0; j < centers.size(); ++j) {
      s += unit_coverage(problem, centers[j], i);
      if (s >= 1.0) break;  // capped; remaining centers cannot add
    }
    f += problem.weight(i) * std::min(s, 1.0);
  }
  return f;
}

double objective_value(const Problem& problem, const geo::PointSet& candidates,
                       std::span<const std::size_t> chosen) {
  MMPH_REQUIRE(candidates.dim() == problem.dim(),
               "objective_value: candidate dimension mismatch");
  double f = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    double s = 0.0;
    for (std::size_t j : chosen) {
      s += unit_coverage(problem, candidates[j], i);
      if (s >= 1.0) break;
    }
    f += problem.weight(i) * std::min(s, 1.0);
  }
  return f;
}

double marginal_gain(const Problem& problem, const geo::PointSet& centers,
                     geo::ConstVec extra) {
  MMPH_REQUIRE(extra.size() == problem.dim(),
               "marginal_gain: center dimension mismatch");
  double gain = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const double u = unit_coverage(problem, extra, i);
    if (u <= 0.0) continue;
    double s = 0.0;
    for (std::size_t j = 0; j < centers.size(); ++j) {
      s += unit_coverage(problem, centers[j], i);
      if (s >= 1.0) break;
    }
    const double before = std::min(s, 1.0);
    const double after = std::min(s + u, 1.0);
    gain += problem.weight(i) * (after - before);
  }
  return gain;
}

}  // namespace mmph::core
