#include "mmph/core/baselines.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {
namespace {

/// Finishes a Solution from a fixed center list: replays apply_center so
/// round_rewards/total/residual follow the usual accounting.
Solution finalize(const Problem& problem, std::string solver_name,
                  const geo::PointSet& centers) {
  Solution sol;
  sol.solver_name = std::move(solver_name);
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(centers.size());
  sol.residual = fresh_residual(problem);
  for (std::size_t j = 0; j < centers.size(); ++j) {
    const double g = apply_center(problem, centers[j], sol.residual);
    sol.centers.push_back(centers[j]);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

/// Weighted per-dimension median of the cluster members (1-norm update).
void weighted_median_update(const Problem& problem,
                            const std::vector<std::size_t>& members,
                            geo::MutVec center) {
  const std::size_t dim = problem.dim();
  std::vector<std::pair<double, double>> coord_weight(members.size());
  for (std::size_t d = 0; d < dim; ++d) {
    double total = 0.0;
    for (std::size_t m = 0; m < members.size(); ++m) {
      coord_weight[m] = {problem.point(members[m])[d],
                         problem.weight(members[m])};
      total += coord_weight[m].second;
    }
    std::sort(coord_weight.begin(), coord_weight.end());
    double acc = 0.0;
    for (const auto& [coord, weight] : coord_weight) {
      acc += weight;
      if (acc >= 0.5 * total) {
        center[d] = coord;
        break;
      }
    }
  }
}

/// Weighted mean of the cluster members (2-norm and default update).
void weighted_mean_update(const Problem& problem,
                          const std::vector<std::size_t>& members,
                          geo::MutVec center) {
  geo::zero(center);
  double total = 0.0;
  for (std::size_t m : members) {
    geo::add_scaled(center, problem.weight(m), problem.point(m));
    total += problem.weight(m);
  }
  MMPH_ASSERT(total > 0.0, "kmeans: empty cluster in mean update");
  for (double& v : center) v /= total;
}

}  // namespace

Solution RandomSolver::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  rnd::Rng rng(seed_);
  const std::vector<std::size_t> perm = rng.permutation(problem.size());
  geo::PointSet centers(problem.dim());
  centers.reserve(k);
  for (std::size_t j = 0; j < k; ++j) {
    centers.push_back(problem.point(perm[j % perm.size()]));
  }
  return finalize(problem, name(), centers);
}

KMeansSolver::KMeansSolver(std::size_t max_iterations, std::uint64_t seed)
    : max_iterations_(max_iterations), seed_(seed) {
  MMPH_REQUIRE(max_iterations >= 1, "kmeans: need at least one iteration");
}

Solution KMeansSolver::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  const std::size_t n = problem.size();
  const geo::Metric& metric = problem.metric();
  rnd::Rng rng(seed_);

  // --- k-means++ seeding: first center weighted by w, then each next
  // center with probability proportional to w * d(nearest chosen)^2. ---
  geo::PointSet centers(problem.dim());
  centers.reserve(k);
  {
    std::vector<double> pick_w(problem.weights());
    centers.push_back(problem.point(rng.categorical(pick_w)));
    std::vector<double> d2(n);
    while (centers.size() < k) {
      for (std::size_t i = 0; i < n; ++i) {
        double nearest = metric.distance(centers[0], problem.point(i));
        for (std::size_t c = 1; c < centers.size(); ++c) {
          nearest = std::min(
              nearest, metric.distance(centers[c], problem.point(i)));
        }
        d2[i] = problem.weight(i) * nearest * nearest;
      }
      const double total = std::accumulate(d2.begin(), d2.end(), 0.0);
      if (total <= 0.0) {
        // All points coincide with chosen centers: duplicate any point.
        centers.push_back(problem.point(0));
        continue;
      }
      centers.push_back(problem.point(rng.categorical(d2)));
    }
  }

  // --- Lloyd iterations. ---
  std::vector<std::size_t> assignment(n, 0);
  std::vector<std::vector<std::size_t>> members(k);
  for (std::size_t iter = 0; iter < max_iterations_; ++iter) {
    bool changed = false;
    for (auto& m : members) m.clear();
    for (std::size_t i = 0; i < n; ++i) {
      std::size_t best_c = 0;
      double best_d = metric.distance(centers[0], problem.point(i));
      for (std::size_t c = 1; c < k; ++c) {
        const double d = metric.distance(centers[c], problem.point(i));
        if (d < best_d) {
          best_d = d;
          best_c = c;
        }
      }
      if (assignment[i] != best_c) {
        assignment[i] = best_c;
        changed = true;
      }
      members[best_c].push_back(i);
    }
    if (!changed && iter > 0) break;

    for (std::size_t c = 0; c < k; ++c) {
      if (members[c].empty()) {
        // Reseed an empty cluster at the globally farthest point from its
        // assigned center (a standard fix that keeps k centers active).
        double far_d = -1.0;
        std::size_t far_i = 0;
        for (std::size_t i = 0; i < n; ++i) {
          const double d =
              metric.distance(centers[assignment[i]], problem.point(i));
          if (d > far_d) {
            far_d = d;
            far_i = i;
          }
        }
        geo::assign(centers.mutable_point(c), problem.point(far_i));
        continue;
      }
      if (metric.norm() == geo::Norm::kL1) {
        weighted_median_update(problem, members[c], centers.mutable_point(c));
      } else {
        weighted_mean_update(problem, members[c], centers.mutable_point(c));
      }
    }
  }
  return finalize(problem, name(), centers);
}

}  // namespace mmph::core
