#include "mmph/core/round_based.hpp"

#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

RoundBasedSolver::RoundBasedSolver(geo::PointSet candidates)
    : candidates_(std::move(candidates)) {
  MMPH_REQUIRE(!candidates_.empty(),
               "RoundBasedSolver needs at least one candidate center");
}

RoundBasedSolver RoundBasedSolver::over_grid(const Problem& problem,
                                             double pitch, double margin) {
  return RoundBasedSolver(candidates_union(
      candidates_grid_over(problem, pitch, margin),
      candidates_from_points(problem)));
}

void RoundBasedSolver::select_center(const Problem& problem,
                                     std::span<const double> y,
                                     std::span<double> out) const {
  MMPH_REQUIRE(candidates_.dim() == problem.dim(),
               "RoundBasedSolver: candidate dimension mismatch");
  double best = -1.0;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const double g = coverage_reward(problem, candidates_[c], y);
    if (g > best) {  // strict: ties keep the lowest candidate index
      best = g;
      best_c = c;
    }
  }
  geo::assign(out, candidates_[best_c]);
}

}  // namespace mmph::core
