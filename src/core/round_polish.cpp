#include "mmph/core/round_polish.hpp"

#include <vector>

#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

PolishedRoundSolver::PolishedRoundSolver(geo::PointSet candidates,
                                         double initial_step, double min_step)
    : candidates_(std::move(candidates)),
      initial_step_(initial_step),
      min_step_(min_step) {
  MMPH_REQUIRE(!candidates_.empty(),
               "PolishedRoundSolver needs at least one candidate");
  MMPH_REQUIRE(initial_step_ > 0.0, "polish: initial step must be positive");
  MMPH_REQUIRE(min_step_ > 0.0 && min_step_ <= initial_step_,
               "polish: min step must be in (0, initial step]");
}

PolishedRoundSolver PolishedRoundSolver::over_grid(const Problem& problem,
                                                   double pitch) {
  return PolishedRoundSolver(
      candidates_union(candidates_grid_over(problem, pitch),
                       candidates_from_points(problem)),
      pitch);
}

void PolishedRoundSolver::select_center(const Problem& problem,
                                        std::span<const double> y,
                                        std::span<double> out) const {
  MMPH_REQUIRE(candidates_.dim() == problem.dim(),
               "PolishedRoundSolver: candidate dimension mismatch");

  // Stage 1: best grid candidate (as RoundBasedSolver).
  double best = -1.0;
  std::size_t best_c = 0;
  for (std::size_t c = 0; c < candidates_.size(); ++c) {
    const double g = coverage_reward(problem, candidates_[c], y);
    if (g > best) {
      best = g;
      best_c = c;
    }
  }

  // Stage 2: compass pattern search around the winner. Probe +/- step in
  // each coordinate; move to the first strict improvement (deterministic
  // axis order); halve the step when no axis improves.
  std::vector<double> center = geo::to_vector(candidates_[best_c]);
  std::vector<double> probe(center);
  double step = initial_step_;
  while (step >= min_step_) {
    bool improved = false;
    for (std::size_t d = 0; d < center.size() && !improved; ++d) {
      for (const double delta : {step, -step}) {
        probe = center;
        probe[d] += delta;
        const double g = coverage_reward(problem, probe, y);
        if (g > best + 1e-12) {
          best = g;
          center = probe;
          improved = true;
          break;
        }
      }
    }
    if (!improved) step *= 0.5;
  }
  geo::assign(out, center);
}

}  // namespace mmph::core
