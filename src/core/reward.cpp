#include "mmph/core/reward.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/core/kernels.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

std::vector<double> fresh_residual(const Problem& problem) {
  return std::vector<double>(problem.size(), 1.0);
}

double unit_coverage(const Problem& problem, geo::ConstVec center,
                     std::size_t i) {
  const double r = problem.radius();
  double d;
  if (problem.metric().norm() == geo::Norm::kL2) {
    // Hot path: points outside the ball (the vast majority at scale) are
    // rejected on the squared distance and never pay the sqrt. The margin
    // keeps boundary handling identical to the plain distance test.
    const double d2 = geo::dist2_sq(center, problem.point(i));
    if (d2 > r * r * geo::kSquaredSkipMargin) return 0.0;
    d = std::sqrt(d2);
  } else {
    d = problem.metric().distance(center, problem.point(i));
  }
  if (problem.reward_shape() == RewardShape::kBinary) {
    return d <= r ? 1.0 : 0.0;
  }
  const double u = 1.0 - d / r;
  return u > 0.0 ? u : 0.0;
}

double coverage_reward(const Problem& problem, geo::ConstVec center,
                       std::span<const double> y) {
  MMPH_ASSERT(y.size() == problem.size(), "coverage_reward: residual size");
  if (kernels::blocked_enabled()) {
    return kernels::block_coverage_reward(problem, center, y);
  }
  // Per-point reference path, kept for A/B tests and the perf baseline.
  double g = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const double u = unit_coverage(problem, center, i);
    if (u <= 0.0) continue;
    g += problem.weight(i) * std::min(u, y[i]);
  }
  return g;
}

double apply_center(const Problem& problem, geo::ConstVec center,
                    std::span<double> y) {
  MMPH_ASSERT(y.size() == problem.size(), "apply_center: residual size");
  if (kernels::blocked_enabled()) {
    return kernels::block_apply_center(problem, center, y);
  }
  double g = 0.0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const double u = unit_coverage(problem, center, i);
    if (u <= 0.0) continue;
    const double z = std::min(u, y[i]);
    y[i] -= z;
    g += problem.weight(i) * z;
  }
  return g;
}

double single_point_reward(const Problem& problem, std::size_t i,
                           std::span<const double> y) {
  MMPH_ASSERT(i < problem.size(), "single_point_reward: index");
  return problem.weight(i) * y[i];
}

}  // namespace mmph::core
