#include "mmph/core/stochastic_greedy.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

StochasticGreedySolver::StochasticGreedySolver(double epsilon,
                                               std::uint64_t seed)
    : epsilon_(epsilon), seed_(seed) {
  MMPH_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
               "StochasticGreedySolver: epsilon must be in (0, 1)");
}

std::size_t StochasticGreedySolver::sample_size(std::size_t n,
                                                std::size_t k) const {
  const double s = std::ceil(static_cast<double>(n) /
                             static_cast<double>(k) * std::log(1.0 / epsilon_));
  return std::min(n, static_cast<std::size_t>(std::max(1.0, s)));
}

Solution StochasticGreedySolver::solve(const Problem& problem,
                                       std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  const std::size_t n = problem.size();
  const std::size_t s = sample_size(n, k);
  rnd::Rng rng(seed_);

  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = fresh_residual(problem);

  // Optional spatial-index backend: per-candidate evals touch only the
  // points within coverage radius. Bit-identical to the scan path (see
  // indexed_eval.hpp), so the sampled picks are unchanged.
  const auto indexed = kernels::IndexedActiveSet::try_make(problem);

  for (std::size_t j = 0; j < k; ++j) {
    // Sample without replacement via a partial Fisher-Yates over a fresh
    // index array (cheap at these sizes; keeps draws independent of k).
    std::vector<std::size_t> idx(n);
    for (std::size_t i = 0; i < n; ++i) idx[i] = i;
    for (std::size_t i = 0; i < s; ++i) {
      const std::size_t pick = i + static_cast<std::size_t>(rng.uniform_int(
                                       0, static_cast<std::int64_t>(n - i) - 1));
      std::swap(idx[i], idx[pick]);
    }
    // Deterministic tie-break inside the sample: lowest point index wins,
    // matching the paper's rule on the sampled subset.
    std::sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(s));

    double best = -1.0;
    std::size_t best_i = idx[0];
    for (std::size_t t = 0; t < s; ++t) {
      const double g =
          indexed ? indexed->coverage_reward(problem.point(idx[t]))
                  : coverage_reward(problem, problem.point(idx[t]),
                                    sol.residual);
      if (g > best) {
        best = g;
        best_i = idx[t];
      }
    }
    const double g =
        indexed ? indexed->apply_center(problem.point(best_i))
                : apply_center(problem, problem.point(best_i), sol.residual);
    sol.centers.push_back(problem.point(best_i));
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  if (indexed) indexed->export_residual(sol.residual);
  return sol;
}

}  // namespace mmph::core
