#include "mmph/core/budgeted.hpp"

#include <algorithm>

#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

void BudgetedInstance::validate() const {
  MMPH_REQUIRE(problem != nullptr, "budgeted: null problem");
  MMPH_REQUIRE(costs.size() == problem->size(),
               "budgeted: one cost per point required");
  for (double c : costs) {
    MMPH_REQUIRE(c > 0.0, "budgeted: costs must be positive");
  }
  MMPH_REQUIRE(budget > 0.0, "budgeted: budget must be positive");
}

BudgetedSolution budgeted_greedy(const BudgetedInstance& inst) {
  inst.validate();
  const Problem& p = *inst.problem;
  const std::size_t n = p.size();

  // --- Cost-benefit greedy pass. ---
  BudgetedSolution cb;
  {
    std::vector<bool> used(n, false);
    std::vector<double> y = fresh_residual(p);
    for (;;) {
      double best_ratio = 0.0;
      std::size_t best_i = n;
      for (std::size_t i = 0; i < n; ++i) {
        if (used[i] || cb.total_cost + inst.costs[i] > inst.budget) continue;
        const double gain = coverage_reward(p, p.point(i), y);
        const double ratio = gain / inst.costs[i];
        if (ratio > best_ratio) {  // strict: ties keep the lowest index
          best_ratio = ratio;
          best_i = i;
        }
      }
      if (best_i == n || best_ratio <= 0.0) break;
      used[best_i] = true;
      cb.total_cost += inst.costs[best_i];
      cb.total_reward += apply_center(p, p.point(best_i), y);
      cb.chosen.push_back(best_i);
    }
  }

  // --- Best affordable singleton safeguard. ---
  BudgetedSolution single;
  {
    const std::vector<double> fresh(n, 1.0);
    double best_gain = 0.0;
    std::size_t best_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (inst.costs[i] > inst.budget) continue;
      const double gain = coverage_reward(p, p.point(i), fresh);
      if (gain > best_gain) {
        best_gain = gain;
        best_i = i;
      }
    }
    if (best_i != n) {
      single.chosen = {best_i};
      single.total_cost = inst.costs[best_i];
      single.total_reward = best_gain;
    }
  }

  return single.total_reward > cb.total_reward ? single : cb;
}

namespace {

/// Completes a partial selection with the cost-benefit rule.
void greedy_complete(const BudgetedInstance& inst, std::vector<bool>& used,
                     std::vector<double>& y, BudgetedSolution& sol) {
  const Problem& p = *inst.problem;
  const std::size_t n = p.size();
  for (;;) {
    double best_ratio = 0.0;
    std::size_t best_i = n;
    for (std::size_t i = 0; i < n; ++i) {
      if (used[i] || sol.total_cost + inst.costs[i] > inst.budget) continue;
      const double gain = coverage_reward(p, p.point(i), y);
      const double ratio = gain / inst.costs[i];
      if (ratio > best_ratio) {
        best_ratio = ratio;
        best_i = i;
      }
    }
    if (best_i == n || best_ratio <= 0.0) return;
    used[best_i] = true;
    sol.total_cost += inst.costs[best_i];
    sol.total_reward += apply_center(p, p.point(best_i), y);
    sol.chosen.push_back(best_i);
  }
}

/// Recursively fixes every feasible prefix of up to `remaining` more
/// candidates (indices >= start, ascending, so each prefix set is tried
/// once), greedy-completes it, and keeps the best outcome in `best`.
void enumerate_prefixes(const BudgetedInstance& inst, std::size_t start,
                        std::size_t remaining, std::vector<bool>& used,
                        std::vector<double>& y,
                        const BudgetedSolution& partial,
                        BudgetedSolution& best) {
  {
    // Complete the current prefix.
    std::vector<bool> used_copy = used;
    std::vector<double> y_copy = y;
    BudgetedSolution completed = partial;
    greedy_complete(inst, used_copy, y_copy, completed);
    if (completed.total_reward > best.total_reward) best = completed;
  }
  if (remaining == 0) return;
  const Problem& p = *inst.problem;
  for (std::size_t i = start; i < p.size(); ++i) {
    if (used[i] || partial.total_cost + inst.costs[i] > inst.budget) continue;
    std::vector<double> y_next = y;
    BudgetedSolution next = partial;
    used[i] = true;
    next.total_cost += inst.costs[i];
    next.total_reward += apply_center(p, p.point(i), y_next);
    next.chosen.push_back(i);
    enumerate_prefixes(inst, i + 1, remaining - 1, used, y_next, next, best);
    used[i] = false;
  }
}

}  // namespace

BudgetedSolution budgeted_partial_enumeration(const BudgetedInstance& inst,
                                              std::size_t prefix_size) {
  inst.validate();
  MMPH_REQUIRE(prefix_size >= 1, "partial enumeration needs prefix >= 1");
  MMPH_REQUIRE(prefix_size <= 3,
               "partial enumeration beyond prefix 3 is never needed and "
               "prohibitively slow");
  BudgetedSolution best;
  std::vector<bool> used(inst.problem->size(), false);
  std::vector<double> y = fresh_residual(*inst.problem);
  const BudgetedSolution empty;
  enumerate_prefixes(inst, 0, prefix_size, used, y, empty, best);
  return best;
}

namespace {

void enumerate(const BudgetedInstance& inst, std::size_t i,
               std::vector<std::size_t>& chosen, std::vector<double>& y,
               double cost, double reward, BudgetedSolution& best) {
  if (reward > best.total_reward) {
    best.total_reward = reward;
    best.total_cost = cost;
    best.chosen = chosen;
  }
  if (i >= inst.problem->size()) return;
  // Skip i.
  enumerate(inst, i + 1, chosen, y, cost, reward, best);
  // Take i if affordable.
  if (cost + inst.costs[i] <= inst.budget) {
    std::vector<double> y2 = y;
    const double gain =
        apply_center(*inst.problem, inst.problem->point(i), y2);
    chosen.push_back(i);
    enumerate(inst, i + 1, chosen, y2, cost + inst.costs[i], reward + gain,
              best);
    chosen.pop_back();
  }
}

}  // namespace

BudgetedSolution budgeted_exhaustive(const BudgetedInstance& inst) {
  inst.validate();
  MMPH_REQUIRE(inst.problem->size() <= 24,
               "budgeted_exhaustive: instance too large (n > 24)");
  BudgetedSolution best;
  std::vector<std::size_t> chosen;
  std::vector<double> y = fresh_residual(*inst.problem);
  enumerate(inst, 0, chosen, y, 0.0, 0.0, best);
  return best;
}

}  // namespace mmph::core
