#include "mmph/core/indexed_reward.hpp"

#include <algorithm>

#include "mmph/core/kernels.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

IndexedProblem::IndexedProblem(const Problem& problem)
    : problem_(problem), grid_(problem.points(), problem.radius()) {}

double IndexedProblem::coverage_reward(geo::ConstVec center,
                                       std::span<const double> y) const {
  MMPH_ASSERT(y.size() == problem_.size(), "indexed coverage: residual size");
  double g = 0.0;
  if (kernels::blocked_enabled()) {
    // Each cell's CSR slice feeds the index-list block kernel; the kernel
    // accumulates term by term onto the running sum, so the association
    // matches the per-point loop over the same visit order exactly.
    grid_.for_each_cell_span(
        center, problem_.radius(), [&](std::span<const std::size_t> items) {
          kernels::block_coverage_reward(problem_, center, y, items, g);
        });
    return g;
  }
  grid_.for_each_in_box(center, problem_.radius(), [&](std::size_t i) {
    const double u = unit_coverage(problem_, center, i);
    if (u <= 0.0) return;
    g += problem_.weight(i) * std::min(u, y[i]);
  });
  return g;
}

double IndexedProblem::apply_center(geo::ConstVec center,
                                    std::span<double> y) const {
  MMPH_ASSERT(y.size() == problem_.size(), "indexed apply: residual size");
  double g = 0.0;
  if (kernels::blocked_enabled()) {
    grid_.for_each_cell_span(
        center, problem_.radius(), [&](std::span<const std::size_t> items) {
          kernels::block_apply_center(problem_, center, y, items, g);
        });
    return g;
  }
  grid_.for_each_in_box(center, problem_.radius(), [&](std::size_t i) {
    const double u = unit_coverage(problem_, center, i);
    if (u <= 0.0) return;
    const double z = std::min(u, y[i]);
    y[i] -= z;
    g += problem_.weight(i) * z;
  });
  return g;
}

namespace {

/// One indexed new-center walk (see GreedyComplexSolver::walk_from_seed for
/// the un-indexed reference semantics).
void indexed_walk(const Problem& problem, const IndexedProblem& indexed,
                  std::span<const double> y, std::size_t seed,
                  geo::L1CenterRule l1_rule, std::vector<double>& center,
                  double& reward) {
  const std::size_t n = problem.size();
  geo::PointSet accumulated(problem.dim());
  accumulated.push_back(problem.point(seed));
  std::vector<bool> in_set(n, false);
  in_set[seed] = true;

  geo::assign(center, problem.point(seed));
  reward = indexed.coverage_reward(center, y);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // (2) heaviest remaining point the current disk rewards; explicit
    // (value, index) comparison keeps the paper's lowest-index tie-break
    // independent of the grid's cell visit order.
    double best_w = 0.0;
    std::size_t best_j = n;
    indexed.grid().for_each_in_box(
        center, problem.radius(), [&](std::size_t j) {
          if (in_set[j]) return;
          const double u = unit_coverage(problem, center, j);
          if (u <= 0.0) return;
          const double wz = problem.weight(j) * std::min(u, y[j]);
          if (wz > best_w || (wz == best_w && j < best_j)) {
            best_w = wz;
            best_j = j;
          }
        });
    if (best_j == n || best_w <= 0.0) return;

    // (4) recenter on the smallest ball covering D plus j.
    accumulated.push_back(problem.point(best_j));
    const geo::Ball ball =
        geo::smallest_enclosing(accumulated, problem.metric(), l1_rule);

    // (5) accept only an improving move.
    const double candidate_reward = indexed.coverage_reward(ball.center, y);
    if (candidate_reward <= reward) return;
    in_set[best_j] = true;
    center = ball.center;
    reward = candidate_reward;
  }
}

}  // namespace

Solution IndexedGreedyComplexSolver::solve(const Problem& problem,
                                           std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  const IndexedProblem indexed(problem);

  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = fresh_residual(problem);

  std::vector<double> walk_center(problem.dim());
  for (std::size_t j = 0; j < k; ++j) {
    double best = -1.0;
    std::vector<double> best_center(problem.dim());
    for (std::size_t seed = 0; seed < problem.size(); ++seed) {
      double reward = 0.0;
      indexed_walk(problem, indexed, sol.residual, seed, l1_rule_,
                   walk_center, reward);
      if (reward > best) {  // strict: ties keep the lowest seed index
        best = reward;
        best_center = walk_center;
      }
    }
    const double g = indexed.apply_center(best_center, sol.residual);
    sol.centers.push_back(best_center);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

Solution IndexedGreedyLocalSolver::solve(const Problem& problem,
                                         std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  const IndexedProblem indexed(problem);

  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = fresh_residual(problem);

  for (std::size_t j = 0; j < k; ++j) {
    double best = -1.0;
    std::size_t best_i = 0;
    for (std::size_t i = 0; i < problem.size(); ++i) {
      const double g = indexed.coverage_reward(problem.point(i), sol.residual);
      if (g > best) {  // strict: ties keep the lowest index
        best = g;
        best_i = i;
      }
    }
    const double g =
        indexed.apply_center(problem.point(best_i), sol.residual);
    sol.centers.push_back(problem.point(best_i));
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

}  // namespace mmph::core
