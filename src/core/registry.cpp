#include "mmph/core/registry.hpp"

#include "mmph/core/baselines.hpp"
#include "mmph/core/exhaustive.hpp"
#include "mmph/core/greedy_complex.hpp"
#include "mmph/core/greedy_local.hpp"
#include "mmph/core/greedy_simple.hpp"
#include "mmph/core/indexed_reward.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/local_search.hpp"
#include "mmph/core/round_based.hpp"
#include "mmph/core/round_polish.hpp"
#include "mmph/core/sieve_streaming.hpp"
#include "mmph/core/stochastic_greedy.hpp"
#include "mmph/support/error.hpp"

namespace mmph::core {

std::vector<std::string> solver_names() {
  return {"greedy1",         "greedy2",       "greedy2-lazy",
          "greedy2-indexed", "greedy2-stoch", "greedy2+ls",
          "greedy3",         "greedy4",       "exhaustive",
          "exhaustive-points", "random",      "kmeans",
          "sieve",           "greedy4-indexed",
          "greedy1+polish"};
}

std::unique_ptr<Solver> make_solver(const std::string& name,
                                    const Problem& problem,
                                    const SolverConfig& config) {
  if (name == "greedy1") {
    return std::make_unique<RoundBasedSolver>(
        RoundBasedSolver::over_grid(problem, config.grid_pitch));
  }
  if (name == "greedy1+polish") {
    return std::make_unique<PolishedRoundSolver>(
        PolishedRoundSolver::over_grid(problem, config.grid_pitch));
  }
  if (name == "greedy2") {
    return std::make_unique<GreedyLocalSolver>();
  }
  if (name == "greedy2-lazy") {
    return std::make_unique<LazyGreedySolver>();
  }
  if (name == "greedy2-indexed") {
    return std::make_unique<IndexedGreedyLocalSolver>();
  }
  if (name == "greedy2-stoch") {
    return std::make_unique<StochasticGreedySolver>();
  }
  if (name == "greedy2+ls") {
    return std::make_unique<LocalSearchSolver>(
        LocalSearchSolver::greedy2_over_grid(problem, config.grid_pitch));
  }
  if (name == "greedy3") {
    return std::make_unique<GreedySimpleSolver>();
  }
  if (name == "greedy4-indexed") {
    return std::make_unique<IndexedGreedyComplexSolver>(
        config.l1_exact_center ? geo::L1CenterRule::kExactIfPossible
                               : geo::L1CenterRule::kPaperProjection);
  }
  if (name == "greedy4") {
    return std::make_unique<GreedyComplexSolver>(
        config.l1_exact_center ? geo::L1CenterRule::kExactIfPossible
                               : geo::L1CenterRule::kPaperProjection);
  }
  if (name == "sieve") {
    return std::make_unique<SieveStreamingSolver>();
  }
  if (name == "random") {
    return std::make_unique<RandomSolver>();
  }
  if (name == "kmeans") {
    return std::make_unique<KMeansSolver>();
  }
  if (name == "exhaustive") {
    return std::make_unique<ExhaustiveSolver>(
        ExhaustiveSolver::over_grid_and_points(problem, config.grid_pitch));
  }
  if (name == "exhaustive-points") {
    return std::make_unique<ExhaustiveSolver>(
        ExhaustiveSolver::over_points(problem));
  }
  throw InvalidArgument("unknown solver name: '" + name + "'");
}

}  // namespace mmph::core
