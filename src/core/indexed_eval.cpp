#include "mmph/core/indexed_eval.hpp"

#include <algorithm>

#include "mmph/support/assert.hpp"

namespace mmph::core::kernels {

namespace {

[[nodiscard]] bool should_index(IndexMode mode, const Problem& problem) {
  switch (mode) {
    case IndexMode::kNone:
      return false;
    case IndexMode::kGrid:
      return problem.size() > 0;
    case IndexMode::kAuto:
      return auto_index_profitable(problem);
  }
  return false;
}

}  // namespace

bool auto_index_profitable(const Problem& problem) {
  if (problem.size() < kAutoIndexMinPoints) return false;
  if (problem.dim() > spatial::kGridMaxDim) return false;
  // Estimate the population fraction a query gathers: the 3^dim cell
  // neighborhood is an L-inf box of side 3r, so under a roughly uniform
  // spread the visited fraction is the volume ratio against the bounding
  // box. Degenerate extents (all points on a hyperplane) contribute
  // factor 1 — the query spans that axis entirely.
  const geo::Box box = problem.points().bounding_box();
  const double query_side = 3.0 * problem.radius();
  double fraction = 1.0;
  for (std::size_t d = 0; d < box.dim(); ++d) {
    const double extent = box.hi[d] - box.lo[d];
    if (extent > query_side) fraction *= query_side / extent;
  }
  return fraction <= kAutoMaxQueryFraction;
}

std::unique_ptr<IndexedActiveSet> IndexedActiveSet::try_make(
    const Problem& problem) {
  if (!should_index(index_mode(), problem)) return nullptr;
  auto index = spatial::make_index(problem.points(), problem.radius(),
                                   problem.metric());
  return std::unique_ptr<IndexedActiveSet>(
      new IndexedActiveSet(problem, std::move(index)));
}

std::unique_ptr<IndexedActiveSet> IndexedActiveSet::try_make(
    const Problem& problem, spatial::SpatialIndex* shared) {
  const IndexMode mode = index_mode();
  if (mode == IndexMode::kNone) return nullptr;
  if (shared != nullptr && shared->size() == problem.size() &&
      shared->dim() == problem.dim() && shared->radius() == problem.radius() &&
      problem.size() > 0) {
    return std::unique_ptr<IndexedActiveSet>(
        new IndexedActiveSet(problem, shared));
  }
  return try_make(problem);
}

IndexedActiveSet::IndexedActiveSet(const Problem& problem,
                                   std::unique_ptr<spatial::SpatialIndex> owned)
    : problem_(problem),
      owned_(std::move(owned)),
      index_(owned_.get()),
      residual_(problem.size(), 1.0),
      active_(problem.size()) {}

IndexedActiveSet::IndexedActiveSet(const Problem& problem,
                                   spatial::SpatialIndex* shared)
    : problem_(problem),
      owned_(nullptr),
      index_(shared),
      residual_(problem.size(), 1.0),
      active_(problem.size()) {
  // A lent index may carry masks from the previous solve; every residual
  // starts at 1 here, so every point is live again.
  index_->unmask_all();
}

double IndexedActiveSet::coverage_reward(geo::ConstVec center) const {
  thread_local std::vector<std::size_t> scratch;
  index_->query(center, scratch);
  double g = 0.0;
  block_coverage_reward(problem_, center, residual_, scratch, g);
  return g;
}

double IndexedActiveSet::apply_center(geo::ConstVec center) {
  thread_local std::vector<std::size_t> scratch;
  index_->query(center, scratch);
  double g = 0.0;
  block_apply_center(problem_, center, residual_, scratch, g);
  for (const std::size_t id : scratch) {
    if (residual_[id] == 0.0 && !index_->masked(id)) {
      index_->mask(id);
      --active_;
    }
  }
  return g;
}

void IndexedActiveSet::export_residual(std::span<double> y) const {
  MMPH_ASSERT(y.size() == residual_.size(),
              "IndexedActiveSet: export size mismatch");
  std::copy(residual_.begin(), residual_.end(), y.begin());
}

}  // namespace mmph::core::kernels
