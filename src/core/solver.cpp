#include "mmph/core/solver.hpp"

#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

Solution RoundSolverBase::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.round_rewards.reserve(k);
  sol.residual = fresh_residual(problem);

  std::vector<double> center(problem.dim());
  for (std::size_t j = 0; j < k; ++j) {
    select_center(problem, sol.residual, center);
    const double g = apply_center(problem, center, sol.residual);
    sol.centers.push_back(center);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

}  // namespace mmph::core
