#include "mmph/core/solver.hpp"

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

Solution RoundSolverBase::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.round_rewards.reserve(k);
  sol.residual = fresh_residual(problem);

  // Solvers that opted in evaluate through a spatial radius index (subject
  // to kernels::index_mode()); selections are bit-identical to the scan
  // path. If a round declines, the residual is exported and the loop
  // continues on the plain path.
  std::unique_ptr<kernels::IndexedActiveSet> indexed;
  if (supports_indexed_scan()) {
    indexed = kernels::IndexedActiveSet::try_make(problem);
  }

  std::vector<double> center(problem.dim());
  for (std::size_t j = 0; j < k; ++j) {
    if (indexed && !indexed_select(problem, *indexed, center)) {
      indexed->export_residual(sol.residual);
      indexed.reset();
    }
    if (!indexed) select_center(problem, sol.residual, center);
    const double g = indexed ? indexed->apply_center(center)
                             : apply_center(problem, center, sol.residual);
    sol.centers.push_back(center);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  if (indexed) indexed->export_residual(sol.residual);
  return sol;
}

}  // namespace mmph::core
