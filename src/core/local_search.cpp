#include "mmph/core/local_search.hpp"

#include "mmph/core/greedy_local.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/swap_evaluator.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

LocalSearchSolver::LocalSearchSolver(std::shared_ptr<const Solver> base,
                                     geo::PointSet candidates,
                                     std::size_t max_sweeps)
    : base_(std::move(base)),
      candidates_(std::move(candidates)),
      max_sweeps_(max_sweeps) {
  MMPH_REQUIRE(base_ != nullptr, "LocalSearchSolver needs a base solver");
  MMPH_REQUIRE(!candidates_.empty(),
               "LocalSearchSolver needs swap candidates");
  MMPH_REQUIRE(max_sweeps_ >= 1, "LocalSearchSolver needs max_sweeps >= 1");
}

LocalSearchSolver LocalSearchSolver::greedy2_over_grid(const Problem& problem,
                                                       double pitch) {
  return LocalSearchSolver(
      std::make_shared<GreedyLocalSolver>(),
      candidates_union(candidates_grid_over(problem, pitch),
                       candidates_from_points(problem)));
}

std::string LocalSearchSolver::name() const {
  return base_->name() + "+ls";
}

Solution LocalSearchSolver::solve(const Problem& problem,
                                  std::size_t k) const {
  MMPH_REQUIRE(candidates_.dim() == problem.dim(),
               "LocalSearchSolver: candidate dimension mismatch");
  Solution sol = base_->solve(problem, k);
  last_swaps_ = 0;

  // First-improvement sweeps over (center j, candidate c) pairs, using the
  // incremental evaluator so each trial is O(n) instead of O(k n).
  constexpr double kMinGain = 1e-9;  // reject float-noise "improvements"
  SwapEvaluator evaluator(problem, sol.centers);
  for (std::size_t sweep = 0; sweep < max_sweeps_; ++sweep) {
    bool improved = false;
    for (std::size_t j = 0; j < evaluator.centers().size(); ++j) {
      for (std::size_t c = 0; c < candidates_.size(); ++c) {
        const double value = evaluator.value_with_swap(j, candidates_[c]);
        if (value > evaluator.current_value() + kMinGain) {
          evaluator.commit_swap(j, candidates_[c]);
          improved = true;
          ++last_swaps_;
        }
      }
    }
    if (!improved) break;
  }
  sol.centers = evaluator.centers();

  // Rebuild the per-round accounting for the final center sequence.
  sol.solver_name = name();
  sol.residual = fresh_residual(problem);
  sol.round_rewards.clear();
  sol.total_reward = 0.0;
  for (std::size_t j = 0; j < sol.centers.size(); ++j) {
    const double g = apply_center(problem, sol.centers[j], sol.residual);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

}  // namespace mmph::core
