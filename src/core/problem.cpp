#include "mmph/core/problem.hpp"

#include <numeric>

#include "mmph/support/assert.hpp"

namespace mmph::core {

const char* reward_shape_name(RewardShape shape) {
  switch (shape) {
    case RewardShape::kLinear:
      return "linear";
    case RewardShape::kBinary:
      return "binary";
  }
  return "?";
}

Problem::Problem(geo::PointSet points, std::vector<double> weights,
                 double radius, geo::Metric metric, RewardShape shape)
    : points_(std::move(points)),
      weights_(std::move(weights)),
      radius_(radius),
      metric_(metric),
      shape_(shape),
      total_weight_(0.0) {
  MMPH_REQUIRE(!points_.empty(), "Problem needs at least one point");
  MMPH_REQUIRE(points_.size() == weights_.size(),
               "Problem: one weight per point required");
  MMPH_REQUIRE(radius_ > 0.0, "Problem: radius must be positive");
  for (double w : weights_) {
    MMPH_REQUIRE(w > 0.0, "Problem: weights must be positive");
  }
  total_weight_ = std::accumulate(weights_.begin(), weights_.end(), 0.0);
}

Problem Problem::from_workload(rnd::Workload workload, double radius,
                               geo::Metric metric, RewardShape shape) {
  return Problem(std::move(workload.points), std::move(workload.weights),
                 radius, metric, shape);
}

}  // namespace mmph::core
