#include "mmph/core/sieve_streaming.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {
namespace {

/// One sieve: a candidate solution built greedily against its threshold.
struct Sieve {
  double threshold = 0.0;   // the OPT guess v
  double value = 0.0;       // f(S) so far
  std::vector<std::size_t> chosen;
  std::vector<double> residual;
};

}  // namespace

SieveStreamingSolver::SieveStreamingSolver(double epsilon)
    : epsilon_(epsilon) {
  MMPH_REQUIRE(epsilon > 0.0 && epsilon < 1.0,
               "SieveStreamingSolver: epsilon must be in (0, 1)");
}

Solution SieveStreamingSolver::solve(const Problem& problem,
                                     std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  const std::size_t n = problem.size();

  // Pass 0 (allowed by the algorithm as running max; we precompute it for
  // clarity): m = max singleton value. OPT is in [m, k*m].
  double m = 0.0;
  {
    const std::vector<double> fresh(n, 1.0);
    for (std::size_t i = 0; i < n; ++i) {
      m = std::max(m, coverage_reward(problem, problem.point(i), fresh));
    }
  }
  MMPH_ASSERT(m > 0.0, "sieve: max singleton value must be positive");

  // Thresholds (1+eps)^j covering [m, 2*k*m].
  std::vector<Sieve> sieves;
  {
    const double lo = m;
    const double hi = 2.0 * static_cast<double>(k) * m;
    double v = lo;
    while (v <= hi) {
      Sieve s;
      s.threshold = v;
      s.residual.assign(n, 1.0);
      sieves.push_back(std::move(s));
      v *= (1.0 + epsilon_);
    }
  }
  last_sieves_ = sieves.size();

  // One pass over the stream of candidate centers (points in arrival
  // order). Each sieve admits the point iff its marginal gain clears the
  // sieve's pro-rata bar.
  for (std::size_t i = 0; i < n; ++i) {
    for (Sieve& s : sieves) {
      if (s.chosen.size() >= k) continue;
      const double gain =
          coverage_reward(problem, problem.point(i), s.residual);
      const double bar = (s.threshold / 2.0 - s.value) /
                         static_cast<double>(k - s.chosen.size());
      if (gain >= bar && gain > 0.0) {
        s.value += apply_center(problem, problem.point(i), s.residual);
        s.chosen.push_back(i);
      }
    }
  }

  // Best sieve wins; ties toward the smaller threshold (deterministic).
  const Sieve* best = &sieves.front();
  for (const Sieve& s : sieves) {
    if (s.value > best->value) best = &s;
  }

  // Materialize the Solution by replaying the chosen centers.
  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(best->chosen.size());
  sol.residual = fresh_residual(problem);
  for (std::size_t i : best->chosen) {
    const double g = apply_center(problem, problem.point(i), sol.residual);
    sol.centers.push_back(problem.point(i));
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

}  // namespace mmph::core
