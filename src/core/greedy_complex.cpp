#include "mmph/core/greedy_complex.hpp"

#include <algorithm>
#include <vector>

#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"

namespace mmph::core {

// One walk of the paper's new-center procedure, seeded at input point
// `seed`. State: the accumulated point set D (initially {x_seed}) and the
// current center (initially x_seed). Each step:
//   (2) pick the heaviest remaining point j by the reward the current disk
//       would give it, w_j * z_j with z_j = min([1 - d(c, x_j)/r]_+, y_j)
//       (the paper's "max w_j z_j");
//   (3) if no remaining point earns anything from the disk — i.e. the
//       heaviest j "is outside D" — stop;
//   (4) otherwise add j to D and recenter on the smallest ball covering D
//       (Welzl for L2, box midpoint for Linf, projection rule for L1);
//   (5) keep the move only if the coverage reward improved, else stop.
// Recentering pulls partially-covered points toward the disk center (more
// reward each) and can bring new points into range, so walks chain. The
// complexity accounting in the paper's Theorem 4 ("suppose the size of D
// is i ... (2) takes (n-i) steps, (3) consumes (i+1) steps") confirms D is
// this accumulated set, growing by one point per step, so a walk takes at
// most n-1 steps.
void GreedyComplexSolver::walk_from_seed(const Problem& problem,
                                         std::span<const double> y,
                                         std::size_t seed,
                                         std::vector<double>& center,
                                         double& reward) const {
  const std::size_t n = problem.size();

  geo::PointSet accumulated(problem.dim());
  accumulated.push_back(problem.point(seed));
  std::vector<bool> in_set(n, false);
  in_set[seed] = true;

  geo::assign(center, problem.point(seed));
  reward = coverage_reward(problem, center, y);

  for (std::size_t step = 0; step + 1 < n; ++step) {
    // (2) heaviest remaining point by the reward the current disk gives it
    // (w_j * z_j); ties toward the lowest index.
    double best_w = 0.0;
    std::size_t best_j = n;
    for (std::size_t j = 0; j < n; ++j) {
      if (in_set[j]) continue;
      const double u = unit_coverage(problem, center, j);
      if (u <= 0.0) continue;
      const double wz = problem.weight(j) * std::min(u, y[j]);
      if (wz > best_w) {
        best_w = wz;
        best_j = j;
      }
    }
    // (3) every remaining point is outside the disk (or exhausted): stop.
    if (best_j == n || best_w <= 0.0) return;

    // (4) recenter on the smallest ball covering D plus j.
    accumulated.push_back(problem.point(best_j));
    const geo::Ball ball =
        geo::smallest_enclosing(accumulated, problem.metric(), l1_rule_);

    // (5) accept only an improving move.
    const double candidate_reward = coverage_reward(problem, ball.center, y);
    if (candidate_reward <= reward) return;
    in_set[best_j] = true;
    center = ball.center;
    reward = candidate_reward;
  }
}

void GreedyComplexSolver::select_center(const Problem& problem,
                                        std::span<const double> y,
                                        std::span<double> out) const {
  double best = -1.0;
  std::vector<double> best_center(problem.dim());
  std::vector<double> center(problem.dim());

  for (std::size_t seed = 0; seed < problem.size(); ++seed) {
    double reward = 0.0;
    walk_from_seed(problem, y, seed, center, reward);
    if (reward > best) {  // strict: ties keep the lowest seed index
      best = reward;
      best_center = center;
    }
  }
  geo::assign(out, best_center);
}

}  // namespace mmph::core
