#include "mmph/core/bounds.hpp"

#include <cmath>

#include "mmph/support/assert.hpp"

namespace mmph::core {

double approx_ratio_round_based(std::size_t k) {
  MMPH_REQUIRE(k >= 1, "approx ratio needs k >= 1");
  const double kk = static_cast<double>(k);
  return 1.0 - std::pow(1.0 - 1.0 / kk, kk);
}

double approx_ratio_local_greedy(std::size_t n, std::size_t k) {
  MMPH_REQUIRE(n >= 1, "approx ratio needs n >= 1");
  MMPH_REQUIRE(k >= 1, "approx ratio needs k >= 1");
  const double nn = static_cast<double>(n);
  return 1.0 - std::pow(1.0 - 1.0 / nn, static_cast<double>(k));
}

double one_minus_inv_e() { return 1.0 - std::exp(-1.0); }

}  // namespace mmph::core
