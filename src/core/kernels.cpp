#include "mmph/core/kernels.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/core/reward.hpp"
#include "mmph/geometry/norms.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core::kernels {
namespace {

std::atomic<bool> g_blocked_enabled{true};
std::atomic<IndexMode> g_index_mode{IndexMode::kAuto};

enum class NormKind { kL1, kL2, kLinf, kLp };

NormKind to_kind(geo::Norm n) {
  switch (n) {
    case geo::Norm::kL1:
      return NormKind::kL1;
    case geo::Norm::kL2:
      return NormKind::kL2;
    case geo::Norm::kLinf:
      return NormKind::kLinf;
    case geo::Norm::kLp:
      return NormKind::kLp;
  }
  return NormKind::kL2;  // unreachable
}

struct Params {
  NormKind kind;
  double p;        // exponent for NormKind::kLp
  double radius;
  double r2_skip;  // radius^2 * kSkipMargin (L2 early-out threshold)
  bool binary;     // RewardShape::kBinary
};

Params make_params(const geo::Metric& metric, double radius,
                   RewardShape shape) {
  Params prm;
  prm.kind = to_kind(metric.norm());
  prm.p = metric.p();
  prm.radius = radius;
  prm.r2_skip = radius * radius * geo::kSquaredSkipMargin;
  prm.binary = shape == RewardShape::kBinary;
  return prm;
}

/// One point's distance (L2: *squared* distance) with the same operation
/// order as the geo:: distance kernels, so values are identical.
template <NormKind NK, int DIM>
inline double dist_one(const double* row, const double* c, std::size_t dim,
                       double p) {
  if constexpr (DIM > 0) dim = static_cast<std::size_t>(DIM);
  if constexpr (NK == NormKind::kL2) {
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      const double t = c[d] - row[d];
      s += t * t;
    }
    return s;
  } else if constexpr (NK == NormKind::kL1) {
    double s = 0.0;
    for (std::size_t d = 0; d < dim; ++d) s += std::fabs(c[d] - row[d]);
    return s;
  } else if constexpr (NK == NormKind::kLinf) {
    double m = 0.0;
    for (std::size_t d = 0; d < dim; ++d) {
      m = std::max(m, std::fabs(c[d] - row[d]));
    }
    return m;
  } else {
    return geo::lp_distance(geo::ConstVec(c, dim), geo::ConstVec(row, dim), p);
  }
}

/// Stage 1: distances for a block of contiguous rows. The fixed per-call
/// trip counts (DIM and cnt <= kBlockSize) give the compiler straight-line
/// loops over contiguous streams to vectorize.
template <NormKind NK, int DIM>
inline void stage_block(const double* rows, std::size_t cnt, std::size_t dim,
                        const double* c, double p, double* dist) {
  if constexpr (DIM == 2) {
    const double c0 = c[0], c1 = c[1];
    for (std::size_t i = 0; i < cnt; ++i) {
      const double* row = rows + 2 * i;
      if constexpr (NK == NormKind::kL2) {
        const double d0 = c0 - row[0], d1 = c1 - row[1];
        double s = d0 * d0;
        s += d1 * d1;
        dist[i] = s;
      } else if constexpr (NK == NormKind::kL1) {
        double s = std::fabs(c0 - row[0]);
        s += std::fabs(c1 - row[1]);
        dist[i] = s;
      } else if constexpr (NK == NormKind::kLinf) {
        dist[i] = std::max(std::max(0.0, std::fabs(c0 - row[0])),
                           std::fabs(c1 - row[1]));
      } else {
        dist[i] = dist_one<NK, 2>(row, c, 2, p);
      }
    }
  } else if constexpr (DIM == 3) {
    const double c0 = c[0], c1 = c[1], c2 = c[2];
    for (std::size_t i = 0; i < cnt; ++i) {
      const double* row = rows + 3 * i;
      if constexpr (NK == NormKind::kL2) {
        const double d0 = c0 - row[0], d1 = c1 - row[1], d2 = c2 - row[2];
        double s = d0 * d0;
        s += d1 * d1;
        s += d2 * d2;
        dist[i] = s;
      } else if constexpr (NK == NormKind::kL1) {
        double s = std::fabs(c0 - row[0]);
        s += std::fabs(c1 - row[1]);
        s += std::fabs(c2 - row[2]);
        dist[i] = s;
      } else if constexpr (NK == NormKind::kLinf) {
        double m = std::max(0.0, std::fabs(c0 - row[0]));
        m = std::max(m, std::fabs(c1 - row[1]));
        m = std::max(m, std::fabs(c2 - row[2]));
        dist[i] = m;
      } else {
        dist[i] = dist_one<NK, 3>(row, c, 3, p);
      }
    }
  } else {
    for (std::size_t i = 0; i < cnt; ++i) {
      dist[i] = dist_one<NK, 0>(rows + i * dim, c, dim, p);
    }
  }
}

/// Stage 2: distances -> unit coverages, in place. Out-of-range points get
/// a non-positive u; the accumulation stage clamps, so the exact sentinel
/// never matters. L2 pays the sqrt only inside the early-out margin.
template <NormKind NK>
inline void dist_to_u(double* dist, std::size_t cnt, const Params& prm) {
  if constexpr (NK == NormKind::kL2) {
    if (prm.binary) {
      for (std::size_t i = 0; i < cnt; ++i) {
        const double d2 = dist[i];
        dist[i] = (d2 > prm.r2_skip || std::sqrt(d2) > prm.radius) ? -1.0
                                                                   : 1.0;
      }
    } else {
      for (std::size_t i = 0; i < cnt; ++i) {
        const double d2 = dist[i];
        dist[i] =
            d2 > prm.r2_skip ? -1.0 : 1.0 - std::sqrt(d2) / prm.radius;
      }
    }
  } else {
    if (prm.binary) {
      for (std::size_t i = 0; i < cnt; ++i) {
        dist[i] = dist[i] <= prm.radius ? 1.0 : -1.0;
      }
    } else {
      for (std::size_t i = 0; i < cnt; ++i) {
        dist[i] = 1.0 - dist[i] / prm.radius;
      }
    }
  }
}

/// Stage 3 + driver over contiguous rows [0, n). Accumulates onto \p g
/// term by term in ascending point order — the same association as the
/// per-point reference loop, so sums are bit-identical (skipped points
/// contribute exact +0.0, which cannot change a non-negative sum).
template <NormKind NK, int DIM, bool Apply>
inline void run_range(const double* rows, const double* w, double* y,
                      std::size_t n, std::size_t dim, const double* c,
                      const Params& prm, double& g) {
  double dist[kBlockSize];
  for (std::size_t base = 0; base < n; base += kBlockSize) {
    const std::size_t cnt = std::min(kBlockSize, n - base);
    stage_block<NK, DIM>(rows + base * dim, cnt, dim, c, prm.p, dist);
    dist_to_u<NK>(dist, cnt, prm);
    const double* wb = w + base;
    double* yb = y + base;
    for (std::size_t i = 0; i < cnt; ++i) {
      double z = std::min(dist[i], yb[i]);
      z = z > 0.0 ? z : 0.0;
      if constexpr (Apply) yb[i] -= z;
      g += wb[i] * z;
    }
  }
}

/// Driver over an explicit index list (spatial-index cell ranges). Same
/// math and same accumulation association as the reference loop over the
/// same indices.
template <NormKind NK, int DIM, bool Apply>
inline void run_indexed(const double* rows, const double* w, double* y,
                        std::size_t dim, const double* c, const Params& prm,
                        const std::size_t* idx, std::size_t m, double& g) {
  double dist[kBlockSize];
  for (std::size_t base = 0; base < m; base += kBlockSize) {
    const std::size_t cnt = std::min(kBlockSize, m - base);
    const std::size_t* ib = idx + base;
    for (std::size_t i = 0; i < cnt; ++i) {
      dist[i] = dist_one<NK, DIM>(rows + ib[i] * dim, c, dim, prm.p);
    }
    dist_to_u<NK>(dist, cnt, prm);
    for (std::size_t i = 0; i < cnt; ++i) {
      const std::size_t j = ib[i];
      double z = std::min(dist[i], y[j]);
      z = z > 0.0 ? z : 0.0;
      if constexpr (Apply) y[j] -= z;
      g += w[j] * z;
    }
  }
}

template <NormKind NK, bool Apply>
void dispatch_dim(const double* rows, const double* w, double* y,
                  std::size_t n, std::size_t dim, const double* c,
                  const Params& prm, double& g) {
  switch (dim) {
    case 2:
      run_range<NK, 2, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
    case 3:
      run_range<NK, 3, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
    default:
      run_range<NK, 0, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
  }
}

template <bool Apply>
void dispatch(const double* rows, const double* w, double* y, std::size_t n,
              std::size_t dim, const double* c, const Params& prm, double& g) {
  switch (prm.kind) {
    case NormKind::kL1:
      dispatch_dim<NormKind::kL1, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
    case NormKind::kL2:
      dispatch_dim<NormKind::kL2, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
    case NormKind::kLinf:
      dispatch_dim<NormKind::kLinf, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
    case NormKind::kLp:
      dispatch_dim<NormKind::kLp, Apply>(rows, w, y, n, dim, c, prm, g);
      return;
  }
}

template <NormKind NK, bool Apply>
void dispatch_indexed_dim(const double* rows, const double* w, double* y,
                          std::size_t dim, const double* c, const Params& prm,
                          const std::size_t* idx, std::size_t m, double& g) {
  switch (dim) {
    case 2:
      run_indexed<NK, 2, Apply>(rows, w, y, dim, c, prm, idx, m, g);
      return;
    case 3:
      run_indexed<NK, 3, Apply>(rows, w, y, dim, c, prm, idx, m, g);
      return;
    default:
      run_indexed<NK, 0, Apply>(rows, w, y, dim, c, prm, idx, m, g);
      return;
  }
}

template <bool Apply>
void dispatch_indexed(const double* rows, const double* w, double* y,
                      std::size_t dim, const double* c, const Params& prm,
                      const std::size_t* idx, std::size_t m, double& g) {
  switch (prm.kind) {
    case NormKind::kL1:
      dispatch_indexed_dim<NormKind::kL1, Apply>(rows, w, y, dim, c, prm, idx,
                                                 m, g);
      return;
    case NormKind::kL2:
      dispatch_indexed_dim<NormKind::kL2, Apply>(rows, w, y, dim, c, prm, idx,
                                                 m, g);
      return;
    case NormKind::kLinf:
      dispatch_indexed_dim<NormKind::kLinf, Apply>(rows, w, y, dim, c, prm,
                                                   idx, m, g);
      return;
    case NormKind::kLp:
      dispatch_indexed_dim<NormKind::kLp, Apply>(rows, w, y, dim, c, prm, idx,
                                                 m, g);
      return;
  }
}

}  // namespace

void set_blocked_enabled(bool enabled) noexcept {
  g_blocked_enabled.store(enabled, std::memory_order_relaxed);
}

bool blocked_enabled() noexcept {
  return g_blocked_enabled.load(std::memory_order_relaxed);
}

void set_index_mode(IndexMode mode) noexcept {
  g_index_mode.store(mode, std::memory_order_relaxed);
}

IndexMode index_mode() noexcept {
  return g_index_mode.load(std::memory_order_relaxed);
}

const char* index_mode_name(IndexMode mode) noexcept {
  switch (mode) {
    case IndexMode::kNone:
      return "none";
    case IndexMode::kGrid:
      return "grid";
    case IndexMode::kAuto:
      return "auto";
  }
  return "unknown";
}

std::optional<IndexMode> parse_index_mode(std::string_view name) noexcept {
  if (name == "none") return IndexMode::kNone;
  if (name == "grid") return IndexMode::kGrid;
  if (name == "auto") return IndexMode::kAuto;
  return std::nullopt;
}

double block_coverage_reward(const Problem& problem, geo::ConstVec center,
                             std::span<const double> y) {
  MMPH_ASSERT(y.size() == problem.size(), "block coverage: residual size");
  MMPH_ASSERT(center.size() == problem.dim(), "block coverage: center dim");
  const Params prm =
      make_params(problem.metric(), problem.radius(), problem.reward_shape());
  double g = 0.0;
  dispatch<false>(problem.points().raw().data(), problem.weights().data(),
                  const_cast<double*>(y.data()), problem.size(),
                  problem.dim(), center.data(), prm, g);
  return g;
}

double block_apply_center(const Problem& problem, geo::ConstVec center,
                          std::span<double> y) {
  MMPH_ASSERT(y.size() == problem.size(), "block apply: residual size");
  MMPH_ASSERT(center.size() == problem.dim(), "block apply: center dim");
  const Params prm =
      make_params(problem.metric(), problem.radius(), problem.reward_shape());
  double g = 0.0;
  dispatch<true>(problem.points().raw().data(), problem.weights().data(),
                 y.data(), problem.size(), problem.dim(), center.data(), prm,
                 g);
  return g;
}

void block_coverage_reward(const Problem& problem, geo::ConstVec center,
                           std::span<const double> y,
                           std::span<const std::size_t> indices, double& g) {
  MMPH_ASSERT(y.size() == problem.size(), "block coverage: residual size");
  const Params prm =
      make_params(problem.metric(), problem.radius(), problem.reward_shape());
  dispatch_indexed<false>(problem.points().raw().data(),
                          problem.weights().data(),
                          const_cast<double*>(y.data()), problem.dim(),
                          center.data(), prm, indices.data(), indices.size(),
                          g);
}

void block_apply_center(const Problem& problem, geo::ConstVec center,
                        std::span<double> y,
                        std::span<const std::size_t> indices, double& g) {
  MMPH_ASSERT(y.size() == problem.size(), "block apply: residual size");
  const Params prm =
      make_params(problem.metric(), problem.radius(), problem.reward_shape());
  dispatch_indexed<true>(problem.points().raw().data(),
                         problem.weights().data(), y.data(), problem.dim(),
                         center.data(), prm, indices.data(), indices.size(),
                         g);
}

ActiveSet::ActiveSet(const Problem& problem) : problem_(problem) {
  gather(std::vector<double>(problem.size(), 1.0));
}

ActiveSet::ActiveSet(const Problem& problem, std::span<const double> y)
    : problem_(problem) {
  MMPH_REQUIRE(y.size() == problem.size(), "ActiveSet: residual size");
  gather(y);
}

void ActiveSet::gather(std::span<const double> y) {
  const std::size_t n = problem_.size();
  const std::size_t dim = problem_.dim();
  const double* rows = problem_.points().raw().data();
  coords_.clear();
  weights_.clear();
  residual_.clear();
  original_.clear();
  for (std::size_t i = 0; i < n; ++i) {
    if (y[i] == 0.0) continue;
    coords_.insert(coords_.end(), rows + i * dim, rows + (i + 1) * dim);
    weights_.push_back(problem_.weight(i));
    residual_.push_back(y[i]);
    original_.push_back(i);
  }
  exhausted_ = 0;
}

double ActiveSet::coverage_reward(geo::ConstVec center) const {
  MMPH_ASSERT(center.size() == problem_.dim(), "ActiveSet: center dim");
  const Params prm = make_params(problem_.metric(), problem_.radius(),
                                 problem_.reward_shape());
  double g = 0.0;
  dispatch<false>(coords_.data(), weights_.data(),
                  const_cast<double*>(residual_.data()), weights_.size(),
                  problem_.dim(), center.data(), prm, g);
  return g;
}

double ActiveSet::apply_center(geo::ConstVec center) {
  MMPH_ASSERT(center.size() == problem_.dim(), "ActiveSet: center dim");
  const Params prm = make_params(problem_.metric(), problem_.radius(),
                                 problem_.reward_shape());
  double g = 0.0;
  dispatch<true>(coords_.data(), weights_.data(), residual_.data(),
                 weights_.size(), problem_.dim(), center.data(), prm, g);
  std::size_t zeros = 0;
  for (const double v : residual_) zeros += v == 0.0 ? 1 : 0;
  exhausted_ = zeros;
  // Compact once 1/8 of the scan is dead weight; cheap relative to the
  // scans it saves, and sums are unaffected (dropped terms are +0.0).
  if (exhausted_ > 0 && exhausted_ * 8 >= weights_.size()) compact();
  return g;
}

void ActiveSet::compact() {
  if (exhausted_ == 0) return;
  const std::size_t dim = problem_.dim();
  std::size_t keep = 0;
  for (std::size_t row = 0; row < weights_.size(); ++row) {
    if (residual_[row] == 0.0) continue;
    if (keep != row) {
      std::copy(coords_.begin() + static_cast<std::ptrdiff_t>(row * dim),
                coords_.begin() + static_cast<std::ptrdiff_t>((row + 1) * dim),
                coords_.begin() + static_cast<std::ptrdiff_t>(keep * dim));
      weights_[keep] = weights_[row];
      residual_[keep] = residual_[row];
      original_[keep] = original_[row];
    }
    ++keep;
  }
  coords_.resize(keep * dim);
  weights_.resize(keep);
  residual_.resize(keep);
  original_.resize(keep);
  exhausted_ = 0;
}

void ActiveSet::export_residual(std::span<double> y) const {
  MMPH_REQUIRE(y.size() == problem_.size(), "ActiveSet: residual size");
  std::fill(y.begin(), y.end(), 0.0);
  for (std::size_t row = 0; row < weights_.size(); ++row) {
    y[original_[row]] = residual_[row];
  }
}

std::vector<double> ParallelEvaluator::point_gains(
    const Problem& problem, std::span<const double> y) const {
  return map(problem.size(), [&](std::size_t i) {
    return core::coverage_reward(problem, problem.point(i), y);
  });
}

std::vector<double> ParallelEvaluator::point_gains(
    const ActiveSet& active) const {
  const Problem& problem = active.problem();
  return map(problem.size(), [&](std::size_t i) {
    return active.coverage_reward(problem.point(i));
  });
}

std::vector<double> ParallelEvaluator::pool_gains(
    const Problem& problem, const geo::PointSet& pool,
    std::span<const double> y) const {
  return map(pool.size(), [&](std::size_t c) {
    return core::coverage_reward(problem, pool[c], y);
  });
}

}  // namespace mmph::core::kernels
