#include "mmph/core/exhaustive.hpp"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/parallel/parallel_for.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

double binomial(std::size_t n, std::size_t k) {
  if (k > n) return 0.0;
  k = std::min(k, n - k);
  double r = 1.0;
  for (std::size_t i = 1; i <= k; ++i) {
    r *= static_cast<double>(n - k + i) / static_cast<double>(i);
  }
  return r;
}

namespace {

/// Shared, monotonically increasing lower bound on the optimum, used for
/// pruning across workers. Only the merge step decides the final winner,
/// so the bound may lag without affecting determinism.
class SharedBest {
 public:
  [[nodiscard]] double load() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void raise(double v) noexcept {
    double cur = value_.load(std::memory_order_relaxed);
    while (v > cur &&
           !value_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }

 private:
  std::atomic<double> value_{-1.0};
};

struct LocalBest {
  double value = -1.0;
  std::vector<std::size_t> combo;  // ordered positions into the sort order

  /// Deterministic preference: higher value; then lexicographically
  /// smaller combination (in sorted-candidate order).
  void offer(double v, const std::vector<std::size_t>& c) {
    if (v > value || (v == value && (combo.empty() || c < combo))) {
      value = v;
      combo = c;
    }
  }
  void merge(const LocalBest& other) {
    if (other.value < 0.0) return;
    offer(other.value, other.combo);
  }
};

/// Depth-first enumeration state for one worker.
class Enumerator {
 public:
  Enumerator(const Problem& problem, const geo::PointSet& candidates,
             std::span<const std::size_t> order,
             std::span<const double> standalone_prefix, std::size_t k,
             bool use_pruning, SharedBest& shared)
      : problem_(problem),
        candidates_(candidates),
        order_(order),
        prefix_(standalone_prefix),
        k_(k),
        use_pruning_(use_pruning),
        shared_(shared) {
    residuals_.resize(k + 1);
    for (auto& y : residuals_) y.assign(problem.size(), 1.0);
    combo_.reserve(k);
  }

  /// Explores every combination whose first element (in sort order) is
  /// exactly `first`.
  void explore_from(std::size_t first) {
    if (first + k_ > order_.size()) return;
    if (use_pruning_ &&
        top_remaining(first, k_) < shared_.load()) {
      return;
    }
    residuals_[0].assign(problem_.size(), 1.0);
    residuals_[1] = residuals_[0];
    const double applied = apply_center(problem_, candidates_[order_[first]],
                                        residuals_[1]);
    combo_.assign(1, first);
    descend(first + 1, 1, applied);
    combo_.clear();
  }

  [[nodiscard]] const LocalBest& best() const noexcept { return best_; }

 private:
  // Sum of the `count` largest standalone values among order_[pos..):
  // because order_ is sorted by standalone value descending, that is just
  // a prefix slice. prefix_[i] = sum of standalone over order_[0..i).
  [[nodiscard]] double top_remaining(std::size_t pos,
                                     std::size_t count) const noexcept {
    const std::size_t end = std::min(pos + count, order_.size());
    return prefix_[end] - prefix_[pos];
  }

  void descend(std::size_t pos, std::size_t depth, double partial) {
    const std::size_t remaining = k_ - depth;
    if (remaining == 0) {
      best_.offer(partial, combo_);
      shared_.raise(partial);
      return;
    }
    for (std::size_t p = pos; p + remaining <= order_.size(); ++p) {
      if (use_pruning_) {
        // Submodular bound: any completion adds at most the best
        // `remaining` standalone values among candidates from p on.
        const double bound = partial + top_remaining(p, remaining);
        if (bound < shared_.load()) break;  // later p only get worse
      }
      const double gain = coverage_reward(
          problem_, candidates_[order_[p]], residuals_[depth]);
      if (use_pruning_ && remaining >= 2) {
        const double bound = partial + gain + top_remaining(p + 1, remaining - 1);
        if (bound < shared_.load()) continue;
      }
      residuals_[depth + 1] = residuals_[depth];
      const double applied = apply_center(problem_, candidates_[order_[p]],
                                          residuals_[depth + 1]);
      combo_.push_back(p);
      descend(p + 1, depth + 1, partial + applied);
      combo_.pop_back();
    }
  }

  const Problem& problem_;
  const geo::PointSet& candidates_;
  std::span<const std::size_t> order_;
  std::span<const double> prefix_;
  std::size_t k_;
  bool use_pruning_;
  SharedBest& shared_;

  std::vector<std::vector<double>> residuals_;
  std::vector<std::size_t> combo_;
  LocalBest best_;
};

}  // namespace

ExhaustiveSolver::ExhaustiveSolver(geo::PointSet candidates, Options options)
    : candidates_(std::move(candidates)), options_(options) {
  MMPH_REQUIRE(!candidates_.empty(),
               "ExhaustiveSolver needs at least one candidate");
}

ExhaustiveSolver ExhaustiveSolver::over_points(const Problem& problem,
                                               Options options) {
  return ExhaustiveSolver(candidates_from_points(problem), options);
}

ExhaustiveSolver ExhaustiveSolver::over_grid_and_points(const Problem& problem,
                                                        double pitch,
                                                        Options options) {
  return ExhaustiveSolver(
      candidates_union(candidates_grid_over(problem, pitch),
                       candidates_from_points(problem)),
      options);
}

Solution ExhaustiveSolver::solve(const Problem& problem, std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  MMPH_REQUIRE(candidates_.dim() == problem.dim(),
               "ExhaustiveSolver: candidate dimension mismatch");
  const std::size_t m = candidates_.size();
  MMPH_REQUIRE(k <= m, "solve: k exceeds candidate count");
  MMPH_REQUIRE(binomial(m, k) <= options_.max_subsets,
               "exhaustive search space exceeds max_subsets; "
               "coarsen the grid or lower k");

  // Standalone value of each candidate (its best case as a later addition,
  // by submodularity); sort candidates by it, descending, stable on index.
  std::vector<double> standalone(m);
  {
    const std::vector<double> fresh(problem.size(), 1.0);
    for (std::size_t c = 0; c < m; ++c) {
      standalone[c] = coverage_reward(problem, candidates_[c], fresh);
    }
  }
  std::vector<std::size_t> order(m);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return standalone[a] > standalone[b];
                   });
  std::vector<double> prefix(m + 1, 0.0);
  for (std::size_t i = 0; i < m; ++i) {
    prefix[i + 1] = prefix[i] + standalone[order[i]];
  }

  SharedBest shared;
  LocalBest global_best;

  const std::size_t first_limit = m - k + 1;
  if (options_.parallel && first_limit > 1) {
    std::mutex merge_mutex;
    par::parallel_for(
        par::ThreadPool::global(), 0, first_limit,
        [&](std::size_t first) {
          Enumerator e(problem, candidates_, order, prefix, k,
                       options_.use_pruning, shared);
          e.explore_from(first);
          std::lock_guard<std::mutex> lock(merge_mutex);
          global_best.merge(e.best());
        },
        /*grain=*/1);
  } else {
    Enumerator e(problem, candidates_, order, prefix, k, options_.use_pruning,
                 shared);
    for (std::size_t first = 0; first < first_limit; ++first) {
      e.explore_from(first);
    }
    global_best = e.best();
  }
  MMPH_ASSERT(global_best.value >= 0.0, "exhaustive found no combination");

  // Rebuild the Solution by replaying the winning combination.
  Solution sol;
  sol.solver_name = name();
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = fresh_residual(problem);
  for (std::size_t p : global_best.combo) {
    geo::ConstVec c = candidates_[order[p]];
    const double g = apply_center(problem, c, sol.residual);
    sol.centers.push_back(c);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  return sol;
}

}  // namespace mmph::core
