#include "mmph/core/candidate_set.hpp"

#include <cmath>

#include "mmph/support/assert.hpp"

namespace mmph::core {

geo::PointSet candidates_from_points(const Problem& problem) {
  geo::PointSet out(problem.dim());
  out.reserve(problem.size());
  for (std::size_t i = 0; i < problem.size(); ++i) {
    out.push_back(problem.point(i));
  }
  return out;
}

geo::PointSet candidates_grid(const geo::Box& box, double pitch,
                              std::size_t max_points) {
  MMPH_REQUIRE(pitch > 0.0, "grid pitch must be positive");
  const std::size_t dim = box.dim();
  MMPH_REQUIRE(dim >= 1, "grid over an empty box");

  std::vector<std::size_t> counts(dim);
  std::size_t total = 1;
  for (std::size_t d = 0; d < dim; ++d) {
    MMPH_REQUIRE(box.hi[d] >= box.lo[d], "grid box is inverted");
    const double span = box.hi[d] - box.lo[d];
    // Number of grid lines including both endpoints; add a half-pitch of
    // tolerance so span == multiple-of-pitch includes the far endpoint.
    counts[d] = static_cast<std::size_t>(std::floor(span / pitch + 1e-9)) + 1;
    MMPH_REQUIRE(total <= max_points / counts[d] + 1,
                 "grid would exceed max_points");
    total *= counts[d];
  }
  MMPH_REQUIRE(total <= max_points, "grid would exceed max_points");

  geo::PointSet out(dim);
  out.reserve(total);
  std::vector<std::size_t> idx(dim, 0);
  std::vector<double> p(dim);
  for (std::size_t flat = 0; flat < total; ++flat) {
    for (std::size_t d = 0; d < dim; ++d) {
      p[d] = box.lo[d] + static_cast<double>(idx[d]) * pitch;
      if (p[d] > box.hi[d]) p[d] = box.hi[d];  // clamp round-off
    }
    out.push_back(p);
    // Odometer increment.
    for (std::size_t d = 0; d < dim; ++d) {
      if (++idx[d] < counts[d]) break;
      idx[d] = 0;
    }
  }
  return out;
}

geo::PointSet candidates_grid_over(const Problem& problem, double pitch,
                                   double margin) {
  geo::Box box = problem.points().bounding_box();
  for (std::size_t d = 0; d < box.dim(); ++d) {
    box.lo[d] -= margin;
    box.hi[d] += margin;
  }
  return candidates_grid(box, pitch);
}

geo::PointSet candidates_union(const geo::PointSet& a, const geo::PointSet& b) {
  MMPH_REQUIRE(a.dim() == b.dim(), "candidate union: dimension mismatch");
  geo::PointSet out(a.dim());
  out.reserve(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out.push_back(a[i]);
  for (std::size_t i = 0; i < b.size(); ++i) out.push_back(b[i]);
  return out;
}

}  // namespace mmph::core
