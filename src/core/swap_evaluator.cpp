#include "mmph/core/swap_evaluator.hpp"

#include <algorithm>

#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

SwapEvaluator::SwapEvaluator(const Problem& problem,
                             const geo::PointSet& centers)
    : problem_(problem), centers_(centers) {
  MMPH_REQUIRE(centers_.dim() == problem.dim(),
               "SwapEvaluator: center dimension mismatch");
  MMPH_REQUIRE(!centers_.empty(), "SwapEvaluator: empty center set");
  const std::size_t n = problem_.size();
  const std::size_t k = centers_.size();
  units_.assign(k * n, 0.0);
  totals_.assign(n, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    for (std::size_t i = 0; i < n; ++i) {
      const double u = unit_coverage(problem_, centers_[j], i);
      units_[j * n + i] = u;
      totals_[i] += u;
    }
  }
  value_ = evaluate_totals(totals_);
}

double SwapEvaluator::evaluate_totals(
    const std::vector<double>& totals) const {
  double f = 0.0;
  for (std::size_t i = 0; i < totals.size(); ++i) {
    f += problem_.weight(i) * std::min(totals[i], 1.0);
  }
  return f;
}

double SwapEvaluator::value_with_swap(std::size_t j,
                                      geo::ConstVec candidate) const {
  MMPH_REQUIRE(j < centers_.size(), "SwapEvaluator: center index");
  const std::size_t n = problem_.size();
  double f = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const double u_new = unit_coverage(problem_, candidate, i);
    const double total = totals_[i] - units_[j * n + i] + u_new;
    f += problem_.weight(i) * std::min(total, 1.0);
  }
  return f;
}

void SwapEvaluator::commit_swap(std::size_t j, geo::ConstVec candidate) {
  MMPH_REQUIRE(j < centers_.size(), "SwapEvaluator: center index");
  const std::size_t n = problem_.size();
  for (std::size_t i = 0; i < n; ++i) {
    const double u_new = unit_coverage(problem_, candidate, i);
    totals_[i] += u_new - units_[j * n + i];
    units_[j * n + i] = u_new;
  }
  geo::assign(centers_.mutable_point(j), candidate);
  value_ = evaluate_totals(totals_);
}

}  // namespace mmph::core
