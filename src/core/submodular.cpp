#include "mmph/core/submodular.hpp"

#include "mmph/core/objective.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {
namespace {

geo::PointSet prefix(const geo::PointSet& chain, std::size_t count) {
  geo::PointSet out(chain.dim());
  out.reserve(count);
  for (std::size_t i = 0; i < count; ++i) out.push_back(chain[i]);
  return out;
}

}  // namespace

SubmodularityViolation check_diminishing_returns(const Problem& problem,
                                                 const geo::PointSet& chain,
                                                 std::size_t a_size,
                                                 std::size_t b_size,
                                                 geo::ConstVec extra,
                                                 double tol) {
  MMPH_REQUIRE(a_size <= b_size && b_size <= chain.size(),
               "check_diminishing_returns: bad prefix sizes");
  const geo::PointSet a = prefix(chain, a_size);
  const geo::PointSet b = prefix(chain, b_size);
  SubmodularityViolation v;
  v.gain_small = marginal_gain(problem, a, extra);
  v.gain_large = marginal_gain(problem, b, extra);
  v.violated = v.gain_small + tol < v.gain_large;
  return v;
}

bool check_monotone(const Problem& problem, const geo::PointSet& chain,
                    double tol) {
  double prev = 0.0;
  for (std::size_t t = 1; t <= chain.size(); ++t) {
    const double f = objective_value(problem, prefix(chain, t));
    if (f + tol < prev) return false;
    prev = f;
  }
  return true;
}

}  // namespace mmph::core
