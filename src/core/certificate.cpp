#include "mmph/core/certificate.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

double coverage_lipschitz_constant(const Problem& problem) {
  MMPH_REQUIRE(problem.reward_shape() == RewardShape::kLinear,
               "Lipschitz certificate requires the linear reward shape");
  return problem.total_weight() / problem.radius();
}

double grid_covering_radius(double pitch, std::size_t dim,
                            const geo::Metric& metric) {
  MMPH_REQUIRE(pitch > 0.0, "covering radius: pitch must be positive");
  MMPH_REQUIRE(dim >= 1, "covering radius: dim must be >= 1");
  // The farthest point of a grid cell from its corners is the cell center,
  // at (h/2, ..., h/2): norm (h/2) * dim^(1/p) (dim^0 = 1 for L-infinity).
  const double half = 0.5 * pitch;
  if (metric.norm() == geo::Norm::kLinf) return half;
  return half * std::pow(static_cast<double>(dim), 1.0 / metric.p());
}

double continuous_round_upper_bound(const Problem& problem, double pitch) {
  const double lipschitz = coverage_lipschitz_constant(problem);
  // Centers farther than r from every point earn nothing, so the search
  // box needs only an r margin around the instance hull.
  const geo::PointSet grid =
      candidates_grid_over(problem, pitch, problem.radius());
  const std::vector<double> fresh(problem.size(), 1.0);
  double best = 0.0;
  for (std::size_t c = 0; c < grid.size(); ++c) {
    best = std::max(best, coverage_reward(problem, grid[c], fresh));
  }
  const double rho =
      grid_covering_radius(pitch, problem.dim(), problem.metric());
  return best + lipschitz * rho;
}

double continuous_opt_upper_bound(const Problem& problem, std::size_t k,
                                  double pitch) {
  MMPH_REQUIRE(k >= 1, "certificate: k must be >= 1");
  const double per_round = continuous_round_upper_bound(problem, pitch);
  return std::min(problem.total_weight(),
                  static_cast<double>(k) * per_round);
}

RatioCertificate certify_ratio(const Problem& problem,
                               const Solution& solution, double pitch) {
  RatioCertificate cert;
  cert.value = solution.total_reward;
  cert.upper_bound = continuous_opt_upper_bound(
      problem, std::max<std::size_t>(1, solution.centers.size()), pitch);
  MMPH_ASSERT(cert.upper_bound > 0.0, "certificate: degenerate bound");
  cert.certified_ratio = cert.value / cert.upper_bound;
  return cert;
}

}  // namespace mmph::core
