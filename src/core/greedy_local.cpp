#include "mmph/core/greedy_local.hpp"

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"

namespace mmph::core {

void GreedyLocalSolver::select_center(const Problem& problem,
                                      std::span<const double> y,
                                      std::span<double> out) const {
  double best = -1.0;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const double g = coverage_reward(problem, problem.point(i), y);
    if (g > best) {  // strict: ties keep the lowest index
      best = g;
      best_i = i;
    }
  }
  geo::assign(out, problem.point(best_i));
}

bool GreedyLocalSolver::indexed_select(const Problem& problem,
                                       const kernels::IndexedActiveSet& active,
                                       std::span<double> out) const {
  double best = -1.0;
  std::size_t best_i = 0;
  for (std::size_t i = 0; i < problem.size(); ++i) {
    const double g = active.coverage_reward(problem.point(i));
    if (g > best) {  // strict: ties keep the lowest index
      best = g;
      best_i = i;
    }
  }
  geo::assign(out, problem.point(best_i));
  return true;
}

}  // namespace mmph::core
