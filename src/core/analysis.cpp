#include "mmph/core/analysis.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/core/objective.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::core {

double unit_ball_volume(std::size_t dim, double p) {
  MMPH_REQUIRE(dim >= 1, "unit_ball_volume: dim must be >= 1");
  MMPH_REQUIRE(p >= 1.0, "unit_ball_volume: p must be >= 1");
  const double m = static_cast<double>(dim);
  if (std::isinf(p)) {
    return std::pow(2.0, m);  // the cube [-1, 1]^m
  }
  // log V = m * log(2 Gamma(1/p + 1)) - log Gamma(m/p + 1); lgamma keeps
  // the evaluation stable in high dimensions.
  const double log_v = m * (std::log(2.0) + std::lgamma(1.0 / p + 1.0)) -
                       std::lgamma(m / p + 1.0);
  return std::exp(log_v);
}

double ball_volume(std::size_t dim, const geo::Metric& metric,
                   double radius) {
  MMPH_REQUIRE(radius >= 0.0, "ball_volume: negative radius");
  return unit_ball_volume(dim, metric.p()) *
         std::pow(radius, static_cast<double>(dim));
}

double mean_unit_coverage(std::size_t dim, RewardShape shape) {
  MMPH_REQUIRE(dim >= 1, "mean_unit_coverage: dim must be >= 1");
  if (shape == RewardShape::kBinary) return 1.0;
  // E[1 - d/r] with density m * rho^(m-1) on rho = d/r in [0, 1]:
  // 1 - m/(m+1) = 1/(m+1).
  return 1.0 / (static_cast<double>(dim) + 1.0);
}

double curvature_estimate(const Problem& problem) {
  // Build V = all input points as centers, then measure each element's
  // marginal at the top, f(V) - f(V \ {i}), against its singleton value.
  const std::size_t n = problem.size();
  geo::PointSet all(problem.dim());
  all.reserve(n);
  for (std::size_t i = 0; i < n; ++i) all.push_back(problem.point(i));
  const double f_all = objective_value(problem, all);

  double min_ratio = 1.0;
  for (std::size_t i = 0; i < n; ++i) {
    geo::PointSet without(problem.dim());
    without.reserve(n - 1);
    geo::PointSet alone(problem.dim());
    alone.push_back(problem.point(i));
    for (std::size_t j = 0; j < n; ++j) {
      if (j != i) without.push_back(problem.point(j));
    }
    const double singleton = objective_value(problem, alone);
    if (singleton <= 0.0) continue;
    const double top_marginal = f_all - objective_value(problem, without);
    min_ratio = std::min(min_ratio, top_marginal / singleton);
  }
  return 1.0 - std::max(0.0, min_ratio);
}

double curvature_guarantee(double curvature) {
  MMPH_REQUIRE(curvature >= 0.0 && curvature <= 1.0,
               "curvature must be in [0, 1]");
  if (curvature < 1e-12) return 1.0;
  return (1.0 - std::exp(-curvature)) / curvature;
}

double expected_single_center_reward(std::size_t n, std::size_t dim,
                                     const geo::Metric& metric, double radius,
                                     double box_side, double mean_weight,
                                     RewardShape shape) {
  MMPH_REQUIRE(n >= 1, "expected reward: n must be >= 1");
  MMPH_REQUIRE(box_side > 0.0, "expected reward: box side must be positive");
  MMPH_REQUIRE(mean_weight > 0.0,
               "expected reward: mean weight must be positive");
  const double box_volume = std::pow(box_side, static_cast<double>(dim));
  const double cover_prob =
      std::min(1.0, ball_volume(dim, metric, radius) / box_volume);
  return static_cast<double>(n) * mean_weight * cover_prob *
         mean_unit_coverage(dim, shape);
}

}  // namespace mmph::core
