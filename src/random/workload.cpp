#include "mmph/random/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "mmph/random/halton.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::rnd {

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kUniform:
      return "uniform";
    case Placement::kHalton:
      return "halton";
    case Placement::kClustered:
      return "clustered";
  }
  return "?";
}

const char* weight_scheme_name(WeightScheme s) {
  switch (s) {
    case WeightScheme::kSame:
      return "same";
    case WeightScheme::kUniformInt:
      return "uniform-int";
    case WeightScheme::kZipf:
      return "zipf";
  }
  return "?";
}

std::string WorkloadSpec::describe() const {
  std::ostringstream os;
  os << "n=" << n << " dim=" << dim << " box=" << box_side << "^" << dim
     << " placement=" << placement_name(placement)
     << " weights=" << weight_scheme_name(weights);
  if (weights == WeightScheme::kUniformInt) {
    os << "[" << weight_lo << "," << weight_hi << "]";
  } else if (weights == WeightScheme::kSame) {
    os << "=" << same_weight;
  } else {
    os << "(s=" << zipf_exponent << ")";
  }
  return os.str();
}

double Workload::total_weight() const {
  return std::accumulate(weights.begin(), weights.end(), 0.0);
}

namespace {

geo::PointSet place_points(const WorkloadSpec& spec, Rng& rng) {
  geo::PointSet points(spec.dim);
  points.reserve(spec.n);
  std::vector<double> buf(spec.dim);
  switch (spec.placement) {
    case Placement::kUniform: {
      for (std::size_t i = 0; i < spec.n; ++i) {
        for (std::size_t d = 0; d < spec.dim; ++d) {
          buf[d] = rng.uniform(0.0, spec.box_side);
        }
        points.push_back(buf);
      }
      break;
    }
    case Placement::kHalton: {
      const std::vector<double> seq = halton_sequence(spec.n, spec.dim);
      for (std::size_t i = 0; i < spec.n; ++i) {
        for (std::size_t d = 0; d < spec.dim; ++d) {
          buf[d] = seq[i * spec.dim + d] * spec.box_side;
        }
        points.push_back(buf);
      }
      break;
    }
    case Placement::kClustered: {
      MMPH_REQUIRE(spec.clusters >= 1, "clustered placement needs >= 1 cluster");
      // Draw cluster centers uniformly, then points from isotropic
      // Gaussians around a uniformly-chosen center, clamped to the box.
      std::vector<double> centers(spec.clusters * spec.dim);
      for (double& c : centers) c = rng.uniform(0.0, spec.box_side);
      for (std::size_t i = 0; i < spec.n; ++i) {
        const std::size_t c = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<std::int64_t>(spec.clusters) - 1));
        for (std::size_t d = 0; d < spec.dim; ++d) {
          const double v =
              rng.normal(centers[c * spec.dim + d], spec.cluster_stddev);
          buf[d] = std::clamp(v, 0.0, spec.box_side);
        }
        points.push_back(buf);
      }
      break;
    }
  }
  return points;
}

std::vector<double> draw_weights(const WorkloadSpec& spec, Rng& rng) {
  std::vector<double> w(spec.n);
  switch (spec.weights) {
    case WeightScheme::kSame:
      std::fill(w.begin(), w.end(), spec.same_weight);
      break;
    case WeightScheme::kUniformInt:
      for (double& v : w) {
        v = static_cast<double>(rng.uniform_int(spec.weight_lo, spec.weight_hi));
      }
      break;
    case WeightScheme::kZipf:
      for (double& v : w) {
        v = static_cast<double>(rng.zipf(spec.n, spec.zipf_exponent));
      }
      break;
  }
  return w;
}

}  // namespace

Workload generate_workload(const WorkloadSpec& spec, Rng& rng) {
  MMPH_REQUIRE(spec.n >= 1, "workload needs n >= 1");
  MMPH_REQUIRE(spec.dim >= 1, "workload needs dim >= 1");
  MMPH_REQUIRE(spec.box_side > 0.0, "workload needs a positive box side");
  MMPH_REQUIRE(spec.weight_lo <= spec.weight_hi,
               "workload weight range is inverted");
  MMPH_REQUIRE(spec.same_weight > 0.0, "workload weights must be positive");
  Workload wl{place_points(spec, rng), draw_weights(spec, rng)};
  return wl;
}

}  // namespace mmph::rnd
