#include "mmph/random/rng.hpp"

#include <numeric>

#include "mmph/support/assert.hpp"

namespace mmph::rnd {

std::size_t Rng::categorical(const std::vector<double>& weights) {
  MMPH_REQUIRE(!weights.empty(), "categorical: empty weight vector");
  double total = 0.0;
  for (double w : weights) {
    MMPH_REQUIRE(w >= 0.0, "categorical: negative weight");
    total += w;
  }
  MMPH_REQUIRE(total > 0.0, "categorical: all weights zero");
  double u = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u < 0.0) return i;
  }
  return weights.size() - 1;  // guard against round-off
}

std::size_t Rng::zipf(std::size_t n, double s) {
  MMPH_REQUIRE(n >= 1, "zipf: n must be >= 1");
  MMPH_REQUIRE(s >= 0.0, "zipf: exponent must be >= 0");
  // Inverse-CDF over the normalized harmonic weights. n is small in all of
  // our workloads (<= a few thousand), so a linear scan is fine.
  double h = 0.0;
  for (std::size_t i = 1; i <= n; ++i) {
    h += 1.0 / std::pow(static_cast<double>(i), s);
  }
  double u = uniform() * h;
  for (std::size_t i = 1; i <= n; ++i) {
    u -= 1.0 / std::pow(static_cast<double>(i), s);
    if (u < 0.0) return i;
  }
  return n;
}

std::vector<std::size_t> Rng::permutation(std::size_t n) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(uniform_int(
        0, static_cast<std::int64_t>(i) - 1));
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace mmph::rnd
