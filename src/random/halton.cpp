#include "mmph/random/halton.hpp"

#include <iterator>

#include "mmph/support/assert.hpp"

namespace mmph::rnd {
namespace {

constexpr std::size_t kPrimes[] = {2,  3,  5,  7,  11, 13, 17, 19,
                                   23, 29, 31, 37, 41, 43, 47, 53};

}  // namespace

double van_der_corput(std::size_t i, std::size_t base) {
  MMPH_REQUIRE(base >= 2, "van_der_corput: base must be >= 2");
  double f = 1.0;
  double r = 0.0;
  std::size_t n = i + 1;  // one-based so element 0 is not the origin
  while (n > 0) {
    f /= static_cast<double>(base);
    r += f * static_cast<double>(n % base);
    n /= base;
  }
  return r;
}

std::vector<double> halton_sequence(std::size_t n, std::size_t dim,
                                    std::size_t skip) {
  MMPH_REQUIRE(dim >= 1 && dim <= std::size(kPrimes),
               "halton_sequence: dimension out of supported range");
  std::vector<double> out(n * dim);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < dim; ++d) {
      out[i * dim + d] = van_der_corput(i + skip, kPrimes[d]);
    }
  }
  return out;
}

}  // namespace mmph::rnd
