#include "mmph/spatial/kd_index.hpp"

#include <algorithm>
#include <unordered_set>

#include "mmph/support/assert.hpp"

namespace mmph::spatial {

namespace {

/// Loose rows are rescanned on every query, so cap them at a fraction of
/// the population (plus a floor for small sets) before folding them back
/// into the tree — the rebuild cost amortizes over the mutations that
/// forced it.
[[nodiscard]] std::size_t loose_limit(std::size_t n) noexcept {
  return n / 8 + 64;
}

}  // namespace

KdTreeIndex::KdTreeIndex(const geo::PointSet& points, double radius,
                         geo::Metric metric)
    : dim_(points.dim()),
      radius_(radius),
      metric_(metric),
      coords_(points.raw().begin(), points.raw().end()),
      masked_(points.size(), 0),
      base_(points.dim()) {
  MMPH_REQUIRE(radius > 0.0, "KdTreeIndex: radius must be positive");
  rebuild();
}

void KdTreeIndex::query(geo::ConstVec center,
                        std::vector<std::size_t>& out) const {
  MMPH_REQUIRE(center.size() == dim_, "KdTreeIndex: query dimension mismatch");
  out.clear();
  if (tree_) {
    tree_->for_each_in_ball(center, radius_, metric_, [&](std::size_t b) {
      if (b < size() && in_tree_[b] && !masked_[b]) out.push_back(b);
    });
  }
  for (const std::size_t id : loose_ids_) {
    if (id >= size() || in_tree_[id] || masked_[id]) continue;
    if (metric_.distance(center, point(id)) <= radius_) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  count_query(out.size());
}

void KdTreeIndex::mask(std::size_t id) {
  MMPH_ASSERT(id < size(), "KdTreeIndex: mask id out of range");
  masked_[id] = 1;
}

void KdTreeIndex::unmask_all() {
  std::fill(masked_.begin(), masked_.end(), 0);
}

bool KdTreeIndex::masked(std::size_t id) const {
  MMPH_ASSERT(id < size(), "KdTreeIndex: id out of range");
  return masked_[id] != 0;
}

void KdTreeIndex::add(geo::ConstVec p) {
  MMPH_REQUIRE(p.size() == dim_, "KdTreeIndex: add dimension mismatch");
  const std::size_t id = size();
  coords_.insert(coords_.end(), p.begin(), p.end());
  masked_.push_back(0);
  in_tree_.push_back(0);
  loose_ids_.push_back(id);
  count_update();
  maybe_rebuild();
}

void KdTreeIndex::update(std::size_t id, geo::ConstVec p) {
  MMPH_ASSERT(id < size(), "KdTreeIndex: update id out of range");
  MMPH_REQUIRE(p.size() == dim_, "KdTreeIndex: update dimension mismatch");
  std::copy(p.begin(), p.end(),
            coords_.begin() + static_cast<std::ptrdiff_t>(id * dim_));
  if (in_tree_[id]) {
    in_tree_[id] = 0;
    loose_ids_.push_back(id);
  }
  count_update();
  maybe_rebuild();
}

void KdTreeIndex::swap_remove(std::size_t id) {
  MMPH_ASSERT(id < size(), "KdTreeIndex: swap_remove id out of range");
  const std::size_t last = size() - 1;
  if (id != last) {
    std::copy(coords_.begin() + static_cast<std::ptrdiff_t>(last * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>((last + 1) * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>(id * dim_));
    masked_[id] = masked_[last];
    if (in_tree_[id]) {
      in_tree_[id] = 0;
      loose_ids_.push_back(id);
    }
  }
  masked_.pop_back();
  in_tree_.pop_back();
  coords_.resize(masked_.size() * dim_);
  count_update();
  maybe_rebuild();
}

void KdTreeIndex::rebuild() {
  base_ = geo::PointSet(dim_, coords_);
  tree_ = base_.empty() ? nullptr : std::make_unique<geo::KdTree>(base_);
  in_tree_.assign(size(), 1);
  loose_ids_.clear();
  count_rebuild();
}

bool KdTreeIndex::verify() const {
  if (base_.size() != (tree_ ? tree_->size() : 0)) return false;
  const std::unordered_set<std::size_t> loose(loose_ids_.begin(),
                                              loose_ids_.end());
  for (std::size_t id = 0; id < size(); ++id) {
    if (in_tree_[id]) {
      if (id >= base_.size()) return false;
      const geo::ConstVec live = point(id);
      const geo::ConstVec frozen = base_[id];
      for (std::size_t d = 0; d < dim_; ++d) {
        if (live[d] != frozen[d]) return false;
      }
    } else if (!loose.contains(id)) {
      return false;
    }
  }
  return true;
}

void KdTreeIndex::maybe_rebuild() {
  if (loose_ids_.size() > loose_limit(size())) rebuild();
}

}  // namespace mmph::spatial
