#include "mmph/spatial/uniform_grid.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/support/assert.hpp"

namespace mmph::spatial {

std::size_t UniformGridIndex::CellHash::operator()(
    const Cell& c) const noexcept {
  // FNV-1a over the packed coordinates; the multiply disperses the
  // sequential cell coordinates dense workloads produce.
  std::uint64_t h = 1469598103934665603ull;
  for (const std::int64_t v : c) {
    h ^= static_cast<std::uint64_t>(v);
    h *= 1099511628211ull;
  }
  return static_cast<std::size_t>(h);
}

UniformGridIndex::UniformGridIndex(const geo::PointSet& points, double radius,
                                   double cell_size)
    : dim_(points.dim()),
      radius_(radius),
      cell_(cell_size > 0.0 ? cell_size : radius) {
  MMPH_REQUIRE(radius > 0.0, "UniformGridIndex: radius must be positive");
  MMPH_REQUIRE(dim_ >= 1 && dim_ <= kGridMaxDim,
               "UniformGridIndex: dimension exceeds kGridMaxDim "
               "(use the kd-tree fallback)");
  coords_.assign(points.raw().begin(), points.raw().end());
  masked_.assign(points.size(), 0);
  buckets_.reserve(points.size() / 2 + 1);
  for (std::size_t id = 0; id < points.size(); ++id) {
    bucket_insert(cell_of(id), id);
  }
  count_rebuild();
}

std::int64_t UniformGridIndex::cell_coord(double v) const {
  return static_cast<std::int64_t>(std::floor(v / cell_));
}

UniformGridIndex::Cell UniformGridIndex::cell_of_vec(geo::ConstVec p) const {
  Cell c{};  // unused dimensions stay 0 so Cell compares/hashes uniformly
  for (std::size_t d = 0; d < dim_; ++d) c[d] = cell_coord(p[d]);
  return c;
}

void UniformGridIndex::query(geo::ConstVec center,
                             std::vector<std::size_t>& out) const {
  MMPH_REQUIRE(center.size() == dim_,
               "UniformGridIndex: query dimension mismatch");
  out.clear();
  if (buckets_.empty()) {
    count_query(0);
    return;
  }
  Cell lo{}, hi{}, cur{};
  for (std::size_t d = 0; d < dim_; ++d) {
    lo[d] = cell_coord(center[d] - radius_);
    hi[d] = cell_coord(center[d] + radius_);
    cur[d] = lo[d];
  }
  // Odometer over the cell box covering the L-infinity ball.
  for (;;) {
    const auto it = buckets_.find(cur);
    if (it != buckets_.end()) {
      out.insert(out.end(), it->second.begin(), it->second.end());
    }
    bool advanced = false;
    for (std::size_t d = dim_; d-- > 0;) {
      if (++cur[d] <= hi[d]) {
        advanced = true;
        break;
      }
      cur[d] = lo[d];
    }
    if (!advanced) break;
  }
  // Ascending ids keep indexed kernel sums bit-identical to a full scan.
  std::sort(out.begin(), out.end());
  count_query(out.size());
}

void UniformGridIndex::mask(std::size_t id) {
  MMPH_ASSERT(id < size(), "UniformGridIndex: mask id out of range");
  if (masked_[id]) return;
  bucket_erase(cell_of(id), id);
  masked_[id] = 1;
  ++masked_count_;
}

void UniformGridIndex::unmask_all() {
  if (masked_count_ == 0) return;
  for (std::size_t id = 0; id < size(); ++id) {
    if (masked_[id]) {
      masked_[id] = 0;
      bucket_insert(cell_of(id), id);
    }
  }
  masked_count_ = 0;
}

bool UniformGridIndex::masked(std::size_t id) const {
  MMPH_ASSERT(id < size(), "UniformGridIndex: id out of range");
  return masked_[id] != 0;
}

void UniformGridIndex::add(geo::ConstVec p) {
  MMPH_REQUIRE(p.size() == dim_, "UniformGridIndex: add dimension mismatch");
  const std::size_t id = size();
  coords_.insert(coords_.end(), p.begin(), p.end());
  masked_.push_back(0);
  bucket_insert(cell_of_vec(p), id);
  count_update();
}

void UniformGridIndex::update(std::size_t id, geo::ConstVec p) {
  MMPH_ASSERT(id < size(), "UniformGridIndex: update id out of range");
  MMPH_REQUIRE(p.size() == dim_,
               "UniformGridIndex: update dimension mismatch");
  const Cell before = cell_of(id);
  const Cell after = cell_of_vec(p);
  std::copy(p.begin(), p.end(),
            coords_.begin() + static_cast<std::ptrdiff_t>(id * dim_));
  if (!masked_[id] && before != after) {
    bucket_erase(before, id);
    bucket_insert(after, id);
  }
  count_update();
}

void UniformGridIndex::swap_remove(std::size_t id) {
  MMPH_ASSERT(id < size(), "UniformGridIndex: swap_remove id out of range");
  const std::size_t last = size() - 1;
  const bool id_masked = masked_[id] != 0;
  if (!id_masked) bucket_erase(cell_of(id), id);
  if (id != last) {
    const Cell last_cell = cell_of(last);
    std::copy(coords_.begin() + static_cast<std::ptrdiff_t>(last * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>((last + 1) * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>(id * dim_));
    masked_[id] = masked_[last];
    if (!masked_[last]) bucket_rename(last_cell, last, id);
  }
  masked_.pop_back();
  coords_.resize(masked_.size() * dim_);
  if (id_masked) --masked_count_;
  count_update();
}

void UniformGridIndex::rebuild() {
  buckets_.clear();
  for (std::size_t id = 0; id < size(); ++id) {
    if (!masked_[id]) bucket_insert(cell_of(id), id);
  }
  count_rebuild();
}

bool UniformGridIndex::verify() const {
  std::vector<char> seen(size(), 0);
  std::size_t total = 0;
  for (const auto& [cell, ids] : buckets_) {
    if (ids.empty()) return false;  // empty buckets must be erased
    for (const std::size_t id : ids) {
      if (id >= size() || masked_[id] || seen[id]) return false;
      if (cell_of(id) != cell) return false;
      seen[id] = 1;
      ++total;
    }
  }
  return total == size() - masked_count_;
}

void UniformGridIndex::bucket_insert(const Cell& cell, std::size_t id) {
  buckets_[cell].push_back(id);
}

void UniformGridIndex::bucket_erase(const Cell& cell, std::size_t id) {
  const auto it = buckets_.find(cell);
  MMPH_ASSERT(it != buckets_.end(), "UniformGridIndex: bucket missing");
  std::vector<std::size_t>& ids = it->second;
  const auto pos = std::find(ids.begin(), ids.end(), id);
  MMPH_ASSERT(pos != ids.end(), "UniformGridIndex: id missing from bucket");
  *pos = ids.back();
  ids.pop_back();
  if (ids.empty()) buckets_.erase(it);
}

void UniformGridIndex::bucket_rename(const Cell& cell, std::size_t from,
                                     std::size_t to) {
  const auto it = buckets_.find(cell);
  MMPH_ASSERT(it != buckets_.end(), "UniformGridIndex: bucket missing");
  const auto pos = std::find(it->second.begin(), it->second.end(), from);
  MMPH_ASSERT(pos != it->second.end(),
              "UniformGridIndex: id missing from bucket");
  *pos = to;
}

}  // namespace mmph::spatial
