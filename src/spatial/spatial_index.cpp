#include "mmph/spatial/spatial_index.hpp"

#include "mmph/spatial/kd_index.hpp"
#include "mmph/spatial/uniform_grid.hpp"

namespace mmph::spatial {

const char* index_kind_name(IndexKind kind) noexcept {
  switch (kind) {
    case IndexKind::kGrid:
      return "grid";
    case IndexKind::kKdTree:
      return "kdtree";
  }
  return "unknown";
}

std::unique_ptr<SpatialIndex> make_index(const geo::PointSet& points,
                                         double radius,
                                         const geo::Metric& metric) {
  const IndexKind kind =
      points.dim() <= kGridMaxDim ? IndexKind::kGrid : IndexKind::kKdTree;
  return make_index(kind, points, radius, metric);
}

std::unique_ptr<SpatialIndex> make_index(IndexKind kind,
                                         const geo::PointSet& points,
                                         double radius,
                                         const geo::Metric& metric) {
  switch (kind) {
    case IndexKind::kGrid:
      return std::make_unique<UniformGridIndex>(points, radius);
    case IndexKind::kKdTree:
      return std::make_unique<KdTreeIndex>(points, radius, metric);
  }
  MMPH_REQUIRE(false, "make_index: unknown IndexKind");
  return nullptr;
}

}  // namespace mmph::spatial
