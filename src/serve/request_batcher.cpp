#include "mmph/serve/request_batcher.hpp"

#include <utility>

#include "mmph/serve/metrics.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::serve {

const char* to_string(RequestType type) noexcept {
  switch (type) {
    case RequestType::kAddUsers: return "kAddUsers";
    case RequestType::kRemoveUsers: return "kRemoveUsers";
    case RequestType::kQueryPlacement: return "kQueryPlacement";
    case RequestType::kEvaluate: return "kEvaluate";
  }
  return "RequestType(?)";
}

const char* to_string(ResponseStatus status) noexcept {
  switch (status) {
    case ResponseStatus::kOk: return "kOk";
    case ResponseStatus::kTimeout: return "kTimeout";
    case ResponseStatus::kRejected: return "kRejected";
    case ResponseStatus::kShutdown: return "kShutdown";
    case ResponseStatus::kBadRequest: return "kBadRequest";
    case ResponseStatus::kInternalError: return "kInternalError";
  }
  return "ResponseStatus(?)";
}

Request Request::add_users(std::vector<UserRecord> users) {
  Request r;
  r.type = RequestType::kAddUsers;
  r.users = std::move(users);
  return r;
}

Request Request::remove_users(std::vector<std::uint64_t> ids) {
  Request r;
  r.type = RequestType::kRemoveUsers;
  r.ids = std::move(ids);
  return r;
}

Request Request::query_placement() {
  Request r;
  r.type = RequestType::kQueryPlacement;
  return r;
}

Request Request::evaluate(geo::PointSet centers) {
  Request r;
  r.type = RequestType::kEvaluate;
  r.centers = std::move(centers);
  return r;
}

RequestBatcher::RequestBatcher(std::size_t capacity, ServeMetrics* metrics,
                               FaultHook fault_hook)
    : capacity_(capacity),
      metrics_(metrics),
      fault_hook_(std::move(fault_hook)) {
  MMPH_REQUIRE(capacity_ >= 1, "RequestBatcher: capacity must be >= 1");
}

RequestBatcher::~RequestBatcher() { close(); }

bool RequestBatcher::push(Request&& request) {
  bool was_closed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    was_closed = closed_;
    if (!was_closed) {
      // A push racing close() is a shutdown, not backpressure: it never
      // entered the queue, so it is not "submitted" and must not read as
      // queue-full to callers tuning capacity.
      if (metrics_ != nullptr) metrics_->count_submitted();
      const bool forced_full =
          fault_hook_ && fault_hook_(kFaultQueueFull);
      if (!forced_full && queue_.size() < capacity_) {
        queue_.push_back(std::move(request));
        if (metrics_ != nullptr) metrics_->set_queue_depth(queue_.size());
        cv_.notify_one();
        return true;
      }
    }
  }
  Response response;
  if (was_closed) {
    if (metrics_ != nullptr) metrics_->count_shutdown();
    response.status = ResponseStatus::kShutdown;
  } else {
    if (metrics_ != nullptr) metrics_->count_rejected();
    response.status = ResponseStatus::kRejected;
  }
  request.reply.set_value(std::move(response));
  return false;
}

void RequestBatcher::push_batch(std::vector<Request>&& requests) {
  if (requests.empty()) return;
  std::vector<Request> overflow;  // answered outside the lock, like push()
  bool was_closed = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    was_closed = closed_;
    if (!was_closed) {
      for (Request& request : requests) {
        if (metrics_ != nullptr) metrics_->count_submitted();
        const bool forced_full =
            fault_hook_ && fault_hook_(kFaultQueueFull);
        if (!forced_full && queue_.size() < capacity_) {
          queue_.push_back(std::move(request));
        } else {
          overflow.push_back(std::move(request));
        }
      }
      if (metrics_ != nullptr) metrics_->set_queue_depth(queue_.size());
      cv_.notify_one();
    }
  }
  if (was_closed) {
    for (Request& request : requests) {
      if (metrics_ != nullptr) metrics_->count_shutdown();
      Response response;
      response.status = ResponseStatus::kShutdown;
      request.reply.set_value(std::move(response));
    }
    return;
  }
  for (Request& request : overflow) {
    if (metrics_ != nullptr) metrics_->count_rejected();
    Response response;
    response.status = ResponseStatus::kRejected;
    request.reply.set_value(std::move(response));
  }
}

std::vector<Request> RequestBatcher::pop_batch(std::size_t max_batch,
                                               std::chrono::milliseconds wait) {
  std::vector<Request> batch;
  if (max_batch == 0) return batch;
  std::unique_lock<std::mutex> lock(mutex_);
  if (queue_.empty() && wait.count() > 0) {
    cv_.wait_for(lock, wait, [&] { return !queue_.empty() || closed_; });
  }
  const auto now = std::chrono::steady_clock::now();
  while (!queue_.empty() && batch.size() < max_batch) {
    Request request = std::move(queue_.front());
    queue_.pop_front();
    const bool skewed = fault_hook_ && fault_hook_(kFaultDeadlineSkew);
    if (skewed || request.deadline < now) {
      if (metrics_ != nullptr) metrics_->count_timeout();
      Response response;
      response.status = ResponseStatus::kTimeout;
      request.reply.set_value(std::move(response));
      continue;
    }
    batch.push_back(std::move(request));
  }
  if (metrics_ != nullptr) metrics_->set_queue_depth(queue_.size());
  return batch;
}

std::size_t RequestBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return queue_.size();
}

void RequestBatcher::close() {
  std::deque<Request> drained;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (closed_ && queue_.empty()) return;
    closed_ = true;
    drained.swap(queue_);
  }
  cv_.notify_all();
  for (Request& request : drained) {
    if (metrics_ != nullptr) metrics_->count_shutdown();
    Response response;
    response.status = ResponseStatus::kShutdown;
    request.reply.set_value(std::move(response));
  }
  if (metrics_ != nullptr) metrics_->set_queue_depth(0);
}

bool RequestBatcher::closed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return closed_;
}

}  // namespace mmph::serve
