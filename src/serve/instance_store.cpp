#include "mmph/serve/instance_store.hpp"

#include <algorithm>

#include "mmph/support/assert.hpp"

namespace mmph::serve {

InstanceStore::InstanceStore(std::size_t dim) : dim_(dim) {
  MMPH_REQUIRE(dim_ >= 1, "InstanceStore: dim must be >= 1");
}

bool InstanceStore::upsert(const UserRecord& user) {
  MMPH_REQUIRE(user.interest.size() == dim_,
               "InstanceStore::upsert: interest dimension mismatch");
  MMPH_REQUIRE(user.weight > 0.0,
               "InstanceStore::upsert: weight must be positive");
  ++epoch_;
  ++churn_since_snapshot_;
  const auto it = index_.find(user.id);
  if (it != index_.end()) {
    const std::size_t row = it->second;
    weights_[row] = user.weight;
    std::copy(user.interest.begin(), user.interest.end(),
              coords_.begin() + static_cast<std::ptrdiff_t>(row * dim_));
    return false;
  }
  index_.emplace(user.id, ids_.size());
  ids_.push_back(user.id);
  weights_.push_back(user.weight);
  coords_.insert(coords_.end(), user.interest.begin(), user.interest.end());
  return true;
}

bool InstanceStore::remove(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const std::size_t row = it->second;
  const std::size_t last = ids_.size() - 1;
  if (row != last) {
    ids_[row] = ids_[last];
    weights_[row] = weights_[last];
    std::copy(coords_.begin() + static_cast<std::ptrdiff_t>(last * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>((last + 1) * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>(row * dim_));
    index_[ids_[row]] = row;
  }
  ids_.pop_back();
  weights_.pop_back();
  coords_.resize(coords_.size() - dim_);
  index_.erase(it);
  ++epoch_;
  ++churn_since_snapshot_;
  return true;
}

bool InstanceStore::contains(std::uint64_t id) const {
  return index_.count(id) != 0;
}

std::optional<UserRecord> InstanceStore::find(std::uint64_t id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  const std::size_t row = it->second;
  UserRecord rec;
  rec.id = id;
  rec.weight = weights_[row];
  rec.interest.assign(
      coords_.begin() + static_cast<std::ptrdiff_t>(row * dim_),
      coords_.begin() + static_cast<std::ptrdiff_t>((row + 1) * dim_));
  return rec;
}

StoreSnapshot InstanceStore::snapshot() {
  StoreSnapshot snap;
  snap.epoch = epoch_;
  snap.points = geo::PointSet(dim_, coords_);
  snap.weights = weights_;
  snap.ids = ids_;
  churn_since_snapshot_ = 0;
  return snap;
}

}  // namespace mmph::serve
