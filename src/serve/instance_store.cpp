#include "mmph/serve/instance_store.hpp"

#include <algorithm>

#include "mmph/support/assert.hpp"

namespace mmph::serve {

InstanceStore::InstanceStore(std::size_t dim) : dim_(dim) {
  MMPH_REQUIRE(dim_ >= 1, "InstanceStore: dim must be >= 1");
}

bool InstanceStore::upsert(const UserRecord& user) {
  MMPH_REQUIRE(user.interest.size() == dim_,
               "InstanceStore::upsert: interest dimension mismatch");
  MMPH_REQUIRE(user.weight > 0.0,
               "InstanceStore::upsert: weight must be positive");
  const auto it = index_.find(user.id);
  if (it != index_.end()) {
    // Update path: in-place writes into existing rows, nothing can throw.
    const std::size_t row = it->second;
    weights_[row] = user.weight;
    std::copy(user.interest.begin(), user.interest.end(),
              coords_.begin() + static_cast<std::ptrdiff_t>(row * dim_));
    ++epoch_;
    ++churn_since_snapshot_;
    return false;
  }
  // Insert path: every allocation happens before the first mutation, so a
  // bad_alloc anywhere leaves the store untouched. The index entry goes in
  // last among the throwing steps — the push_backs after it are guaranteed
  // not to reallocate.
  reserve_rows(1);
  index_.emplace(user.id, ids_.size());
  ids_.push_back(user.id);
  weights_.push_back(user.weight);
  coords_.insert(coords_.end(), user.interest.begin(), user.interest.end());
  ++epoch_;
  ++churn_since_snapshot_;
  return true;
}

void InstanceStore::reserve_rows(std::size_t rows) {
  const std::size_t want = ids_.size() + rows;
  if (want <= ids_.capacity() && want * dim_ <= coords_.capacity() &&
      want <= weights_.capacity()) {
    return;
  }
  // Keep the usual geometric growth so repeated single-row reserves stay
  // amortized O(1).
  const std::size_t target = std::max(want, ids_.capacity() * 2);
  ids_.reserve(target);
  weights_.reserve(target);
  coords_.reserve(target * dim_);
}

void InstanceStore::restore(std::uint64_t epoch,
                            std::vector<std::uint64_t> ids,
                            std::vector<double> weights,
                            std::vector<double> coords) {
  MMPH_REQUIRE(weights.size() == ids.size() &&
                   coords.size() == ids.size() * dim_,
               "InstanceStore::restore: row array size mismatch");
  MMPH_REQUIRE(epoch >= ids.size() && epoch >= epoch_,
               "InstanceStore::restore: epoch inconsistent with population");
  std::unordered_map<std::uint64_t, std::size_t> index;
  index.reserve(ids.size());
  for (std::size_t row = 0; row < ids.size(); ++row) {
    MMPH_REQUIRE(weights[row] > 0.0,
                 "InstanceStore::restore: weight must be positive");
    MMPH_REQUIRE(index.emplace(ids[row], row).second,
                 "InstanceStore::restore: duplicate user id");
  }
  // All validation and allocation done; the swap block cannot throw.
  ids_ = std::move(ids);
  weights_ = std::move(weights);
  coords_ = std::move(coords);
  index_ = std::move(index);
  epoch_ = epoch;
  churn_since_snapshot_ = 0;
}

bool InstanceStore::remove(std::uint64_t id) {
  const auto it = index_.find(id);
  if (it == index_.end()) return false;
  const std::size_t row = it->second;
  const std::size_t last = ids_.size() - 1;
  if (row != last) {
    ids_[row] = ids_[last];
    weights_[row] = weights_[last];
    std::copy(coords_.begin() + static_cast<std::ptrdiff_t>(last * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>((last + 1) * dim_),
              coords_.begin() + static_cast<std::ptrdiff_t>(row * dim_));
    index_[ids_[row]] = row;
  }
  ids_.pop_back();
  weights_.pop_back();
  coords_.resize(coords_.size() - dim_);
  index_.erase(it);
  ++epoch_;
  ++churn_since_snapshot_;
  return true;
}

bool InstanceStore::contains(std::uint64_t id) const {
  return index_.count(id) != 0;
}

std::optional<UserRecord> InstanceStore::find(std::uint64_t id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  const std::size_t row = it->second;
  UserRecord rec;
  rec.id = id;
  rec.weight = weights_[row];
  rec.interest.assign(
      coords_.begin() + static_cast<std::ptrdiff_t>(row * dim_),
      coords_.begin() + static_cast<std::ptrdiff_t>((row + 1) * dim_));
  return rec;
}

std::optional<std::size_t> InstanceStore::row_of(std::uint64_t id) const {
  const auto it = index_.find(id);
  if (it == index_.end()) return std::nullopt;
  return it->second;
}

void InstanceStore::export_rows(std::vector<std::uint64_t>& ids,
                                std::vector<double>& weights,
                                std::vector<double>& coords) const {
  ids = ids_;
  weights = weights_;
  coords = coords_;
}

StoreSnapshot InstanceStore::snapshot() {
  StoreSnapshot snap;
  snap.epoch = epoch_;
  snap.points = geo::PointSet(dim_, coords_);
  snap.weights = weights_;
  snap.ids = ids_;
  churn_since_snapshot_ = 0;
  return snap;
}

}  // namespace mmph::serve
