#include "mmph/serve/placement_service.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/support/assert.hpp"
#include "mmph/support/error.hpp"
#include "mmph/trace/span.hpp"

namespace mmph::serve {
namespace {

using Clock = std::chrono::steady_clock;

/// Adapts the service's shared ShardedSolver instance to the
/// WarmStartPlanner's factory shape without transferring ownership (the
/// service keeps the instance to read last_candidates()/last_stats()).
class SharedSolverAdapter final : public core::Solver {
 public:
  explicit SharedSolverAdapter(const ShardedSolver* inner) : inner_(inner) {}

  [[nodiscard]] std::string name() const override { return inner_->name(); }

  [[nodiscard]] core::Solution solve(const core::Problem& problem,
                                     std::size_t k) const override {
    return inner_->solve(problem, k);
  }

 private:
  const ShardedSolver* inner_;
};

/// Region cell for the store's RegionMap, validating radius first so the
/// member initializer cannot hit RegionMap's own check with a confusing
/// message.
double region_cell_for(const ServiceConfig& config) {
  MMPH_REQUIRE(config.radius > 0.0,
               "PlacementService: radius must be positive");
  return config.region_cell > 0.0 ? config.region_cell : config.radius;
}

}  // namespace

const char* solver_tier_name(SolverTier tier) noexcept {
  switch (tier) {
    case SolverTier::kGreedy:
      return "greedy";
    case SolverTier::kLazy:
      return "lazy";
    case SolverTier::kLs:
      return "ls";
  }
  return "lazy";
}

std::optional<SolverTier> parse_solver_tier(std::string_view name) noexcept {
  if (name == "greedy") return SolverTier::kGreedy;
  if (name == "lazy") return SolverTier::kLazy;
  if (name == "ls") return SolverTier::kLs;
  return std::nullopt;
}

PlacementService::PlacementService(ServiceConfig config, par::ThreadPool* pool)
    : config_(config),
      pool_(pool != nullptr ? *pool : par::ThreadPool::global()),
      batcher_(config.queue_capacity, &metrics_, config.fault_hook),
      store_(config.dim, std::max<std::size_t>(config.store_shards, 1),
             region_cell_for(config)) {
  MMPH_REQUIRE(config_.k >= 1, "PlacementService: k must be >= 1");
  MMPH_REQUIRE(config_.radius > 0.0,
               "PlacementService: radius must be positive");
  MMPH_REQUIRE(config_.store_shards >= 1,
               "PlacementService: store_shards must be >= 1");
  MMPH_REQUIRE(config_.max_batch >= 1,
               "PlacementService: max_batch must be >= 1");
  MMPH_REQUIRE(config_.full_solve_churn_fraction >= 0.0,
               "PlacementService: churn fraction must be >= 0");
  MMPH_REQUIRE(config_.wal == nullptr || config_.shard_wal == nullptr,
               "PlacementService: wal and shard_wal are mutually exclusive");
  MMPH_REQUIRE(config_.wal == nullptr || config_.store_shards == 1,
               "PlacementService: store_shards > 1 logs through shard_wal");
  MMPH_REQUIRE(config_.shard_wal == nullptr ||
                   config_.shard_wal->shard_count() == config_.store_shards,
               "PlacementService: shard_wal shard count != store_shards");
  if (config_.store_shards > 1) {
    metrics_.configure_store_shards(config_.store_shards);
  }
  sharded_ = std::make_unique<ShardedSolver>(pool_, config_.shard);
  planner_ = std::make_unique<sim::WarmStartPlanner>(
      [this](const core::Problem&) {
        return std::make_unique<SharedSolverAdapter>(sharded_.get());
      },
      std::max<std::size_t>(config_.warm_sweeps, 1),
      [this](const core::Problem&) { return incremental_pool_locked(); });
}

PlacementService::~PlacementService() { stop(); }

void PlacementService::apply_add(const std::vector<UserRecord>& users) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (read_only()) throw StateError("apply_add: service is read-only");
  apply_add_locked(users);
  commit_wal_locked();
  maybe_snapshot_locked();
}

void PlacementService::apply_remove(const std::vector<std::uint64_t>& ids) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (read_only()) throw StateError("apply_remove: service is read-only");
  apply_remove_locked(ids);
  commit_wal_locked();
  maybe_snapshot_locked();
}

void PlacementService::restore_from(const wal::WalSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_.shard_count() != 1) {
    // One global epoch cannot be split back into per-shard chains.
    throw StateError("restore_from: sharded store installs via restore_sharded");
  }
  MMPH_REQUIRE(snapshot.dim == config_.dim,
               "restore_from: snapshot dimension mismatch");
  store_.restore_shard(0, snapshot.epoch, snapshot.ids, snapshot.weights,
                       snapshot.coords);
  // Placement history is about a population that no longer exists.
  view_.reset();
  planner_->reset();
  churn_since_solve_ = 0;
  recent_points_.clear();
  // The carried index mirrored the old rows; the next solve rebuilds.
  publish_spatial_locked();
  index_.reset();
  index_dirty_ = false;
  // Checkpoint the installed state so the local log chains from it (for
  // a boot-time restore this re-checkpoints what recovery read; for a
  // replica install it jumps the writer to the primary's epoch).
  if (wal::WalWriter* writer = single_writer_locked()) {
    writer->write_snapshot(snapshot);
  }
}

void PlacementService::restore_sharded(const wal::ShardedRecovery& recovered) {
  std::lock_guard<std::mutex> lock(mutex_);
  MMPH_REQUIRE(recovered.shards.size() == store_.shard_count(),
               "restore_sharded: recovery shard count != store_shards");
  for (std::size_t s = 0; s < recovered.shards.size(); ++s) {
    const wal::WalSnapshot& part = recovered.shards[s].store;
    if (part.ids.empty() && part.epoch == 0) continue;  // untouched shard
    MMPH_REQUIRE(part.dim == config_.dim,
                 "restore_sharded: snapshot dimension mismatch");
    store_.restore_shard(s, part.epoch, part.ids, part.weights, part.coords);
  }
  view_.reset();
  planner_->reset();
  churn_since_solve_ = 0;
  recent_points_.clear();
  publish_spatial_locked();
  index_.reset();
  index_dirty_ = false;
  if (config_.shard_wal != nullptr) {
    for (std::size_t s = 0; s < recovered.shards.size(); ++s) {
      if (recovered.shards[s].store.epoch == 0) continue;
      config_.shard_wal->writer(s).write_snapshot(recovered.shards[s].store);
    }
  }
}

void PlacementService::apply_replicated(const wal::WalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_.shard_count() != 1) {
    // A replicated record carries the single-log epoch chain; a sharded
    // replica would need the per-shard streams (follow-on).
    throw StateError("apply_replicated: sharded store cannot ingest a "
                     "single-log stream");
  }
  if (record.epoch != store_.epoch() + record.count()) {
    throw StateError("apply_replicated: record breaks the epoch chain");
  }
  if (record.type == wal::RecordType::kUpsert) {
    MMPH_REQUIRE(record.dim == config_.dim,
                 "apply_replicated: record dimension mismatch");
    std::vector<UserRecord> users(record.ids.size());
    for (std::size_t i = 0; i < record.ids.size(); ++i) {
      users[i].id = record.ids[i];
      users[i].weight = record.weights[i];
      users[i].interest.assign(
          record.coords.begin() +
              static_cast<std::ptrdiff_t>(i * config_.dim),
          record.coords.begin() +
              static_cast<std::ptrdiff_t>((i + 1) * config_.dim));
    }
    apply_add_locked(users);
  } else {
    apply_remove_locked(record.ids);
  }
  commit_wal_locked();
  maybe_snapshot_locked();
}

wal::WalSnapshot PlacementService::wal_snapshot() {
  std::lock_guard<std::mutex> lock(mutex_);
  return wal_snapshot_locked();
}

wal::WalSnapshot PlacementService::shard_wal_snapshot(std::size_t s) {
  std::lock_guard<std::mutex> lock(mutex_);
  MMPH_REQUIRE(s < store_.shard_count(),
               "shard_wal_snapshot: shard out of range");
  return shard_wal_snapshot_locked(s);
}

PlacementView PlacementService::placement() {
  std::lock_guard<std::mutex> lock(mutex_);
  return solve_locked();
}

double PlacementService::evaluate(const geo::PointSet& centers) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (store_.empty() || centers.empty()) return 0.0;
  MMPH_REQUIRE(centers.dim() == config_.dim,
               "evaluate: centers dimension mismatch");
  return core::objective_value(problem_locked(), centers);
}

std::size_t PlacementService::population() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_.size();
}

std::uint64_t PlacementService::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return store_.epoch();
}

std::future<Response> PlacementService::submit(Request request) {
  std::future<Response> future = request.reply.get_future();
  batcher_.push(std::move(request));
  return future;
}

std::vector<std::future<Response>> PlacementService::submit_batch(
    std::vector<Request> requests) {
  std::vector<std::future<Response>> futures;
  futures.reserve(requests.size());
  for (Request& request : requests) {
    futures.push_back(request.reply.get_future());
  }
  batcher_.push_batch(std::move(requests));
  return futures;
}

std::size_t PlacementService::pump(std::chrono::milliseconds wait) {
  // One pump at a time, held across pop AND process. Each multi-loop
  // server loop rides its own pump; pop_batch and process_batch take
  // different locks, so without this guard loop B could pop batch N+1
  // and win the race to the store mutex — applying (and WAL-logging)
  // batch N+1 before batch N, an order no client submitted. The group
  // commit then acks durability in that inverted order too. Serializing
  // the whole pass keeps pop order == apply order == log order.
  std::lock_guard<std::mutex> pump_lock(pump_mutex_);
  std::vector<Request> batch = batcher_.pop_batch(config_.max_batch, wait);
  if (batch.empty()) return 0;
  const std::size_t handled = batch.size();
  process_batch(std::move(batch));
  return handled;
}

void PlacementService::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  worker_ = std::thread([this] {
    while (running_.load(std::memory_order_relaxed)) {
      pump(std::chrono::milliseconds(20));
    }
    // Final drain so requests racing stop() still get answers.
    while (pump(std::chrono::milliseconds(0)) > 0) {
    }
  });
}

void PlacementService::stop() {
  running_.store(false);
  batcher_.close();
  if (worker_.joinable()) worker_.join();
}

ShardStats PlacementService::last_shard_stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sharded_->last_stats();
}

namespace {

/// One planned store-shard operation of an add batch (batch order
/// preserved per shard).
struct PlannedOp {
  bool upsert = false;       ///< false: the remove half of a region move
  std::size_t user = 0;      ///< index into the batch's users
};

}  // namespace

void PlacementService::apply_add_locked(const std::vector<UserRecord>& users) {
  // Validate the whole batch up front: a batch is atomic — either every
  // row goes in (logged first when a WAL is attached) or the store is
  // exactly what it was. Without this, a mid-batch validation throw used
  // to leave the earlier rows applied.
  for (const UserRecord& user : users) {
    MMPH_REQUIRE(user.interest.size() == config_.dim,
                 "apply_add: interest dimension mismatch");
    MMPH_REQUIRE(user.weight > 0.0, "apply_add: weight must be positive");
  }
  if (users.empty()) return;
  const std::size_t nshards = store_.shard_count();

  if (nshards == 1) {
    // Bit-identity mode: exactly the unsharded sequence — one reserve,
    // one record, one upsert per user against store shard 0.
    store_.shard(0).reserve_rows(users.size());
    wal::WalWriter* writer = single_writer_locked();
    if (writer != nullptr) {
      wal::WalRecord record;
      record.type = wal::RecordType::kUpsert;
      record.dim = static_cast<std::uint16_t>(config_.dim);
      record.ids.reserve(users.size());
      record.weights.reserve(users.size());
      record.coords.reserve(users.size() * config_.dim);
      for (const UserRecord& user : users) {
        record.ids.push_back(user.id);
        record.weights.push_back(user.weight);
        record.coords.insert(record.coords.end(), user.interest.begin(),
                             user.interest.end());
      }
      writer->append(record);  // WalError here: store untouched
    }
  } else {
    // Route the batch. The overlay tracks ids this batch already touched,
    // so a second occurrence of an id plans against its post-first-
    // occurrence shard — the plan must equal what sequential application
    // will do, record for record, or replay diverges.
    if (config_.fault_hook && config_.fault_hook(kFaultStoreShardAllocFail)) {
      throw std::bad_alloc();  // before any append or mutation
    }
    std::vector<std::vector<PlannedOp>> plan(nshards);
    std::unordered_map<std::uint64_t, std::size_t> overlay;
    overlay.reserve(users.size());
    for (std::size_t i = 0; i < users.size(); ++i) {
      const UserRecord& user = users[i];
      const std::size_t to = store_.shard_of_point(
          geo::ConstVec(user.interest.data(), user.interest.size()));
      std::optional<std::size_t> from;
      const auto seen = overlay.find(user.id);
      if (seen != overlay.end()) {
        from = seen->second;
      } else {
        from = store_.shard_of_id(user.id);
      }
      if (from.has_value() && *from != to) {
        plan[*from].push_back(PlannedOp{false, i});  // region move: out...
      }
      plan[to].push_back(PlannedOp{true, i});  // ...and in (or plain upsert)
      overlay[user.id] = to;
    }
    for (std::size_t s = 0; s < nshards; ++s) {
      store_.shard(s).reserve_rows(plan[s].size());
    }
    if (config_.shard_wal != nullptr) {
      // Append-before-apply per shard: each shard gets its ops (in batch
      // order) as records, contiguous same-type runs coalesced. A failure
      // after the first successful append leaves some shard's log ahead
      // of every store — poison-all, nothing applied, batch answers
      // kInternalError (the ops were never acked, so recovery replaying
      // the stray records is the unacked-may-survive case, not a lie).
      bool any_appended = false;
      try {
        for (std::size_t s = 0; s < nshards; ++s) {
          std::size_t at = 0;
          while (at < plan[s].size()) {
            std::size_t end = at + 1;
            while (end < plan[s].size() &&
                   plan[s][end].upsert == plan[s][at].upsert) {
              ++end;
            }
            wal::WalRecord record;
            if (plan[s][at].upsert) {
              record.type = wal::RecordType::kUpsert;
              record.dim = static_cast<std::uint16_t>(config_.dim);
              for (std::size_t j = at; j < end; ++j) {
                const UserRecord& user = users[plan[s][j].user];
                record.ids.push_back(user.id);
                record.weights.push_back(user.weight);
                record.coords.insert(record.coords.end(),
                                     user.interest.begin(),
                                     user.interest.end());
              }
            } else {
              record.type = wal::RecordType::kRemove;
              for (std::size_t j = at; j < end; ++j) {
                record.ids.push_back(users[plan[s][j].user].id);
              }
            }
            config_.shard_wal->append(s, record);
            any_appended = true;
            at = end;
          }
        }
      } catch (const wal::WalError&) {
        if (any_appended) {
          config_.shard_wal->poison_all(
              "apply_add: partial multi-shard append");
        }
        throw;  // store untouched either way
      }
    }
  }

  try {
    for (const UserRecord& user : users) {
      const auto route = store_.upsert(user);
      ++churn_since_solve_;
      metrics_.count_shard_mutations(route.to, 1);
      if (index_ != nullptr && !index_dirty_) {
        if (nshards > 1) {
          // Rows of the global concatenation shifted (any mutation moves
          // every later shard's rows); the next solve rebuilds.
          index_dirty_ = true;
        } else {
          // Mirror the mutation into the carried index. A failure here
          // must not fail the mutation (the store and WAL already agree):
          // the index just goes dirty and the next solve rebuilds it.
          try {
            if (config_.fault_hook &&
                config_.fault_hook(kFaultSpatialAllocFail)) {
              throw std::bad_alloc();
            }
            const geo::ConstVec p(user.interest.data(), user.interest.size());
            if (route.inserted) {
              index_->add(p);
            } else {
              index_->update(*store_.shard(0).row_of(user.id), p);
            }
          } catch (...) {
            index_dirty_ = true;
          }
        }
      }
      recent_points_.push_back(user.interest);
    }
  } catch (...) {
    // Only the churn-deque allocation can land here, but if it does the
    // log and the store have diverged mid-batch — poison the log so the
    // recovered state, not this process, is the durable truth.
    poison_wal_locked("apply_add: apply diverged from the log");
    throw;
  }
  // Keep only a few multiples of the candidate cap; older churn points
  // have already been seen by a solve or crowded out.
  const std::size_t keep =
      std::max<std::size_t>(4 * config_.max_incremental_candidates, 4);
  while (recent_points_.size() > keep) recent_points_.pop_front();
  metrics_.count_mutations(users.size());
}

void PlacementService::apply_remove_locked(
    const std::vector<std::uint64_t>& ids) {
  // Only effective removals are logged — replay must advance the epoch
  // exactly as execution did — so filter unknown ids and within-batch
  // duplicates (no-ops after the first hit) before the append.
  std::vector<std::uint64_t> effective;
  effective.reserve(ids.size());
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(ids.size());
  for (const std::uint64_t id : ids) {
    if (store_.contains(id) && seen.insert(id).second) {
      effective.push_back(id);
    }
  }
  if (effective.empty()) return;
  const std::size_t nshards = store_.shard_count();
  if (nshards == 1) {
    if (wal::WalWriter* writer = single_writer_locked()) {
      wal::WalRecord record;
      record.type = wal::RecordType::kRemove;
      record.ids = effective;
      writer->append(record);  // WalError here: store untouched
    }
  } else {
    if (config_.fault_hook && config_.fault_hook(kFaultStoreShardAllocFail)) {
      throw std::bad_alloc();  // before any append or mutation
    }
  }
  if (nshards > 1 && config_.shard_wal != nullptr) {
    // One kRemove record per touched shard, ids in batch order (removes
    // in different shards are independent, so per-shard order is the
    // only order replay needs).
    std::vector<std::vector<std::uint64_t>> per_shard(nshards);
    for (const std::uint64_t id : effective) {
      per_shard[*store_.shard_of_id(id)].push_back(id);
    }
    bool any_appended = false;
    try {
      for (std::size_t s = 0; s < nshards; ++s) {
        if (per_shard[s].empty()) continue;
        wal::WalRecord record;
        record.type = wal::RecordType::kRemove;
        record.ids = std::move(per_shard[s]);
        config_.shard_wal->append(s, record);
        any_appended = true;
      }
    } catch (const wal::WalError&) {
      if (any_appended) {
        config_.shard_wal->poison_all(
            "apply_remove: partial multi-shard append");
      }
      throw;  // store untouched either way
    }
  }
  for (const std::uint64_t id : effective) {
    if (index_ != nullptr && !index_dirty_) {
      if (nshards > 1) {
        index_dirty_ = true;  // global rows shifted; rebuild at solve
      } else {
        // The index's swap_remove relocates the same last row the store's
        // does, so rows keep corresponding; capture the row before the
        // store forgets the id.
        const std::size_t row = *store_.shard(0).row_of(id);
        try {
          if (config_.fault_hook &&
              config_.fault_hook(kFaultSpatialAllocFail)) {
            throw std::bad_alloc();
          }
          index_->swap_remove(row);
        } catch (...) {
          index_dirty_ = true;
        }
      }
    }
    const auto from = store_.remove(id);  // present per the filter above
    ++churn_since_solve_;
    metrics_.count_shard_mutations(*from, 1);
  }
  metrics_.count_mutations(effective.size());
}

void PlacementService::commit_wal_locked() {
  if (config_.shard_wal != nullptr) {
    config_.shard_wal->commit_all();  // cross-shard group-commit barrier
  } else if (config_.wal != nullptr) {
    config_.wal->commit();
  }
}

void PlacementService::poison_wal_locked(const std::string& reason) {
  if (config_.shard_wal != nullptr) config_.shard_wal->poison_all(reason);
  if (config_.wal != nullptr) config_.wal->poison(reason);
}

wal::WalWriter* PlacementService::single_writer_locked() const {
  if (config_.wal != nullptr) return config_.wal;
  if (config_.shard_wal != nullptr && config_.shard_wal->shard_count() == 1) {
    return &config_.shard_wal->writer(0);
  }
  return nullptr;
}

void PlacementService::maybe_snapshot_locked() {
  // A failed checkpoint poisons the writer but must not retro-fail the
  // mutations that were already logged and acked; the next append
  // surfaces the poison as kInternalError.
  if (config_.shard_wal != nullptr) {
    if (!config_.shard_wal->wants_snapshot()) return;
    try {
      // Shards checkpoint independently: only the writers whose own op
      // budget tripped roll; quiet shards keep their cheap short logs.
      for (std::size_t s = 0; s < store_.shard_count(); ++s) {
        wal::WalWriter& writer = config_.shard_wal->writer(s);
        if (!writer.wants_snapshot()) continue;
        writer.write_snapshot(shard_wal_snapshot_locked(s));
      }
    } catch (const wal::WalError&) {
    }
    return;
  }
  if (config_.wal == nullptr || !config_.wal->wants_snapshot()) return;
  try {
    config_.wal->write_snapshot(wal_snapshot_locked());
  } catch (const wal::WalError&) {
  }
}

wal::WalSnapshot PlacementService::wal_snapshot_locked() const {
  wal::WalSnapshot snap;
  snap.epoch = store_.epoch();
  snap.dim = static_cast<std::uint16_t>(config_.dim);
  if (store_.shard_count() == 1) {
    store_.shard(0).export_rows(snap.ids, snap.weights, snap.coords);
    return snap;
  }
  // Global image: shard rows concatenated in shard order (the same order
  // global_snapshot() exposes).
  for (std::size_t s = 0; s < store_.shard_count(); ++s) {
    std::vector<std::uint64_t> ids;
    std::vector<double> weights;
    std::vector<double> coords;
    store_.shard(s).export_rows(ids, weights, coords);
    snap.ids.insert(snap.ids.end(), ids.begin(), ids.end());
    snap.weights.insert(snap.weights.end(), weights.begin(), weights.end());
    snap.coords.insert(snap.coords.end(), coords.begin(), coords.end());
  }
  return snap;
}

wal::WalSnapshot PlacementService::shard_wal_snapshot_locked(
    std::size_t s) const {
  wal::WalSnapshot snap;
  snap.epoch = store_.shard(s).epoch();
  snap.dim = static_cast<std::uint16_t>(config_.dim);
  store_.shard(s).export_rows(snap.ids, snap.weights, snap.coords);
  return snap;
}

void PlacementService::ensure_index_locked(const core::Problem& problem) {
  const core::kernels::IndexMode mode = core::kernels::index_mode();
  const bool want =
      mode != core::kernels::IndexMode::kNone && !store_.empty() &&
      config_.dim <= spatial::kGridMaxDim &&
      (mode == core::kernels::IndexMode::kGrid ||
       core::kernels::auto_index_profitable(problem));
  if (!want) {
    publish_spatial_locked();
    index_.reset();
    index_dirty_ = false;
    return;
  }
  // Fault seam: treat the carried index as corrupt (what a failed
  // verify() would report) and take the rebuild path.
  if (index_ != nullptr && config_.fault_hook &&
      config_.fault_hook(kFaultSpatialCorrupt)) {
    index_dirty_ = true;
  }
  if (index_ != nullptr && !index_dirty_ &&
      index_->size() == store_.size()) {
    return;  // carried across the churn delta, ready to query
  }
  publish_spatial_locked();
  index_ = std::make_unique<spatial::UniformGridIndex>(problem.points(),
                                                       config_.radius);
  index_dirty_ = false;
  index_published_ = spatial::IndexStats{};  // fresh counters (build = 1 rebuild)
}

void PlacementService::publish_spatial_locked() {
  if (index_ == nullptr) return;
  const spatial::IndexStats now = index_->stats();
  spatial::IndexStats delta;
  delta.queries = now.queries - index_published_.queries;
  delta.points_touched = now.points_touched - index_published_.points_touched;
  delta.incremental_updates =
      now.incremental_updates - index_published_.incremental_updates;
  delta.rebuilds = now.rebuilds - index_published_.rebuilds;
  metrics_.add_spatial(delta);
  index_published_ = now;
}

core::Problem PlacementService::problem_locked() {
  // Per-shard epoch snapshots: only shards whose epoch moved since the
  // last call are re-copied (the cache inside the sharded store), so a
  // solve after localized churn pays O(churned shards), not O(n), for
  // the snapshot assembly.
  StoreSnapshot snap = store_.global_snapshot();
  return core::Problem(std::move(snap.points), std::move(snap.weights),
                       config_.radius, config_.metric, config_.shape);
}

const PlacementView& PlacementService::solve_locked() {
  if (view_.has_value() && churn_since_solve_ == 0) return *view_;

  if (store_.empty()) {
    PlacementView view;
    view.epoch = store_.epoch();
    view.solution.solver_name = "empty";
    view.solution.centers = geo::PointSet(config_.dim);
    planner_->reset();  // stale centers are meaningless after an empty-out
    publish_spatial_locked();
    index_.reset();
    index_dirty_ = false;
    view_ = std::move(view);
    churn_since_solve_ = 0;
    recent_points_.clear();
    return *view_;
  }

  const std::uint64_t epoch = store_.epoch();
  const std::size_t population = store_.size();
  const core::Problem problem = problem_locked();

  const double churn_fraction =
      static_cast<double>(churn_since_solve_) /
      static_cast<double>(std::max<std::size_t>(population, 1));
  if (churn_fraction > config_.full_solve_churn_fraction) planner_->reset();

  // Carry the coverage index into the solve: rebuilt only when dirty or
  // out of step, otherwise the incremental mirror already brought it to
  // this epoch. The sharded solver evaluates (and grid-splits) through it.
  ensure_index_locked(problem);
  sharded_->set_shared_index(index_.get());
  // With a region-sharded store the full solve runs exactly one greedy
  // per store shard (the snapshot's contiguous row ranges) and merges
  // globally; warm re-solves don't consult the groups (they refine the
  // previous centers against the candidate pool).
  if (store_.shard_count() > 1) {
    sharded_->set_row_groups(store_.shard_row_ranges());
  }

  const std::uint64_t warm_before = planner_->warm_solves();
  const auto start = Clock::now();
  core::Solution solution = planner_->plan(problem, config_.k);
  if (config_.solver == SolverTier::kLs && !solution.centers.empty()) {
    // Polish the solve's output (warm path: the previous placement's
    // refined centers — LS is seeded from the previous epoch). The carried
    // coverage index, when present, serves the delta evaluations; the
    // polisher unmasks it and IndexedActiveSet re-unmasks at its next
    // solve, so lending it both ways is safe under the service mutex. A
    // polish abort (ls.eval_throw) falls back to the seed placement.
    ls::LsConfig polish = config_.ls;
    polish.fault_hook = config_.fault_hook;
    ls::LsStats ls_stats;
    const auto polish_start = Clock::now();
    solution = ls::polish(problem, solution, problem.points(), polish,
                          &ls_stats, index_.get());
    metrics_.add_ls(ls_stats.moves, ls_stats.evals, ls_stats.improved);
    trace::SpanCollector::global().record(
        "serve.solve.polish",
        std::chrono::duration<double>(Clock::now() - polish_start).count());
  }
  const double seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  if (store_.shard_count() > 1) {
    sharded_->set_row_groups({});
    for (std::size_t s = 0; s < store_.shard_count(); ++s) {
      metrics_.set_shard_rows(s, store_.shard(s).size());
    }
  }
  const bool incremental = planner_->warm_solves() > warm_before;
  publish_spatial_locked();
  metrics_.record_solve(seconds, incremental);
  trace::SpanCollector::global().record(
      incremental ? "serve.solve.incremental" : "serve.solve.full", seconds);

  PlacementView view;
  view.epoch = epoch;
  view.objective = solution.total_reward;
  view.population = population;
  view.solution = std::move(solution);
  view_ = std::move(view);
  churn_since_solve_ = 0;
  recent_points_.clear();
  return *view_;
}

geo::PointSet PlacementService::incremental_pool_locked() const {
  geo::PointSet pool(config_.dim);
  const std::size_t cap =
      std::max<std::size_t>(config_.max_incremental_candidates, 1);
  // Newest churned-in users first: they are where coverage is missing.
  for (auto it = recent_points_.rbegin();
       it != recent_points_.rend() && pool.size() < cap; ++it) {
    pool.push_back(geo::ConstVec(it->data(), it->size()));
  }
  // Then the cached per-shard winners of the last full solve: good centers
  // for the surviving population.
  const geo::PointSet& cached = sharded_->last_candidates();
  for (std::size_t j = 0; j < cached.size() && pool.size() < cap; ++j) {
    pool.push_back(cached[j]);
  }
  return pool;  // empty -> planner falls back to all input points
}

void PlacementService::count_affinity_locked(const Request& request) {
  // Loop->shard affinity observability (store_shards > 1 only): would a
  // "loop i owns shard i % store_shards" assignment have kept this
  // mutation loop-local? Hits/misses quantify how much cross-shard
  // traffic full per-loop ownership (the follow-on) would eliminate.
  if (store_.shard_count() <= 1 ||
      request.shard_hint == Request::kNoShardHint) {
    return;
  }
  std::optional<std::size_t> target;
  if (request.type == RequestType::kAddUsers && !request.users.empty()) {
    const auto& interest = request.users.front().interest;
    if (interest.size() == config_.dim) {
      target = store_.shard_of_point(
          geo::ConstVec(interest.data(), interest.size()));
    }
  } else if (request.type == RequestType::kRemoveUsers &&
             !request.ids.empty()) {
    target = store_.shard_of_id(request.ids.front());
  }
  if (!target.has_value()) return;
  const std::size_t owner_loop = request.shard_hint % store_.shard_count();
  metrics_.count_affinity(owner_loop == *target);
}

void PlacementService::process_batch(std::vector<Request> batch) {
  trace::ScopedSpan span("serve.batch");
  metrics_.record_batch(batch.size());
  std::lock_guard<std::mutex> lock(mutex_);

  // Mutations first, in arrival order; queries then observe the whole
  // batch (that is the point of batching: one solve amortizes over every
  // request that arrived together). A request that fails validation or
  // throws must not poison the rest of the batch: its status is recorded
  // and every promise below is still fulfilled — a broken promise hangs
  // (or throws std::future_error at) every blocking client.
  std::vector<ResponseStatus> status(batch.size(), ResponseStatus::kOk);
  std::uint64_t queries = 0;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    count_affinity_locked(request);
    switch (request.type) {
      case RequestType::kAddUsers:
        try {
          if (read_only()) throw InvalidArgument("service is read-only");
          // Fault seam: a forced allocation failure fires *before* any
          // store mutation, so a kInternalError answer implies an
          // untouched store (the chaos replay check depends on this).
          if (config_.fault_hook && config_.fault_hook(kFaultAllocFail)) {
            throw std::bad_alloc();
          }
          apply_add_locked(request.users);
        } catch (const InvalidArgument&) {
          status[i] = ResponseStatus::kBadRequest;
          metrics_.count_bad_request();
        } catch (...) {
          // Includes wal::WalError: the append failed, so the store was
          // not touched and nothing was acked durable.
          status[i] = ResponseStatus::kInternalError;
          metrics_.count_internal_error();
        }
        break;
      case RequestType::kRemoveUsers:
        try {
          if (read_only()) throw InvalidArgument("service is read-only");
          apply_remove_locked(request.ids);
        } catch (const InvalidArgument&) {
          status[i] = ResponseStatus::kBadRequest;
          metrics_.count_bad_request();
        } catch (...) {
          status[i] = ResponseStatus::kInternalError;
          metrics_.count_internal_error();
        }
        break;
      case RequestType::kQueryPlacement:
        ++queries;
        break;
      case RequestType::kEvaluate:
        ++queries;
        // The direct evaluate() API throws on these; the batched path must
        // answer instead of silently replying kOk with objective 0.
        if (!request.centers.has_value() || request.centers->empty() ||
            request.centers->dim() != config_.dim) {
          status[i] = ResponseStatus::kBadRequest;
          metrics_.count_bad_request();
        }
        break;
    }
  }
  metrics_.count_queries(queries);

  // Durability barrier before any reply leaves: one fsync covers every
  // mutation in the batch (the point of group commit). If it fails, the
  // mutations are applied in memory but of unknown durability — every
  // would-be-kOk mutation is re-answered kInternalError instead.
  const auto is_mutation = [](const Request& request) {
    return request.type == RequestType::kAddUsers ||
           request.type == RequestType::kRemoveUsers;
  };
  bool mutated = false;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (is_mutation(batch[i]) && status[i] == ResponseStatus::kOk) {
      mutated = true;
    }
  }
  if (config_.wal != nullptr && mutated) {
    try {
      commit_wal_locked();
      maybe_snapshot_locked();
    } catch (const wal::WalError&) {
      for (std::size_t i = 0; i < batch.size(); ++i) {
        if (is_mutation(batch[i]) && status[i] == ResponseStatus::kOk) {
          status[i] = ResponseStatus::kInternalError;
          metrics_.count_internal_error();
        }
      }
    }
  }

  for (std::size_t i = 0; i < batch.size(); ++i) {
    Request& request = batch[i];
    Response response;
    response.status = status[i];
    response.epoch = store_.epoch();
    if (response.status == ResponseStatus::kOk) {
      try {
        switch (request.type) {
          case RequestType::kAddUsers:
          case RequestType::kRemoveUsers:
            break;
          case RequestType::kQueryPlacement: {
            // Fault seam: fires before solve_locked touches any state, so
            // the cached view and churn accounting stay consistent.
            if (config_.fault_hook && config_.fault_hook(kFaultSolverThrow)) {
              throw std::runtime_error("injected solver failure");
            }
            const PlacementView& view = solve_locked();
            response.objective = view.objective;
            // Trimmed copy: batched callers consume the centers (and the
            // reward summary), never the n-sized residual vector — copying
            // it would cost O(population) per query (8 MB per reply at
            // n = 1M) on the hottest read path. The full residual stays
            // available via the synchronous placement() API.
            core::Solution trimmed;
            trimmed.solver_name = view.solution.solver_name;
            trimmed.centers = view.solution.centers;
            trimmed.round_rewards = view.solution.round_rewards;
            trimmed.total_reward = view.solution.total_reward;
            response.solution = std::move(trimmed);
            break;
          }
          case RequestType::kEvaluate: {
            if (config_.fault_hook && config_.fault_hook(kFaultSolverThrow)) {
              throw std::runtime_error("injected solver failure");
            }
            if (!store_.empty()) {
              response.objective =
                  core::objective_value(problem_locked(), *request.centers);
            }
            break;
          }
        }
      } catch (...) {
        response = Response{};
        response.status = ResponseStatus::kInternalError;
        response.epoch = store_.epoch();
        metrics_.count_internal_error();
      }
    }
    try {
      request.reply.set_value(std::move(response));
    } catch (const std::future_error&) {
      // Promise already satisfied or abandoned — nothing left to tell.
    }
  }
}

}  // namespace mmph::serve
