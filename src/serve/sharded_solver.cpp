#include "mmph/serve/sharded_solver.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <memory>
#include <numeric>
#include <optional>
#include <queue>
#include <span>
#include <utility>

#include "mmph/core/indexed_eval.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/lazy_greedy.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/parallel/parallel_for.hpp"
#include "mmph/spatial/uniform_grid.hpp"
#include "mmph/support/assert.hpp"
#include "mmph/trace/span.hpp"

namespace mmph::serve {
namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Widest dimension of the bounding box of the indexed subset.
std::size_t widest_dim(const geo::PointSet& points,
                       std::span<const std::size_t> indices) {
  const std::size_t dim = points.dim();
  std::vector<double> lo(dim, std::numeric_limits<double>::infinity());
  std::vector<double> hi(dim, -std::numeric_limits<double>::infinity());
  for (const std::size_t i : indices) {
    const geo::ConstVec p = points[i];
    for (std::size_t d = 0; d < dim; ++d) {
      lo[d] = std::min(lo[d], p[d]);
      hi[d] = std::max(hi[d], p[d]);
    }
  }
  std::size_t best = 0;
  for (std::size_t d = 1; d < dim; ++d) {
    if (hi[d] - lo[d] > hi[best] - lo[best]) best = d;
  }
  return best;
}

/// Kd-style recursive median split of \p indices into at most \p budget
/// groups, never splitting below min_shard_size.
void median_split(const geo::PointSet& points, std::vector<std::size_t>& indices,
                  std::size_t begin, std::size_t end, std::size_t budget,
                  std::size_t min_shard_size,
                  std::vector<std::vector<std::size_t>>& out) {
  const std::size_t count = end - begin;
  if (budget <= 1 || count <= min_shard_size || count < 2) {
    out.emplace_back(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                     indices.begin() + static_cast<std::ptrdiff_t>(end));
    return;
  }
  const std::size_t left_budget = budget / 2;
  const std::size_t right_budget = budget - left_budget;
  // Split position proportional to the budget split so uneven budgets
  // (e.g. 3 shards) still balance.
  const std::size_t mid = begin + count * left_budget / budget;
  const std::span<const std::size_t> view(indices.data() + begin, count);
  const std::size_t axis = widest_dim(points, view);
  std::nth_element(indices.begin() + static_cast<std::ptrdiff_t>(begin),
                   indices.begin() + static_cast<std::ptrdiff_t>(mid),
                   indices.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     const double va = points[a][axis], vb = points[b][axis];
                     if (va != vb) return va < vb;
                     return a < b;  // deterministic under duplicate coords
                   });
  median_split(points, indices, begin, mid, left_budget, min_shard_size, out);
  median_split(points, indices, mid, end, right_budget, min_shard_size, out);
}

/// Buckets points by uniform-grid cell, then packs cells (in lexicographic
/// cell-coordinate order, i.e. spatial row-major order) into at most
/// \p budget groups of roughly n/budget points each. The grid is the same
/// structure the indexed evaluation path queries, so a caller that already
/// maintains one shares it here instead of building a second.
std::vector<std::vector<std::size_t>> grid_split(
    const spatial::UniformGridIndex& grid, std::size_t budget) {
  std::vector<std::size_t> order(grid.size());
  std::iota(order.begin(), order.end(), 0);
  // cell_of depends only on coordinates (not masks), so a grid carrying
  // masks from a previous solve still splits the full population.
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const auto ca = grid.cell_of(a), cb = grid.cell_of(b);
    if (ca != cb) return ca < cb;
    return a < b;
  });
  const std::size_t target = (grid.size() + budget - 1) / budget;
  std::vector<std::vector<std::size_t>> out;
  std::size_t pos = 0;
  while (pos < order.size()) {
    std::size_t end = std::min(pos + target, order.size());
    // Never split a cell across shards: extend to the cell boundary.
    while (end < order.size() && end > pos &&
           grid.cell_of(order[end]) == grid.cell_of(order[end - 1])) {
      ++end;
    }
    out.emplace_back(order.begin() + static_cast<std::ptrdiff_t>(pos),
                     order.begin() + static_cast<std::ptrdiff_t>(end));
    pos = end;
  }
  return out;
}

}  // namespace

std::vector<std::vector<std::size_t>> shard_indices(
    const geo::PointSet& points, const ShardedSolverConfig& config,
    std::size_t workers, double radius,
    const spatial::UniformGridIndex* grid) {
  MMPH_REQUIRE(!points.empty(), "shard_indices: empty point set");
  const std::size_t n = points.size();
  std::size_t budget = config.max_shards;
  if (budget == 0) {
    // Auto: at least one shard per worker for parallelism, but also cap
    // shard size — the per-shard greedy is O(shard^2), so S shards cut
    // total work by ~S even on a single worker.
    constexpr std::size_t kTargetShardSize = 2048;
    budget = std::max(workers, (n + kTargetShardSize - 1) / kTargetShardSize);
  }
  budget = std::max<std::size_t>(budget, 1);
  const std::size_t min_size = std::max<std::size_t>(config.min_shard_size, 1);
  budget = std::min(budget, std::max<std::size_t>(n / min_size, 1));

  if (config.policy == ShardPolicy::kGridCells &&
      points.dim() <= spatial::kGridMaxDim) {
    const double cell =
        config.grid_cell_size > 0.0 ? config.grid_cell_size : radius;
    if (grid != nullptr && grid->size() == points.size() &&
        grid->dim() == points.dim() && grid->cell_size() == cell) {
      return grid_split(*grid, budget);
    }
    return grid_split(spatial::UniformGridIndex(points, radius, cell), budget);
  }
  std::vector<std::size_t> indices(n);
  std::iota(indices.begin(), indices.end(), 0);
  std::vector<std::vector<std::size_t>> out;
  median_split(points, indices, 0, n, budget, min_size, out);
  return out;
}

core::Solution lazy_greedy_over_pool(const core::Problem& problem,
                                     const geo::PointSet& pool, std::size_t k,
                                     const std::string& solver_name,
                                     par::ThreadPool* thread_pool,
                                     spatial::SpatialIndex* index) {
  MMPH_REQUIRE(k >= 1, "lazy_greedy_over_pool: k must be >= 1");
  MMPH_REQUIRE(!pool.empty(), "lazy_greedy_over_pool: empty candidate pool");
  MMPH_REQUIRE(pool.dim() == problem.dim(),
               "lazy_greedy_over_pool: pool dimension mismatch");

  core::Solution sol;
  sol.solver_name = solver_name;
  sol.centers = geo::PointSet(problem.dim());
  sol.centers.reserve(k);
  sol.residual = core::fresh_residual(problem);

  // Evaluation backends, strongest first: the spatial radius index (per
  // eval touches only points within coverage range), else a residual-aware
  // active set on the blocked kernels. All paths produce identical sums —
  // out-of-ball and exhausted points contribute exact zeros.
  const auto indexed = core::kernels::IndexedActiveSet::try_make(problem, index);
  const bool blocked = !indexed && core::kernels::blocked_enabled();
  std::optional<core::kernels::ActiveSet> active;
  if (blocked) active.emplace(problem);
  const auto evaluate = [&](std::size_t c) {
    if (indexed) return indexed->coverage_reward(pool[c]);
    return blocked ? active->coverage_reward(pool[c])
                   : core::coverage_reward(problem, pool[c], sol.residual);
  };

  struct Entry {
    double gain;
    std::size_t index;
    std::size_t round;
  };
  // Max-heap on gain, ties toward the lowest pool index (matches the
  // ascending-scan tie-breaking of core::LazyGreedySolver).
  const auto less = [](const Entry& a, const Entry& b) noexcept {
    if (a.gain != b.gain) return a.gain < b.gain;
    return a.index > b.index;
  };
  std::priority_queue<Entry, std::vector<Entry>, decltype(less)> heap(less);
  {
    // First-round scan of every pool candidate against the full population
    // — the dominant cost of the merge pass, sharded when a pool is given.
    const core::kernels::ParallelEvaluator evaluator(thread_pool);
    const std::vector<double> gains =
        evaluator.map(pool.size(), [&](std::size_t c) { return evaluate(c); });
    for (std::size_t c = 0; c < pool.size(); ++c) {
      heap.push(Entry{gains[c], c, 1});
    }
  }
  for (std::size_t round = 1; round <= k; ++round) {
    Entry top = heap.top();
    while (top.round != round) {
      heap.pop();
      top.gain = evaluate(top.index);
      top.round = round;
      heap.push(top);
      top = heap.top();
    }
    sol.centers.push_back(pool[top.index]);
    const double g =
        indexed ? indexed->apply_center(pool[top.index])
        : blocked
            ? active->apply_center(pool[top.index])
            : core::apply_center(problem, pool[top.index], sol.residual);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  if (indexed) {
    indexed->export_residual(sol.residual);
  } else if (blocked) {
    active->export_residual(sol.residual);
  }
  return sol;
}

ShardedSolver::ShardedSolver(par::ThreadPool& pool, ShardedSolverConfig config)
    : pool_(pool), config_(config) {}

core::Solution ShardedSolver::solve(const core::Problem& problem,
                                    std::size_t k) const {
  MMPH_REQUIRE(k >= 1, "solve: k must be >= 1");
  last_stats_ = ShardStats{};

  const auto shard_start = Clock::now();
  std::vector<std::vector<std::size_t>> shards;
  geo::PointSet candidates(problem.dim());

  // One grid, two consumers: the kGridCells split reuses the shared index's
  // cell assignment when the caller lent one (or builds a local grid that
  // then also backs the merge-pass evaluations), instead of the split and
  // the eval paths each deriving their own structure.
  const spatial::UniformGridIndex* split_grid =
      dynamic_cast<const spatial::UniformGridIndex*>(shared_index_);
  std::unique_ptr<spatial::UniformGridIndex> local_grid;
  spatial::SpatialIndex* eval_index = shared_index_;
  if (config_.policy == ShardPolicy::kGridCells && split_grid == nullptr &&
      shared_index_ == nullptr &&
      problem.dim() <= spatial::kGridMaxDim && problem.size() > 0 &&
      core::kernels::index_mode() != core::kernels::IndexMode::kNone) {
    const double cell = config_.grid_cell_size > 0.0 ? config_.grid_cell_size
                                                     : problem.radius();
    local_grid = std::make_unique<spatial::UniformGridIndex>(
        problem.points(), problem.radius(), cell);
    split_grid = local_grid.get();
    eval_index = local_grid.get();
  }

  {
    trace::ScopedSpan span("serve.shard");
    if (!row_groups_.empty()) {
      // The caller dictated the partition (the region-sharded store's
      // per-shard row ranges): solve exactly those groups, skip the
      // split computation entirely.
      MMPH_REQUIRE(row_groups_.back().second == problem.size(),
                   "solve: row groups do not cover the problem");
      shards.reserve(row_groups_.size());
      for (const auto& [begin, end] : row_groups_) {
        if (begin == end) continue;  // empty store shard
        std::vector<std::size_t> rows;
        rows.reserve(end - begin);
        for (std::size_t row = begin; row < end; ++row) rows.push_back(row);
        shards.push_back(std::move(rows));
      }
    } else {
      shards = shard_indices(problem.points(), config_, pool_.thread_count(),
                             problem.radius(), split_grid);
    }
    const std::size_t base_k =
        config_.per_shard_k == 0 ? k : config_.per_shard_k;

    // Each shard solves its own sub-problem and reports up to base_k
    // centers; results land in per-shard slots so the merged pool order is
    // deterministic regardless of scheduling.
    std::vector<geo::PointSet> shard_centers(shards.size(),
                                             geo::PointSet(problem.dim()));
    par::parallel_for(
        pool_, 0, shards.size(),
        [&](std::size_t s) {
          const std::vector<std::size_t>& members = shards[s];
          geo::PointSet points(problem.dim());
          points.reserve(members.size());
          std::vector<double> weights;
          weights.reserve(members.size());
          for (const std::size_t i : members) {
            points.push_back(problem.point(i));
            weights.push_back(problem.weight(i));
          }
          const core::Problem sub(std::move(points), std::move(weights),
                                  problem.radius(), problem.metric(),
                                  problem.reward_shape());
          const std::size_t shard_k =
              std::max<std::size_t>(1, std::min(base_k, members.size()));
          const core::Solution sol =
              core::LazyGreedySolver().solve(sub, shard_k);
          shard_centers[s] = sol.centers;
        },
        /*grain=*/1);

    for (const geo::PointSet& centers : shard_centers) {
      for (std::size_t j = 0; j < centers.size(); ++j) {
        candidates.push_back(centers[j]);
      }
    }
  }
  last_stats_.shards = shards.size();
  last_stats_.candidate_pool = candidates.size();
  last_stats_.shard_seconds = seconds_since(shard_start);

  const auto merge_start = Clock::now();
  core::Solution sol;
  {
    trace::ScopedSpan span("serve.merge");
    // solve() runs on the caller's thread (never on a pool_ worker), so
    // the merge pass can shard its first-round scan across pool_.
    sol = lazy_greedy_over_pool(problem, candidates, k, name(), &pool_,
                                eval_index);
  }
  last_stats_.merge_seconds = seconds_since(merge_start);
  last_candidates_ = std::move(candidates);
  return sol;
}

}  // namespace mmph::serve
