#include "mmph/serve/sharded_store.hpp"

#include <string>
#include <utility>

#include "mmph/support/assert.hpp"
#include "mmph/support/error.hpp"

namespace mmph::serve {

ShardedInstanceStore::ShardedInstanceStore(std::size_t dim,
                                           std::size_t shards,
                                           double region_cell)
    : dim_(dim), regions_(dim, region_cell, shards) {
  MMPH_REQUIRE(shards >= 1, "ShardedInstanceStore: shards must be >= 1");
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) shards_.emplace_back(dim_);
  cache_.resize(shards, StoreSnapshot{0, geo::PointSet(dim_), {}, {}});
  cache_valid_.assign(shards, false);
}

std::size_t ShardedInstanceStore::size() const noexcept {
  return owner_.size();
}

std::uint64_t ShardedInstanceStore::epoch() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.epoch();
  return sum;
}

std::optional<std::size_t> ShardedInstanceStore::shard_of_id(
    std::uint64_t id) const {
  auto it = owner_.find(id);
  if (it == owner_.end()) return std::nullopt;
  return it->second;
}

ShardedInstanceStore::UpsertRoute ShardedInstanceStore::route_upsert(
    const UserRecord& user) const {
  if (user.interest.size() != dim_) {
    throw InvalidArgument("ShardedInstanceStore: interest dimension " +
                          std::to_string(user.interest.size()) +
                          " != store dim " + std::to_string(dim_));
  }
  UpsertRoute route;
  route.to = regions_.shard_of(
      geo::ConstVec(user.interest.data(), user.interest.size()));
  route.from = shard_of_id(user.id);
  return route;
}

ShardedInstanceStore::UpsertRoute ShardedInstanceStore::upsert(
    const UserRecord& user) {
  UpsertRoute route = route_upsert(user);
  if (route.is_move()) {
    // Remove-then-insert across the region boundary. The insert is
    // validated by route_upsert (dim) and by InstanceStore (weight), so
    // pre-validate the weight before the remove mutates anything.
    if (!(user.weight > 0.0)) {
      throw InvalidArgument("ShardedInstanceStore: weight must be positive");
    }
    shards_[*route.from].remove(user.id);
    owner_.erase(user.id);
    shards_[route.to].upsert(user);
    owner_.emplace(user.id, route.to);
    route.inserted = true;  // the target shard gained a row
  } else {
    route.inserted = shards_[route.to].upsert(user);
    owner_[user.id] = route.to;
  }
  return route;
}

std::optional<std::size_t> ShardedInstanceStore::remove(std::uint64_t id) {
  auto it = owner_.find(id);
  if (it == owner_.end()) return std::nullopt;
  const std::size_t s = it->second;
  const bool removed = shards_[s].remove(id);
  MMPH_ASSERT(removed, "ShardedInstanceStore: owner map out of sync");
  owner_.erase(it);
  return s;
}

std::optional<UserRecord> ShardedInstanceStore::find(std::uint64_t id) const {
  auto it = owner_.find(id);
  if (it == owner_.end()) return std::nullopt;
  return shards_[it->second].find(id);
}

void ShardedInstanceStore::restore_shard(std::size_t s, std::uint64_t epoch,
                                         std::vector<std::uint64_t> ids,
                                         std::vector<double> weights,
                                         std::vector<double> coords) {
  MMPH_REQUIRE(s < shards_.size(), "ShardedInstanceStore: shard out of range");
  for (std::uint64_t id : ids) {
    auto it = owner_.find(id);
    if (it != owner_.end() && it->second != s) {
      throw InvalidArgument(
          "ShardedInstanceStore: restore_shard id " + std::to_string(id) +
          " already resident in shard " + std::to_string(it->second));
    }
  }
  // Drop the shard's old ids from the owner map, install the new set.
  for (auto it = owner_.begin(); it != owner_.end();) {
    if (it->second == s) {
      it = owner_.erase(it);
    } else {
      ++it;
    }
  }
  shards_[s].restore(epoch, ids, std::move(weights), std::move(coords));
  for (std::uint64_t id : ids) owner_.emplace(id, s);
  cache_valid_[s] = false;
}

std::uint64_t ShardedInstanceStore::churn_since_snapshot() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& s : shards_) sum += s.churn_since_snapshot();
  return sum;
}

const StoreSnapshot& ShardedInstanceStore::shard_snapshot(std::size_t s) {
  MMPH_REQUIRE(s < shards_.size(), "ShardedInstanceStore: shard out of range");
  if (!cache_valid_[s] || cache_[s].epoch != shards_[s].epoch()) {
    cache_[s] = shards_[s].snapshot();
    cache_valid_[s] = true;
  }
  return cache_[s];
}

StoreSnapshot ShardedInstanceStore::global_snapshot() {
  if (shards_.size() == 1) return shard_snapshot(0);
  StoreSnapshot out;
  out.epoch = epoch();
  out.points = geo::PointSet(dim_);
  out.points.reserve(size());
  out.weights.reserve(size());
  out.ids.reserve(size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const StoreSnapshot& part = shard_snapshot(s);
    for (std::size_t i = 0; i < part.size(); ++i) {
      out.points.push_back(part.points[i]);
    }
    out.weights.insert(out.weights.end(), part.weights.begin(),
                       part.weights.end());
    out.ids.insert(out.ids.end(), part.ids.begin(), part.ids.end());
  }
  return out;
}

std::vector<std::pair<std::size_t, std::size_t>>
ShardedInstanceStore::shard_row_ranges() const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(shards_.size());
  std::size_t begin = 0;
  for (const auto& s : shards_) {
    ranges.emplace_back(begin, begin + s.size());
    begin += s.size();
  }
  return ranges;
}

}  // namespace mmph::serve
