#include "mmph/serve/metrics.hpp"

#include <string>

namespace mmph::serve {

ServeMetrics::ServeMetrics()
    : submitted_(&registry_.counter("mmph_serve_submitted_total",
                                    "requests accepted into the queue")),
      rejected_full_(&registry_.counter("mmph_serve_rejected_total",
                                        "requests shed: queue full")),
      timeouts_(&registry_.counter("mmph_serve_timeouts_total",
                                   "requests expired while queued")),
      shutdown_(&registry_.counter("mmph_serve_shutdown_total",
                                   "requests answered kShutdown")),
      bad_requests_(&registry_.counter("mmph_serve_bad_requests_total",
                                       "requests answered kBadRequest")),
      internal_errors_(
          &registry_.counter("mmph_serve_internal_errors_total",
                             "requests answered kInternalError")),
      batches_(&registry_.counter("mmph_serve_batches_total",
                                  "worker batches processed")),
      batched_requests_(&registry_.counter(
          "mmph_serve_batched_requests_total", "requests across batches")),
      mutations_(&registry_.counter("mmph_serve_mutations_total",
                                    "add/remove requests applied")),
      queries_(&registry_.counter("mmph_serve_queries_total",
                                  "placement/evaluate requests answered")),
      full_solves_(&registry_.counter("mmph_serve_full_solves_total",
                                      "full sharded re-solves")),
      incremental_solves_(
          &registry_.counter("mmph_serve_incremental_solves_total",
                             "incremental warm re-solves")),
      queue_depth_(&registry_.gauge("mmph_serve_queue_depth",
                                    "requests currently queued")),
      repl_lag_ops_(&registry_.gauge("mmph_repl_lag_ops",
                                     "replication lag in applied ops")),
      spatial_queries_(&registry_.counter("mmph_spatial_queries_total",
                                          "coverage-index radius queries")),
      spatial_points_touched_(
          &registry_.counter("mmph_spatial_points_touched_total",
                             "points returned across index queries")),
      spatial_updates_(
          &registry_.counter("mmph_spatial_incremental_updates_total",
                             "index add/update/swap-remove operations")),
      spatial_rebuilds_(&registry_.counter("mmph_spatial_rebuilds_total",
                                           "index bulk (re)builds")),
      ls_moves_(&registry_.counter("mmph_ls_moves_total",
                                   "committed local-search shift/swap moves")),
      ls_improvements_(
          &registry_.counter("mmph_ls_improvements_total",
                             "solves where the ls polish beat its seed")),
      ls_evals_(&registry_.counter("mmph_ls_evals_total",
                                   "local-search delta evaluations")),
      solve_seconds_(&registry_.histogram("mmph_serve_solve_seconds",
                                          "placement solve latency")) {}

void ServeMetrics::configure_store_shards(std::size_t shards) {
  if (!shard_mutations_.empty()) return;  // idempotent
  shard_mutations_.reserve(shards);
  shard_rows_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    const std::string label = "{shard=\"" + std::to_string(s) + "\"}";
    shard_mutations_.push_back(
        &registry_.counter("mmph_store_shard_mutations_total" + label,
                           "mutations routed to each store shard"));
    shard_rows_.push_back(&registry_.gauge("mmph_store_shard_rows" + label,
                                           "live rows per store shard"));
  }
  affinity_hits_ = &registry_.counter(
      "mmph_store_shard_affinity_hits_total",
      "mutations whose event loop mapped to their store shard");
  affinity_misses_ = &registry_.counter(
      "mmph_store_shard_affinity_misses_total",
      "mutations routed across the loop->shard mapping");
}

void ServeMetrics::count_shard_mutations(std::size_t shard, std::uint64_t n) {
  if (shard < shard_mutations_.size()) shard_mutations_[shard]->add(n);
}

void ServeMetrics::set_shard_rows(std::size_t shard, std::size_t rows) {
  if (shard < shard_rows_.size()) {
    shard_rows_[shard]->set(static_cast<double>(rows));
  }
}

void ServeMetrics::count_affinity(bool hit) {
  if (affinity_hits_ == nullptr) return;
  (hit ? affinity_hits_ : affinity_misses_)->add();
}

void ServeMetrics::add_spatial(const spatial::IndexStats& delta) {
  spatial_queries_->add(delta.queries);
  spatial_points_touched_->add(delta.points_touched);
  spatial_updates_->add(delta.incremental_updates);
  spatial_rebuilds_->add(delta.rebuilds);
}

void ServeMetrics::record_batch(std::size_t size) {
  batches_->add();
  batched_requests_->add(size);
}

void ServeMetrics::record_solve(double seconds, bool incremental) {
  if (incremental) {
    incremental_solves_->add();
  } else {
    full_solves_->add();
  }
  solve_seconds_->observe(seconds);
}

MetricsSnapshot ServeMetrics::snapshot() const {
  MetricsSnapshot snap;
  snap.submitted = submitted_->value();
  snap.rejected_full = rejected_full_->value();
  snap.timeouts = timeouts_->value();
  snap.shutdown = shutdown_->value();
  snap.bad_requests = bad_requests_->value();
  snap.internal_errors = internal_errors_->value();
  snap.batches = batches_->value();
  snap.batched_requests = batched_requests_->value();
  snap.mutations = mutations_->value();
  snap.queries = queries_->value();
  snap.full_solves = full_solves_->value();
  snap.incremental_solves = incremental_solves_->value();
  snap.queue_depth = static_cast<std::size_t>(queue_depth_->value());
  snap.repl_lag_ops = repl_lag_ops_->value();
  snap.spatial_queries = spatial_queries_->value();
  snap.spatial_points_touched = spatial_points_touched_->value();
  snap.spatial_incremental_updates = spatial_updates_->value();
  snap.spatial_rebuilds = spatial_rebuilds_->value();
  snap.ls_moves = ls_moves_->value();
  snap.ls_improvements = ls_improvements_->value();
  snap.ls_evals = ls_evals_->value();
  snap.mean_batch_size =
      snap.batches == 0 ? 0.0
                        : static_cast<double>(snap.batched_requests) /
                              static_cast<double>(snap.batches);
  const obs::HistogramSnapshot hist = solve_seconds_->snapshot();
  snap.solve_p50_seconds = hist.quantile(0.50);
  snap.solve_p99_seconds = hist.quantile(0.99);
  snap.total_solve_seconds = hist.sum;
  return snap;
}

}  // namespace mmph::serve
