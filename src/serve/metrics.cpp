#include "mmph/serve/metrics.hpp"

#include "mmph/io/stats.hpp"

namespace mmph::serve {

void ServeMetrics::count_submitted() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.submitted;
}

void ServeMetrics::count_rejected() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.rejected_full;
}

void ServeMetrics::count_timeout() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.timeouts;
}

void ServeMetrics::count_shutdown() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.shutdown;
}

void ServeMetrics::count_mutations(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.mutations += n;
}

void ServeMetrics::count_queries(std::uint64_t n) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.queries += n;
}

void ServeMetrics::record_batch(std::size_t size) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++counters_.batches;
  counters_.batched_requests += size;
}

void ServeMetrics::record_solve(double seconds, bool incremental) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (incremental) {
    ++counters_.incremental_solves;
  } else {
    ++counters_.full_solves;
  }
  counters_.total_solve_seconds += seconds;
  if (solve_seconds_.size() >= kMaxSolveSamples) {
    solve_seconds_.erase(solve_seconds_.begin(),
                         solve_seconds_.begin() + kMaxSolveSamples / 2);
  }
  solve_seconds_.push_back(seconds);
}

void ServeMetrics::set_queue_depth(std::size_t depth) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_.queue_depth = depth;
}

MetricsSnapshot ServeMetrics::snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap = counters_;
  snap.mean_batch_size =
      snap.batches == 0 ? 0.0
                        : static_cast<double>(snap.batched_requests) /
                              static_cast<double>(snap.batches);
  if (!solve_seconds_.empty()) {
    snap.solve_p50_seconds = io::percentile(solve_seconds_, 0.50);
    snap.solve_p99_seconds = io::percentile(solve_seconds_, 0.99);
  }
  return snap;
}

void ServeMetrics::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_ = MetricsSnapshot{};
  solve_seconds_.clear();
}

}  // namespace mmph::serve
