#include "mmph/io/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "mmph/support/assert.hpp"

namespace mmph::io {

std::string fixed(double v, int decimals) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(decimals) << v;
  return os.str();
}

std::string percent(double v, int decimals) {
  return fixed(v * 100.0, decimals) + "%";
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  MMPH_REQUIRE(!headers_.empty(), "Table needs at least one column");
}

void Table::add_row(std::vector<std::string> cells) {
  MMPH_REQUIRE(cells.size() == headers_.size(),
               "Table row width does not match header");
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(width[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  print_row(headers_);
  {
    std::vector<std::string> rule(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule[c] = std::string(width[c], '-');
    }
    print_row(rule);
  }
  for (const auto& row : rows_) print_row(row);
}

namespace {

std::string csv_escape(const std::string& cell) {
  if (cell.find_first_of(",\"\n") == std::string::npos) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

}  // namespace

void Table::print_markdown(std::ostream& os) const {
  const auto escape = [](const std::string& cell) {
    std::string out;
    out.reserve(cell.size());
    for (char ch : cell) {
      if (ch == '|') out += '\\';
      out += ch;
    }
    return out;
  };
  const auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (const std::string& cell : row) os << ' ' << escape(cell) << " |";
    os << '\n';
  };
  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) os << "---|";
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void Table::print_csv(std::ostream& os) const {
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  print_row(headers_);
  for (const auto& row : rows_) print_row(row);
}

}  // namespace mmph::io
