#include "mmph/io/args.hpp"

#include <cstdlib>
#include <sstream>

#include "mmph/support/error.hpp"

namespace mmph::io {

Args::Args(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0 || token.size() <= 2) {
      throw ParseError("unexpected argument '" + token +
                       "' (flags look like --name[=value])");
    }
    token.erase(0, 2);
    const std::size_t eq = token.find('=');
    if (eq != std::string::npos) {
      values_[token.substr(0, eq)] = token.substr(eq + 1);
      continue;
    }
    // `--name value` when the next token is not itself a flag.
    if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[token] = argv[i + 1];
      ++i;
    } else {
      values_[token] = "";  // bare boolean flag
    }
  }
}

bool Args::has(const std::string& name) const {
  const bool present = values_.count(name) > 0;
  if (present) consumed_.insert(name);
  return present;
}

std::int64_t Args::get_int(const std::string& name, std::int64_t fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_.insert(name);
  try {
    std::size_t pos = 0;
    const std::int64_t v = std::stoll(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError("flag --" + name + " expects an integer, got '" +
                     it->second + "'");
  }
}

double Args::get_double(const std::string& name, double fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_.insert(name);
  try {
    std::size_t pos = 0;
    const double v = std::stod(it->second, &pos);
    if (pos != it->second.size()) throw std::invalid_argument("trailing");
    return v;
  } catch (const std::exception&) {
    throw ParseError("flag --" + name + " expects a number, got '" +
                     it->second + "'");
  }
}

std::string Args::get_string(const std::string& name, std::string fallback) {
  auto it = values_.find(name);
  if (it == values_.end()) return fallback;
  consumed_.insert(name);
  return it->second;
}

bool Args::get_flag(const std::string& name) {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  consumed_.insert(name);
  const std::string& v = it->second;
  if (v.empty() || v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw ParseError("flag --" + name + " expects a boolean, got '" + v + "'");
}

void Args::finish() const {
  std::ostringstream unknown;
  bool any = false;
  for (const auto& [key, value] : values_) {
    (void)value;
    if (!consumed_.count(key)) {
      unknown << (any ? ", " : "") << "--" << key;
      any = true;
    }
  }
  if (any) {
    throw ParseError("unknown flag(s): " + unknown.str());
  }
}

}  // namespace mmph::io
