#include "mmph/io/stats.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/support/assert.hpp"

namespace mmph::io {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::ci95_half_width() const noexcept {
  if (n_ < 2) return 0.0;
  return 1.96 * stddev() / std::sqrt(static_cast<double>(n_));
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_inplace(std::vector<double>& sample, double q) {
  MMPH_REQUIRE(!sample.empty(), "percentile of empty sample");
  MMPH_REQUIRE(q >= 0.0 && q <= 1.0, "percentile q must be in [0,1]");
  std::sort(sample.begin(), sample.end());
  const double pos = q * static_cast<double>(sample.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sample.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sample[lo] + frac * (sample[hi] - sample[lo]);
}

double percentile(std::vector<double> sample, double q) {
  return percentile_inplace(sample, q);
}

double jain_fairness(const std::vector<double>& x) {
  double sum = 0.0;
  double sum_sq = 0.0;
  for (double v : x) {
    sum += v;
    sum_sq += v * v;
  }
  if (x.empty() || sum_sq == 0.0) return 1.0;
  return (sum * sum) / (static_cast<double>(x.size()) * sum_sq);
}

}  // namespace mmph::io
