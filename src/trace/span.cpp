#include "mmph/trace/span.hpp"

#include <algorithm>

namespace mmph::trace {

SpanCollector& SpanCollector::global() {
  static SpanCollector collector;
  return collector;
}

namespace {

/// Span names are dotted ("serve.solve.full"); Prometheus metric names
/// only allow [a-zA-Z0-9_:], so anything else becomes '_'.
std::string metric_name_for_span(const std::string& span_name) {
  std::string out = "mmph_span_";
  for (char c : span_name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  out += "_seconds";
  return out;
}

}  // namespace

void SpanCollector::record(const std::string& name, double seconds) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Cell& cell = cells_[name];
  ++cell.count;
  cell.total_seconds += seconds;
  cell.max_seconds = std::max(cell.max_seconds, seconds);
  if (cell.histogram == nullptr) {
    cell.histogram = &registry_.histogram(metric_name_for_span(name),
                                          "span duration: " + name);
  }
  cell.histogram->observe(seconds);
}

std::vector<SpanStats> SpanCollector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanStats> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {
    out.push_back(
        SpanStats{name, cell.count, cell.total_seconds, cell.max_seconds});
  }
  return out;  // std::map iteration is already name-sorted
}

void SpanCollector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_.clear();
  registry_.reset();
}

}  // namespace mmph::trace
