#include "mmph/trace/span.hpp"

#include <algorithm>

namespace mmph::trace {

SpanCollector& SpanCollector::global() {
  static SpanCollector collector;
  return collector;
}

void SpanCollector::record(const std::string& name, double seconds) {
  if (!enabled()) return;
  std::lock_guard<std::mutex> lock(mutex_);
  Cell& cell = cells_[name];
  ++cell.count;
  cell.total_seconds += seconds;
  cell.max_seconds = std::max(cell.max_seconds, seconds);
}

std::vector<SpanStats> SpanCollector::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SpanStats> out;
  out.reserve(cells_.size());
  for (const auto& [name, cell] : cells_) {
    out.push_back(
        SpanStats{name, cell.count, cell.total_seconds, cell.max_seconds});
  }
  return out;  // std::map iteration is already name-sorted
}

void SpanCollector::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_.clear();
}

}  // namespace mmph::trace
