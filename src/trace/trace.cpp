#include "mmph/trace/trace.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "mmph/support/assert.hpp"

namespace mmph::trace {
namespace {

constexpr int kDigits = std::numeric_limits<double>::max_digits10;

void expect_token(std::istream& is, const std::string& want) {
  std::string got;
  if (!(is >> got) || got != want) {
    throw ParseError("trace: expected '" + want + "', got '" + got + "'");
  }
}

double read_double(std::istream& is, const char* what) {
  double v = 0.0;
  if (!(is >> v)) {
    throw ParseError(std::string("trace: malformed number for ") + what);
  }
  return v;
}

std::size_t read_size(std::istream& is, const char* what) {
  long long v = 0;
  if (!(is >> v) || v < 0) {
    throw ParseError(std::string("trace: malformed count for ") + what);
  }
  return static_cast<std::size_t>(v);
}

geo::Metric read_metric(std::istream& is) {
  expect_token(is, "metric");
  std::string name;
  if (!(is >> name)) throw ParseError("trace: missing metric name");
  if (name == "L1") return geo::l1_metric();
  if (name == "L2") return geo::l2_metric();
  if (name == "Linf") return geo::linf_metric();
  if (name == "Lp") return geo::Metric(read_double(is, "metric p"));
  throw ParseError("trace: unknown metric '" + name + "'");
}

void write_metric(std::ostream& os, const geo::Metric& metric) {
  switch (metric.norm()) {
    case geo::Norm::kL1:
      os << "metric L1\n";
      return;
    case geo::Norm::kL2:
      os << "metric L2\n";
      return;
    case geo::Norm::kLinf:
      os << "metric Linf\n";
      return;
    case geo::Norm::kLp:
      os << "metric Lp " << std::setprecision(kDigits) << metric.p() << "\n";
      return;
  }
}

}  // namespace

void write_problem(std::ostream& os, const core::Problem& problem) {
  os << "mmph-problem v1\n";
  os << "dim " << problem.dim() << "\n";
  write_metric(os, problem.metric());
  os << std::setprecision(kDigits);
  os << "radius " << problem.radius() << "\n";
  os << "shape " << core::reward_shape_name(problem.reward_shape()) << "\n";
  os << "n " << problem.size() << "\n";
  for (std::size_t i = 0; i < problem.size(); ++i) {
    os << "point " << problem.weight(i);
    for (double v : problem.point(i)) os << " " << v;
    os << "\n";
  }
}

core::Problem read_problem(std::istream& is) {
  expect_token(is, "mmph-problem");
  expect_token(is, "v1");
  expect_token(is, "dim");
  const std::size_t dim = read_size(is, "dim");
  if (dim == 0) throw ParseError("trace: dim must be >= 1");
  const geo::Metric metric = read_metric(is);
  expect_token(is, "radius");
  const double radius = read_double(is, "radius");
  expect_token(is, "shape");
  std::string shape_name;
  if (!(is >> shape_name)) throw ParseError("trace: missing reward shape");
  core::RewardShape shape;
  if (shape_name == "linear") {
    shape = core::RewardShape::kLinear;
  } else if (shape_name == "binary") {
    shape = core::RewardShape::kBinary;
  } else {
    throw ParseError("trace: unknown reward shape '" + shape_name + "'");
  }
  expect_token(is, "n");
  const std::size_t n = read_size(is, "n");

  geo::PointSet points(dim);
  points.reserve(n);
  std::vector<double> weights;
  weights.reserve(n);
  std::vector<double> row(dim);
  for (std::size_t i = 0; i < n; ++i) {
    expect_token(is, "point");
    weights.push_back(read_double(is, "weight"));
    for (std::size_t d = 0; d < dim; ++d) row[d] = read_double(is, "coord");
    points.push_back(row);
  }
  try {
    return core::Problem(std::move(points), std::move(weights), radius,
                         metric, shape);
  } catch (const InvalidArgument& e) {
    throw ParseError(std::string("trace: invalid problem: ") + e.what());
  }
}

void write_solution(std::ostream& os, const core::Solution& solution) {
  MMPH_REQUIRE(solution.round_rewards.size() == solution.centers.size(),
               "trace: solution accounting out of sync");
  os << "mmph-solution v1\n";
  os << "solver " << (solution.solver_name.empty() ? "?"
                                                   : solution.solver_name)
     << "\n";
  os << "dim " << solution.centers.dim() << "\n";
  os << "k " << solution.centers.size() << "\n";
  os << std::setprecision(kDigits);
  os << "total " << solution.total_reward << "\n";
  for (std::size_t j = 0; j < solution.centers.size(); ++j) {
    os << "center " << solution.round_rewards[j];
    for (double v : solution.centers[j]) os << " " << v;
    os << "\n";
  }
}

core::Solution read_solution(std::istream& is) {
  expect_token(is, "mmph-solution");
  expect_token(is, "v1");
  expect_token(is, "solver");
  core::Solution sol;
  if (!(is >> sol.solver_name)) {
    throw ParseError("trace: missing solver name");
  }
  expect_token(is, "dim");
  const std::size_t dim = read_size(is, "dim");
  if (dim == 0) throw ParseError("trace: dim must be >= 1");
  expect_token(is, "k");
  const std::size_t k = read_size(is, "k");
  expect_token(is, "total");
  sol.total_reward = read_double(is, "total");

  sol.centers = geo::PointSet(dim);
  sol.centers.reserve(k);
  std::vector<double> row(dim);
  for (std::size_t j = 0; j < k; ++j) {
    expect_token(is, "center");
    sol.round_rewards.push_back(read_double(is, "round reward"));
    for (std::size_t d = 0; d < dim; ++d) row[d] = read_double(is, "coord");
    sol.centers.push_back(row);
  }
  return sol;
}

namespace {

std::ofstream open_out(const std::string& path) {
  std::ofstream os(path);
  if (!os) throw StateError("trace: cannot open '" + path + "' for writing");
  return os;
}

std::ifstream open_in(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw StateError("trace: cannot open '" + path + "' for reading");
  return is;
}

}  // namespace

void save_problem(const std::string& path, const core::Problem& problem) {
  auto os = open_out(path);
  write_problem(os, problem);
}

core::Problem load_problem(const std::string& path) {
  auto is = open_in(path);
  return read_problem(is);
}

void save_solution(const std::string& path, const core::Solution& solution) {
  auto os = open_out(path);
  write_solution(os, solution);
}

core::Solution load_solution(const std::string& path) {
  auto is = open_in(path);
  return read_solution(is);
}

}  // namespace mmph::trace
