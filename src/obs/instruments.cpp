#include "mmph/obs/instruments.hpp"

#include <algorithm>
#include <cmath>

namespace mmph::obs {

std::size_t bucket_index(double value) noexcept {
  if (!std::isfinite(value)) return kBucketCount - 1;
  const auto it =
      std::lower_bound(kBucketBounds.begin(), kBucketBounds.end(), value);
  return static_cast<std::size_t>(it - kBucketBounds.begin());
}

double HistogramSnapshot::quantile(double q) const noexcept {
  if (count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  // Rank of the target observation, 1-based; q=0 means the first one.
  const double rank = std::max(1.0, q * static_cast<double>(count));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t prev = cumulative;
    cumulative += buckets[i];
    if (static_cast<double>(cumulative) >= rank) {
      if (i == kBucketCount - 1) {
        // Overflow bucket has no finite upper bound; report the largest
        // finite boundary rather than inventing a value beyond it.
        return kBucketBounds.back();
      }
      const double lower = (i == 0) ? 0.0 : kBucketBounds[i - 1];
      const double upper = kBucketBounds[i];
      const double in_bucket = static_cast<double>(buckets[i]);
      const double position = rank - static_cast<double>(prev);
      return lower + (upper - lower) * (position / in_bucket);
    }
  }
  return kBucketBounds.back();
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot snap;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    snap.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
    snap.count += snap.buckets[i];
  }
  snap.sum = sum_.load(std::memory_order_relaxed);
  return snap;
}

std::uint64_t Histogram::count() const noexcept {
  std::uint64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

}  // namespace mmph::obs
