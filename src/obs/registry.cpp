#include "mmph/obs/registry.hpp"

#include <cstdio>
#include <sstream>

#include "mmph/support/assert.hpp"

namespace mmph::obs {

namespace {

/// Shortest round-trippable decimal for a double ("%.17g" is exact but
/// ugly; "%.9g" survives parsing for every value these metrics produce
/// while keeping the exposition readable).
std::string format_double(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.9g", v);
  return buf;
}

}  // namespace

Counter& Registry::counter(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    MMPH_REQUIRE(entry.kind == Kind::kCounter,
                 "metric registered with a different instrument kind");
    return *entry.counter;
  }
  counters_.emplace_back();
  Entry entry{std::string(name), std::string(help), Kind::kCounter,
              &counters_.back(), nullptr, nullptr};
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
  return counters_.back();
}

Gauge& Registry::gauge(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    MMPH_REQUIRE(entry.kind == Kind::kGauge,
                 "metric registered with a different instrument kind");
    return *entry.gauge;
  }
  gauges_.emplace_back();
  Entry entry{std::string(name), std::string(help), Kind::kGauge, nullptr,
              &gauges_.back(), nullptr};
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
  return gauges_.back();
}

Histogram& Registry::histogram(std::string_view name, std::string_view help) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(std::string(name));
  if (it != index_.end()) {
    Entry& entry = entries_[it->second];
    MMPH_REQUIRE(entry.kind == Kind::kHistogram,
                 "metric registered with a different instrument kind");
    return *entry.histogram;
  }
  MMPH_REQUIRE(name.find('{') == std::string_view::npos,
               "histogram names cannot carry inline labels");
  histograms_.emplace_back();
  Entry entry{std::string(name), std::string(help), Kind::kHistogram, nullptr,
              nullptr, &histograms_.back()};
  index_.emplace(entry.name, entries_.size());
  entries_.push_back(std::move(entry));
  return histograms_.back();
}

void Registry::write_exposition(std::ostream& out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string last_family;  // dedupe headers of labeled same-base series
  for (const Entry& entry : entries_) {
    const std::size_t brace = entry.name.find('{');
    const std::string family = entry.name.substr(0, brace);
    const bool new_family = family != last_family;
    last_family = family;
    if (new_family && !entry.help.empty()) {
      out << "# HELP " << family << ' ' << entry.help << '\n';
    }
    switch (entry.kind) {
      case Kind::kCounter:
        if (new_family) out << "# TYPE " << family << " counter\n";
        out << entry.name << ' ' << entry.counter->value() << '\n';
        break;
      case Kind::kGauge:
        if (new_family) out << "# TYPE " << family << " gauge\n";
        out << entry.name << ' ' << format_double(entry.gauge->value())
            << '\n';
        break;
      case Kind::kHistogram: {
        out << "# TYPE " << entry.name << " histogram\n";
        const HistogramSnapshot snap = entry.histogram->snapshot();
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i + 1 < kBucketCount; ++i) {
          cumulative += snap.buckets[i];
          out << entry.name << "_bucket{le=\""
              << format_double(kBucketBounds[i]) << "\"} " << cumulative
              << '\n';
        }
        out << entry.name << "_bucket{le=\"+Inf\"} " << snap.count << '\n';
        out << entry.name << "_sum " << format_double(snap.sum) << '\n';
        out << entry.name << "_count " << snap.count << '\n';
        break;
      }
    }
  }
}

std::string Registry::exposition_text() const {
  std::ostringstream out;
  write_exposition(out);
  return out.str();
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (Counter& c : counters_) c.reset();
  for (Gauge& g : gauges_) g.reset();
  for (Histogram& h : histograms_) h.reset();
}

}  // namespace mmph::obs
