#include "mmph/support/error.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace mmph::detail {

std::string format_requirement(const char* cond, const char* file, int line,
                               const char* msg) {
  std::ostringstream os;
  os << "precondition violated: " << msg << " [" << cond << "] at " << file
     << ":" << line;
  return os.str();
}

void assert_fail(const char* cond, const char* file, int line,
                 const char* msg) noexcept {
  std::fprintf(stderr, "mmph: internal invariant failed: %s [%s] at %s:%d\n",
               msg, cond, file, line);
  std::abort();
}

}  // namespace mmph::detail
