#include "mmph/ls/bounds.hpp"

#include <algorithm>
#include <functional>
#include <vector>

#include "mmph/core/bounds.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::ls {

double UpperBounds::best() const noexcept {
  return std::min(std::min(ratio_bound, submodular_bound),
                  std::min(marginal_bound, weight_bound));
}

UpperBounds certified_upper_bounds(const core::Problem& problem, std::size_t k,
                                   const core::Solution& greedy_reference,
                                   const geo::PointSet& candidates,
                                   par::ThreadPool* pool) {
  MMPH_REQUIRE(k >= 1, "certified_upper_bounds: k must be >= 1");
  MMPH_REQUIRE(!candidates.empty(),
               "certified_upper_bounds: empty candidate set");
  MMPH_REQUIRE(candidates.dim() == problem.dim(),
               "certified_upper_bounds: candidate dimension mismatch");

  UpperBounds bounds;
  bounds.reference_value = greedy_reference.total_reward;
  bounds.weight_bound = problem.total_weight();
  bounds.ratio_bound =
      bounds.reference_value / core::approx_ratio_round_based(k);
  bounds.submodular_bound = bounds.reference_value / core::one_minus_inv_e();

  // Residual after the reference solution: y_i = 1 - min(total_i, 1), so
  // coverage_reward(c, y) is the exact marginal gain f(S + c) - f(S).
  std::vector<double> residual = core::fresh_residual(problem);
  for (std::size_t j = 0; j < greedy_reference.centers.size(); ++j) {
    (void)core::apply_center(problem, greedy_reference.centers[j], residual);
  }
  std::vector<double> gains = core::kernels::ParallelEvaluator(pool).pool_gains(
      problem, candidates, residual);

  // Sum the k largest marginals (all gains are >= 0 by construction).
  const std::size_t top = std::min(k, gains.size());
  std::partial_sort(gains.begin(), gains.begin() + static_cast<std::ptrdiff_t>(top),
                    gains.end(), std::greater<double>());
  double topk_sum = 0.0;
  for (std::size_t i = 0; i < top; ++i) topk_sum += gains[i];
  bounds.marginal_bound = bounds.reference_value + topk_sum;
  return bounds;
}

}  // namespace mmph::ls
