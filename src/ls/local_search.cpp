#include "mmph/ls/local_search.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::ls {

namespace {
constexpr std::size_t kNoSlot = std::numeric_limits<std::size_t>::max();
}  // namespace

DeltaEvaluator::DeltaEvaluator(const core::Problem& problem,
                               const geo::PointSet& centers,
                               spatial::SpatialIndex* borrowed_index)
    : problem_(problem), centers_(centers), ball_old_slot_(kNoSlot) {
  MMPH_REQUIRE(centers_.dim() == problem.dim(),
               "DeltaEvaluator: center dimension mismatch");
  MMPH_REQUIRE(!centers_.empty(), "DeltaEvaluator: empty center set");
  if (borrowed_index != nullptr) {
    MMPH_REQUIRE(borrowed_index->size() == problem.size() &&
                     borrowed_index->dim() == problem.dim() &&
                     borrowed_index->radius() == problem.radius(),
                 "DeltaEvaluator: borrowed index does not match the problem");
    // A prior indexed solve may have masked residual-exhausted points;
    // delta evaluation needs the whole population visible.
    borrowed_index->unmask_all();
    index_ = borrowed_index;
  } else {
    owned_ = spatial::make_index(problem.points(), problem.radius(),
                                 problem.metric());
    index_ = owned_.get();
  }

  const std::size_t n = problem_.size();
  const std::size_t k = centers_.size();
  units_.assign(k * n, 0.0);
  totals_.assign(n, 0.0);
  for (std::size_t j = 0; j < k; ++j) {
    index_->query(centers_[j], ball_new_);
    for (const std::size_t i : ball_new_) {
      const double u = core::unit_coverage(problem_, centers_[j], i);
      units_[j * n + i] = u;
      totals_[i] += u;
    }
  }
  value_ = exact_value();
}

double DeltaEvaluator::exact_value() const {
  double f = 0.0;
  for (std::size_t i = 0; i < totals_.size(); ++i) {
    f += problem_.weight(i) * std::min(totals_[i], 1.0);
  }
  return f;
}

void DeltaEvaluator::gather_touched(std::size_t j,
                                    geo::ConstVec candidate) const {
  if (ball_old_slot_ != j) {
    index_->query(centers_[j], ball_old_);
    ball_old_slot_ = j;
  }
  index_->query(candidate, ball_new_);
  // Merge the two ascending id lists (spatial contract: strictly
  // ascending), so the delta accumulates in ascending point order — the
  // same association every time, hence bit-reproducible polishes.
  touched_.clear();
  std::set_union(ball_old_.begin(), ball_old_.end(), ball_new_.begin(),
                 ball_new_.end(), std::back_inserter(touched_));
}

double DeltaEvaluator::delta_for_swap(std::size_t j,
                                      geo::ConstVec candidate) const {
  MMPH_REQUIRE(j < centers_.size(), "DeltaEvaluator: center index");
  gather_touched(j, candidate);
  const std::size_t n = problem_.size();
  double delta = 0.0;
  for (const std::size_t i : touched_) {
    const double u_new = core::unit_coverage(problem_, candidate, i);
    const double total = totals_[i] - units_[j * n + i] + u_new;
    delta += problem_.weight(i) *
             (std::min(total, 1.0) - std::min(totals_[i], 1.0));
  }
  return delta;
}

void DeltaEvaluator::commit_swap(std::size_t j, geo::ConstVec candidate) {
  const double delta = delta_for_swap(j, candidate);
  const std::size_t n = problem_.size();
  for (const std::size_t i : touched_) {
    const double u_new = core::unit_coverage(problem_, candidate, i);
    totals_[i] += u_new - units_[j * n + i];
    units_[j * n + i] = u_new;
  }
  geo::assign(centers_.mutable_point(j), candidate);
  value_ += delta;
  // Only slot j's ball changed; a cached ball for another slot stays valid.
  if (ball_old_slot_ == j) ball_old_slot_ = kNoSlot;
}

namespace {

/// Exact per-round re-accounting of \p centers (the solvers' invariant:
/// total_reward == sum of round rewards == f(centers)).
core::Solution account(const core::Problem& problem,
                       const geo::PointSet& centers) {
  core::Solution out;
  out.centers = centers;
  out.residual = core::fresh_residual(problem);
  for (std::size_t j = 0; j < centers.size(); ++j) {
    const double g = core::apply_center(problem, centers[j], out.residual);
    out.round_rewards.push_back(g);
    out.total_reward += g;
  }
  return out;
}

struct PolishRun {
  const core::Problem& problem;
  const geo::PointSet& candidates;
  const LsConfig& config;
  DeltaEvaluator& eval;
  LsStats& stats;

  [[nodiscard]] double try_eval(std::size_t j, geo::ConstVec cand) {
    if (config.fault_hook && config.fault_hook(kFaultLsEvalThrow)) {
      throw std::runtime_error("ls: injected delta-evaluation fault");
    }
    ++stats.evals;
    return eval.delta_for_swap(j, cand);
  }

  /// One first-improvement sweep: shift pass (radius-local candidates via
  /// \p cand_index, a superset of each center's ball), then the full swap
  /// pass. Returns whether any move was committed.
  bool first_improvement_sweep(const spatial::SpatialIndex* cand_index) {
    bool improved = false;
    std::vector<std::size_t> shift_ids;
    const std::size_t k = eval.centers().size();
    if (cand_index != nullptr) {
      for (std::size_t j = 0; j < k; ++j) {
        cand_index->query(eval.centers()[j], shift_ids);
        for (const std::size_t c : shift_ids) {
          const double delta = try_eval(j, candidates[c]);
          if (delta > config.min_gain) {
            eval.commit_swap(j, candidates[c]);
            ++stats.moves;
            ++stats.shift_moves;
            improved = true;
            break;  // slot j moved; its candidate ball is stale
          }
        }
      }
    }
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const double delta = try_eval(j, candidates[c]);
        if (delta > config.min_gain) {
          eval.commit_swap(j, candidates[c]);
          ++stats.moves;
          ++stats.swap_moves;
          improved = true;
        }
      }
    }
    return improved;
  }

  /// One tabu sweep: full scan, commit the single best non-tabu improving
  /// move (exact delta ties broken by \p rng). Worsening moves are never
  /// taken, so the polish stays monotone.
  bool tabu_sweep(rnd::Pcg64& rng, std::vector<std::uint64_t>& tabu_until,
                  std::vector<std::size_t>& slot_origin,
                  std::uint64_t& move_clock) {
    double best_delta = 0.0;
    std::vector<std::pair<std::size_t, std::size_t>> ties;
    const std::size_t k = eval.centers().size();
    for (std::size_t j = 0; j < k; ++j) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        if (tabu_until[c] > move_clock) continue;
        const double delta = try_eval(j, candidates[c]);
        if (delta > best_delta) {
          best_delta = delta;
          ties.assign(1, {j, c});
        } else if (delta == best_delta && best_delta > 0.0) {
          ties.emplace_back(j, c);
        }
      }
    }
    if (best_delta <= config.min_gain || ties.empty()) return false;
    const auto [j, c] = ties[static_cast<std::size_t>(
        rng.next_below(static_cast<std::uint64_t>(ties.size())))];
    eval.commit_swap(j, candidates[c]);
    ++stats.moves;
    ++stats.swap_moves;
    ++move_clock;
    if (slot_origin[j] != kNoSlot) {
      tabu_until[slot_origin[j]] = move_clock + config.tabu_tenure;
    }
    slot_origin[j] = c;
    return true;
  }
};

}  // namespace

core::Solution polish(const core::Problem& problem, const core::Solution& seed,
                      const geo::PointSet& candidates, const LsConfig& config,
                      LsStats* stats, spatial::SpatialIndex* population_index) {
  MMPH_REQUIRE(!candidates.empty(), "ls::polish: empty candidate set");
  MMPH_REQUIRE(candidates.dim() == problem.dim(),
               "ls::polish: candidate dimension mismatch");
  LsStats local;
  LsStats& st = stats != nullptr ? *stats : local;
  st = LsStats{};
  if (seed.centers.empty()) return seed;
  MMPH_REQUIRE(seed.centers.dim() == problem.dim(),
               "ls::polish: seed dimension mismatch");

  DeltaEvaluator eval(problem, seed.centers, population_index);
  std::unique_ptr<spatial::SpatialIndex> cand_index;
  if (config.shift_moves) {
    cand_index =
        spatial::make_index(candidates, problem.radius(), problem.metric());
  }

  PolishRun run{problem, candidates, config, eval, st};
  try {
    if (config.tabu_tenure == 0) {
      for (std::size_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
        ++st.sweeps;
        if (!run.first_improvement_sweep(cand_index.get())) {
          st.converged = true;
          break;
        }
      }
    } else {
      rnd::Pcg64 rng(config.seed);
      std::vector<std::uint64_t> tabu_until(candidates.size(), 0);
      std::vector<std::size_t> slot_origin(seed.centers.size(), kNoSlot);
      std::uint64_t move_clock = 0;
      for (std::size_t sweep = 0; sweep < config.max_sweeps; ++sweep) {
        ++st.sweeps;
        if (!run.tabu_sweep(rng, tabu_until, slot_origin, move_clock)) {
          st.converged = true;
          break;
        }
      }
    }
  } catch (const std::exception&) {
    // A delta evaluation failed (injected fault or organic). The seed is a
    // complete, valid solution — return it verbatim rather than a state
    // mid-move; the caller's f(ls) >= f(seed) contract still holds.
    st.aborted = true;
    return seed;
  }

  // Exact final accounting. Deltas accumulate with different float
  // association than a from-scratch pass; re-derive the per-round rewards
  // with apply_center and keep the seed whenever polishing did not
  // strictly beat it, so f(result) >= f(seed) is structural, not "up to
  // drift".
  core::Solution out = account(problem, eval.centers());
  if (!(out.total_reward > seed.total_reward)) return seed;
  st.improved = true;
  out.solver_name = seed.solver_name + "+ls";
  return out;
}

LocalSearchSolver::LocalSearchSolver(std::shared_ptr<const core::Solver> base,
                                     geo::PointSet candidates, LsConfig config)
    : base_(std::move(base)),
      candidates_(std::move(candidates)),
      config_(std::move(config)) {
  MMPH_REQUIRE(base_ != nullptr, "LocalSearchSolver needs a base solver");
  MMPH_REQUIRE(config_.max_sweeps >= 1,
               "LocalSearchSolver needs max_sweeps >= 1");
}

LocalSearchSolver::LocalSearchSolver(std::shared_ptr<const core::Solver> base,
                                     LsConfig config)
    : LocalSearchSolver(std::move(base), geo::PointSet(1), std::move(config)) {}

std::string LocalSearchSolver::name() const {
  return "ls(" + base_->name() + ")";
}

core::Solution LocalSearchSolver::solve(const core::Problem& problem,
                                        std::size_t k) const {
  core::Solution seed = base_->solve(problem, k);
  const geo::PointSet& domain = candidates_.empty()
                                    ? problem.points()
                                    : candidates_;
  core::Solution out = polish(problem, seed, domain, config_, &stats_);
  out.solver_name = name();
  return out;
}

}  // namespace mmph::ls
