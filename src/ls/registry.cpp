#include "mmph/ls/registry.hpp"

#include "mmph/core/lazy_greedy.hpp"

namespace mmph::ls {

std::vector<std::string> solver_names() {
  std::vector<std::string> names = core::solver_names();
  names.push_back("ls");
  names.push_back("ls-tabu");
  return names;
}

std::unique_ptr<core::Solver> make_solver(const std::string& name,
                                          const core::Problem& problem,
                                          const core::SolverConfig& config,
                                          const LsConfig& ls_config) {
  if (name == "ls" || name == "ls-tabu") {
    LsConfig polish = ls_config;
    if (name == "ls-tabu" && polish.tabu_tenure == 0) polish.tabu_tenure = 4;
    return std::make_unique<LocalSearchSolver>(
        std::make_shared<core::LazyGreedySolver>(), std::move(polish));
  }
  return core::make_solver(name, problem, config);
}

}  // namespace mmph::ls
