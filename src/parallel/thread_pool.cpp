#include "mmph/parallel/thread_pool.hpp"

#include <algorithm>

#include "mmph/support/assert.hpp"

namespace mmph::par {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  MMPH_REQUIRE(static_cast<bool>(task), "ThreadPool::submit: empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    MMPH_ASSERT(!stopping_, "submit after shutdown");
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool;
  return pool;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // TaskGroup::wrap made this noexcept-in-effect
  }
}

std::function<void()> TaskGroup::wrap(std::function<void()> task) {
  MMPH_REQUIRE(static_cast<bool>(task), "TaskGroup::wrap: empty task");
  {
    std::lock_guard<std::mutex> lock(mutex_);
    ++pending_;
  }
  return [this, t = std::move(task)]() mutable {
    try {
      t();
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
    finish_one();
  };
}

void TaskGroup::wait() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait(lock, [this] { return pending_ == 0; });
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    std::rethrow_exception(e);
  }
}

void TaskGroup::finish_one() noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  MMPH_ASSERT(pending_ > 0, "TaskGroup: completion underflow");
  if (--pending_ == 0) cv_.notify_all();
}

}  // namespace mmph::par
