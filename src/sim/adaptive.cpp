#include "mmph/sim/adaptive.hpp"

#include <cmath>

#include "mmph/support/assert.hpp"

namespace mmph::sim {

std::vector<AdaptiveRung> AdaptivePlanner::default_ladder() {
  return {{"greedy3", 1.0}, {"greedy2", 2.0}, {"greedy4", 3.0}};
}

AdaptivePlanner::AdaptivePlanner(double ops_budget,
                                 std::vector<AdaptiveRung> ladder,
                                 core::SolverConfig config)
    : ops_budget_(ops_budget),
      ladder_(std::move(ladder)),
      config_(config) {
  MMPH_REQUIRE(ops_budget_ > 0.0, "adaptive: ops budget must be positive");
  MMPH_REQUIRE(!ladder_.empty(), "adaptive: ladder must not be empty");
  for (const AdaptiveRung& rung : ladder_) {
    MMPH_REQUIRE(!rung.solver.empty(), "adaptive: rung needs a solver name");
    MMPH_REQUIRE(rung.n_exponent >= 0.0,
                 "adaptive: rung exponent must be >= 0");
  }
  counts_.assign(ladder_.size(), 0);
}

double AdaptivePlanner::predicted_cost(const AdaptiveRung& rung,
                                       std::size_t n, std::size_t k) {
  return static_cast<double>(k) *
         std::pow(static_cast<double>(n), rung.n_exponent);
}

const AdaptiveRung& AdaptivePlanner::choose(std::size_t n,
                                            std::size_t k) const {
  // Best affordable rung; the cheapest rung is the unconditional fallback.
  std::size_t best = 0;
  for (std::size_t r = 0; r < ladder_.size(); ++r) {
    if (predicted_cost(ladder_[r], n, k) <= ops_budget_) best = r;
  }
  ++counts_[best];
  return ladder_[best];
}

SolverFactory AdaptivePlanner::factory(std::size_t k_hint) {
  MMPH_REQUIRE(k_hint >= 1, "adaptive: k_hint must be >= 1");
  return [this, k_hint](const core::Problem& problem) {
    const AdaptiveRung& rung = choose(problem.size(), k_hint);
    return core::make_solver(rung.solver, problem, config_);
  };
}

}  // namespace mmph::sim
