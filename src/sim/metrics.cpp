#include "mmph/sim/metrics.hpp"

namespace mmph::sim {

void SimReport::finalize() {
  mean_satisfaction = 0.0;
  mean_fairness = 0.0;
  total_reward = 0.0;
  total_solve_seconds = 0.0;
  if (slots.empty()) return;
  for (const SlotMetrics& s : slots) {
    mean_satisfaction += s.satisfaction;
    mean_fairness += s.fairness;
    total_reward += s.reward;
    total_solve_seconds += s.solve_seconds;
  }
  mean_satisfaction /= static_cast<double>(slots.size());
  mean_fairness /= static_cast<double>(slots.size());
}

}  // namespace mmph::sim
