#include "mmph/sim/warm_start.hpp"

#include <utility>

#include "mmph/core/candidate_set.hpp"
#include "mmph/core/objective.hpp"
#include "mmph/core/swap_evaluator.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/geometry/vec.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::sim {
namespace {

/// Adapter exposing one plan() call as a core::Solver so the planner can
/// slot into the simulator's SolverFactory without the simulator knowing
/// about warm starts.
class PlannerSolver final : public core::Solver {
 public:
  explicit PlannerSolver(WarmStartPlanner* planner) : planner_(planner) {}

  [[nodiscard]] std::string name() const override { return "warm-start"; }

  [[nodiscard]] core::Solution solve(const core::Problem& problem,
                                     std::size_t k) const override {
    return planner_->plan(problem, k);
  }

 private:
  WarmStartPlanner* planner_;
};

}  // namespace

WarmStartPlanner::WarmStartPlanner(SolverFactory cold, std::size_t max_sweeps,
                                   CandidateProvider candidates)
    : cold_(std::move(cold)),
      max_sweeps_(max_sweeps),
      candidates_(std::move(candidates)) {
  MMPH_REQUIRE(static_cast<bool>(cold_),
               "WarmStartPlanner needs a cold solver factory");
  MMPH_REQUIRE(max_sweeps_ >= 1, "WarmStartPlanner needs max_sweeps >= 1");
}

core::Solution WarmStartPlanner::plan(const core::Problem& problem,
                                      std::size_t k) {
  const bool history_usable = previous_.has_value() &&
                              previous_->dim() == problem.dim() &&
                              previous_->size() == k;
  if (!history_usable) {
    ++cold_solves_;
    core::Solution sol = cold_(problem)->solve(problem, k);
    previous_ = sol.centers;
    return sol;
  }
  ++warm_solves_;

  // 1-swap refinement of the previous centers over the current points,
  // via the O(n)-per-trial incremental evaluator. A custom provider can
  // shrink the swap pool from "every point" to a curated few.
  geo::PointSet candidates =
      candidates_ ? candidates_(problem) : core::candidates_from_points(problem);
  if (candidates.empty() || candidates.dim() != problem.dim()) {
    candidates = core::candidates_from_points(problem);
  }
  constexpr double kMinGain = 1e-9;
  core::SwapEvaluator evaluator(problem, *previous_);
  for (std::size_t sweep = 0; sweep < max_sweeps_; ++sweep) {
    bool improved = false;
    for (std::size_t j = 0; j < evaluator.centers().size(); ++j) {
      for (std::size_t c = 0; c < candidates.size(); ++c) {
        const double value = evaluator.value_with_swap(j, candidates[c]);
        if (value > evaluator.current_value() + kMinGain) {
          evaluator.commit_swap(j, candidates[c]);
          improved = true;
        }
      }
    }
    if (!improved) break;
  }
  const geo::PointSet& centers = evaluator.centers();

  core::Solution sol;
  sol.solver_name = "warm-start";
  sol.centers = centers;
  sol.residual = core::fresh_residual(problem);
  for (std::size_t j = 0; j < centers.size(); ++j) {
    const double g = core::apply_center(problem, centers[j], sol.residual);
    sol.round_rewards.push_back(g);
    sol.total_reward += g;
  }
  previous_ = sol.centers;
  return sol;
}

SolverFactory WarmStartPlanner::factory() {
  return [this](const core::Problem&) {
    return std::make_unique<PlannerSolver>(this);
  };
}

}  // namespace mmph::sim
