#include "mmph/sim/fairness.hpp"

#include <algorithm>

#include "mmph/core/objective.hpp"
#include "mmph/core/reward.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::sim {
namespace {

class PlannerSolver final : public core::Solver {
 public:
  explicit PlannerSolver(FairnessAwarePlanner* planner) : planner_(planner) {}

  [[nodiscard]] std::string name() const override { return "fairness-aware"; }

  [[nodiscard]] core::Solution solve(const core::Problem& problem,
                                     std::size_t k) const override {
    return planner_->plan(problem, k);
  }

 private:
  FairnessAwarePlanner* planner_;
};

}  // namespace

FairnessAwarePlanner::FairnessAwarePlanner(SolverFactory inner, double alpha)
    : inner_(std::move(inner)), alpha_(alpha) {
  MMPH_REQUIRE(static_cast<bool>(inner_),
               "fairness planner needs an inner factory");
  MMPH_REQUIRE(alpha_ >= 0.0, "fairness alpha must be >= 0");
}

core::Solution FairnessAwarePlanner::plan(const core::Problem& problem,
                                          std::size_t k) {
  const std::size_t n = problem.size();
  // Population changed (churn/restart): deficits no longer line up.
  if (deficits_.size() != n) {
    deficits_.assign(n, 0.0);
    slot_ = 0;
  }

  // Build the urgency-reweighted problem.
  std::vector<double> weights(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double urgency =
        1.0 + alpha_ * deficits_[i] / static_cast<double>(slot_ + 1);
    weights[i] = problem.weight(i) * urgency;
  }
  const core::Problem reweighted(geo::PointSet(problem.points()),
                                 std::move(weights), problem.radius(),
                                 problem.metric(), problem.reward_shape());

  core::Solution sol = inner_(reweighted)->solve(reweighted, k);

  // Re-express the outcome against the original weights: recompute the
  // residual/rewards by replaying the chosen centers on the original
  // problem (the centers are what the broadcast actually sends).
  core::Solution truthful;
  truthful.solver_name = "fairness-aware";
  truthful.centers = sol.centers;
  truthful.residual = core::fresh_residual(problem);
  for (std::size_t j = 0; j < sol.centers.size(); ++j) {
    const double g =
        core::apply_center(problem, sol.centers[j], truthful.residual);
    truthful.round_rewards.push_back(g);
    truthful.total_reward += g;
  }

  // Update deficits: fair share is weight-proportional.
  const double total_weight = problem.total_weight();
  for (std::size_t i = 0; i < n; ++i) {
    const double received =
        problem.weight(i) * (1.0 - truthful.residual[i]);
    const double fair_share =
        truthful.total_reward * problem.weight(i) / total_weight;
    deficits_[i] = std::max(0.0, deficits_[i] + fair_share - received);
  }
  ++slot_;
  return truthful;
}

SolverFactory FairnessAwarePlanner::factory() {
  return [this](const core::Problem&) {
    return std::make_unique<PlannerSolver>(this);
  };
}

}  // namespace mmph::sim
