#include "mmph/sim/simulator.hpp"

#include <algorithm>
#include <chrono>

#include "mmph/core/reward.hpp"
#include "mmph/io/stats.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::sim {

BroadcastSimulator::BroadcastSimulator(SimConfig config, SolverFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      rng_(config_.seed) {
  MMPH_REQUIRE(config_.users >= 1, "simulator needs at least one user");
  MMPH_REQUIRE(config_.k >= 1, "simulator needs k >= 1");
  MMPH_REQUIRE(config_.radius > 0.0, "simulator needs a positive radius");
  MMPH_REQUIRE(static_cast<bool>(factory_), "simulator needs a solver factory");
  users_.reserve(config_.users);
  for (std::size_t i = 0; i < config_.users; ++i) {
    users_.push_back(spawn_user());
  }
}

User BroadcastSimulator::spawn_user() {
  User u;
  u.id = next_id_++;
  u.joined_slot = slot_;
  u.interest.resize(config_.dim);
  for (double& v : u.interest) v = rng_.uniform(0.0, config_.box_side);
  switch (config_.weights) {
    case rnd::WeightScheme::kSame:
      u.weight = 1.0;
      break;
    case rnd::WeightScheme::kUniformInt:
      u.weight = static_cast<double>(
          rng_.uniform_int(config_.weight_lo, config_.weight_hi));
      break;
    case rnd::WeightScheme::kZipf:
      u.weight = static_cast<double>(rng_.zipf(config_.users, 1.0));
      break;
  }
  return u;
}

core::Problem BroadcastSimulator::snapshot_problem() const {
  geo::PointSet points(config_.dim);
  points.reserve(users_.size());
  std::vector<double> weights;
  weights.reserve(users_.size());
  for (const User& u : users_) {
    points.push_back(u.interest);
    weights.push_back(u.weight);
  }
  return core::Problem(std::move(points), std::move(weights), config_.radius,
                       config_.metric);
}

SlotMetrics BroadcastSimulator::step() {
  const core::Problem problem = snapshot_problem();

  const auto t0 = std::chrono::steady_clock::now();
  const std::unique_ptr<core::Solver> solver = factory_(problem);
  const core::Solution solution = solver->solve(problem, config_.k);
  const auto t1 = std::chrono::steady_clock::now();

  SlotMetrics m;
  m.slot = slot_;
  m.total_weight = problem.total_weight();
  m.solve_seconds = std::chrono::duration<double>(t1 - t0).count();

  // Per-user rewards this slot: w_i * (1 - y_i) given the final residual.
  std::vector<double> per_user(users_.size(), 0.0);
  MMPH_ASSERT(solution.residual.size() == users_.size(),
              "simulator: residual size mismatch");
  for (std::size_t i = 0; i < users_.size(); ++i) {
    per_user[i] = users_[i].weight * (1.0 - solution.residual[i]);
    users_[i].accumulated_reward += per_user[i];
    if (per_user[i] > 0.0) ++m.users_happy;
    m.reward += per_user[i];
  }
  m.satisfaction = m.total_weight > 0.0 ? m.reward / m.total_weight : 0.0;
  m.fairness = io::jain_fairness(per_user);

  advance_population();
  ++slot_;
  return m;
}

void BroadcastSimulator::advance_population() {
  for (User& u : users_) {
    if (config_.drift.churn_prob > 0.0 &&
        rng_.bernoulli(config_.drift.churn_prob)) {
      u = spawn_user();
      continue;
    }
    if (config_.drift.jump_prob > 0.0 &&
        rng_.bernoulli(config_.drift.jump_prob)) {
      for (double& v : u.interest) v = rng_.uniform(0.0, config_.box_side);
      continue;
    }
    if (config_.drift.sigma > 0.0) {
      for (double& v : u.interest) {
        v = std::clamp(rng_.normal(v, config_.drift.sigma), 0.0,
                       config_.box_side);
      }
    }
  }
}

SimReport BroadcastSimulator::run() {
  SimReport report;
  report.slots.reserve(config_.slots);
  for (std::size_t t = 0; t < config_.slots; ++t) {
    report.slots.push_back(step());
  }
  report.finalize();
  return report;
}

}  // namespace mmph::sim
