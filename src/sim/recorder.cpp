#include "mmph/sim/recorder.hpp"

#include <iomanip>
#include <sstream>

#include "mmph/support/assert.hpp"
#include "mmph/trace/trace.hpp"

namespace mmph::sim {
namespace {

std::string slot_path(const std::string& directory, std::uint64_t slot,
                      const char* extension) {
  std::ostringstream os;
  os << directory << "/slot_" << std::setw(5) << std::setfill('0') << slot
     << extension;
  return os.str();
}

}  // namespace

/// Solver wrapper that saves the (problem, solution) pair on solve().
class RecordingSolver final : public core::Solver {
 public:
  RecordingSolver(TraceRecorder* recorder,
                  std::unique_ptr<core::Solver> inner)
      : recorder_(recorder), inner_(std::move(inner)) {}

  [[nodiscard]] std::string name() const override {
    return inner_->name() + "+recorded";
  }

  [[nodiscard]] core::Solution solve(const core::Problem& problem,
                                     std::size_t k) const override {
    const std::uint64_t slot = recorder_->recorded_;
    core::Solution sol = inner_->solve(problem, k);
    trace::save_problem(recorder_->problem_path(slot), problem);
    trace::save_solution(recorder_->solution_path(slot), sol);
    ++recorder_->recorded_;
    return sol;
  }

 private:
  TraceRecorder* recorder_;
  std::unique_ptr<core::Solver> inner_;
};

TraceRecorder::TraceRecorder(std::string directory, SolverFactory inner)
    : directory_(std::move(directory)), inner_(std::move(inner)) {
  MMPH_REQUIRE(!directory_.empty(), "recorder: empty directory");
  MMPH_REQUIRE(static_cast<bool>(inner_), "recorder: empty inner factory");
}

SolverFactory TraceRecorder::factory() {
  return [this](const core::Problem& problem) {
    return std::make_unique<RecordingSolver>(this, inner_(problem));
  };
}

std::string TraceRecorder::problem_path(std::uint64_t slot) const {
  return slot_path(directory_, slot, ".problem");
}

std::string TraceRecorder::solution_path(std::uint64_t slot) const {
  return slot_path(directory_, slot, ".solution");
}

}  // namespace mmph::sim
