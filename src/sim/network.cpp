#include "mmph/sim/network.hpp"

#include <algorithm>
#include <limits>

#include "mmph/support/assert.hpp"

namespace mmph::sim {

void NetworkReport::finalize() {
  mean_satisfaction = 0.0;
  total_reward = 0.0;
  total_handovers = 0;
  if (slots.empty()) return;
  for (const NetworkSlotMetrics& s : slots) {
    mean_satisfaction += s.satisfaction;
    total_reward += s.reward;
    total_handovers += s.handovers;
  }
  mean_satisfaction /= static_cast<double>(slots.size());
}

NetworkSimulator::NetworkSimulator(NetworkConfig config, SolverFactory factory)
    : config_(std::move(config)),
      factory_(std::move(factory)),
      rng_(config_.seed) {
  MMPH_REQUIRE(config_.stations >= 1, "network needs at least one station");
  MMPH_REQUIRE(config_.users >= 1, "network needs at least one user");
  MMPH_REQUIRE(config_.k_per_station >= 1, "network needs k >= 1");
  MMPH_REQUIRE(config_.radius > 0.0, "network needs a positive radius");
  MMPH_REQUIRE(config_.area_side > 0.0, "network needs a positive area");
  MMPH_REQUIRE(config_.handover_hysteresis >= 0.0 &&
                   config_.handover_hysteresis < 1.0,
               "network hysteresis must be in [0, 1)");
  MMPH_REQUIRE(static_cast<bool>(factory_), "network needs a solver factory");

  stations_.reserve(config_.stations);
  std::vector<double> pos(2);
  for (std::size_t s = 0; s < config_.stations; ++s) {
    pos[0] = rng_.uniform(0.0, config_.area_side);
    pos[1] = rng_.uniform(0.0, config_.area_side);
    stations_.push_back(pos);
  }

  users_.reserve(config_.users);
  for (std::size_t i = 0; i < config_.users; ++i) {
    NetworkUser u;
    u.id = i;
    u.position = {rng_.uniform(0.0, config_.area_side),
                  rng_.uniform(0.0, config_.area_side)};
    u.interest.resize(config_.interest_dim);
    for (double& v : u.interest) {
      v = rng_.uniform(0.0, config_.interest_box);
    }
    switch (config_.weights) {
      case rnd::WeightScheme::kSame:
        u.weight = 1.0;
        break;
      case rnd::WeightScheme::kUniformInt:
        u.weight = static_cast<double>(rng_.uniform_int(1, 5));
        break;
      case rnd::WeightScheme::kZipf:
        u.weight = static_cast<double>(rng_.zipf(config_.users, 1.0));
        break;
    }
    // Initial attachment is plain nearest-station (hysteresis only damps
    // later handovers; there is no incumbent cell yet).
    u.station = nearest_station(u.position);
    users_.push_back(std::move(u));
  }
}

std::size_t NetworkSimulator::nearest_station(
    const std::vector<double>& position) const {
  std::size_t best = 0;
  double best_d = std::numeric_limits<double>::infinity();
  for (std::size_t s = 0; s < stations_.size(); ++s) {
    const double d = geo::l2_distance(position, stations_[s]);
    if (d < best_d) {
      best_d = d;
      best = s;
    }
  }
  return best;
}

std::size_t NetworkSimulator::associate() {
  std::size_t handovers = 0;
  for (NetworkUser& u : users_) {
    const std::size_t target = nearest_station(u.position);
    if (target == u.station) continue;
    // Hysteresis: only hand over when the candidate is decisively closer,
    // suppressing ping-pong at cell edges.
    const double current_d =
        geo::l2_distance(u.position, stations_[u.station]);
    const double target_d = geo::l2_distance(u.position, stations_[target]);
    if (target_d <= (1.0 - config_.handover_hysteresis) * current_d) {
      u.station = target;
      ++handovers;
    }
  }
  return handovers;
}

NetworkSlotMetrics NetworkSimulator::step() {
  NetworkSlotMetrics m;
  m.slot = slot_;

  // Per-cell scheduling: each station solves the paper's problem over the
  // interests of its currently attached users.
  std::vector<std::vector<std::size_t>> cell_members(config_.stations);
  for (std::size_t i = 0; i < users_.size(); ++i) {
    cell_members[users_[i].station].push_back(i);
  }
  m.max_cell_load = 0;
  m.min_cell_load = users_.size();
  for (const auto& members : cell_members) {
    m.max_cell_load = std::max(m.max_cell_load, members.size());
    m.min_cell_load = std::min(m.min_cell_load, members.size());
  }

  for (const auto& members : cell_members) {
    if (members.empty()) continue;
    geo::PointSet pts(config_.interest_dim);
    std::vector<double> weights;
    pts.reserve(members.size());
    weights.reserve(members.size());
    for (std::size_t i : members) {
      pts.push_back(users_[i].interest);
      weights.push_back(users_[i].weight);
      m.total_weight += users_[i].weight;
    }
    const core::Problem problem(std::move(pts), std::move(weights),
                                config_.radius, config_.metric);
    const core::Solution sol =
        factory_(problem)->solve(problem, config_.k_per_station);
    MMPH_ASSERT(sol.residual.size() == members.size(),
                "network: residual size mismatch");
    for (std::size_t local = 0; local < members.size(); ++local) {
      const double gained =
          users_[members[local]].weight * (1.0 - sol.residual[local]);
      users_[members[local]].accumulated_reward += gained;
      m.reward += gained;
    }
  }
  m.satisfaction = m.total_weight > 0.0 ? m.reward / m.total_weight : 0.0;

  advance();
  m.handovers = associate();
  ++slot_;
  return m;
}

void NetworkSimulator::advance() {
  for (NetworkUser& u : users_) {
    if (config_.mobility_sigma > 0.0) {
      for (double& v : u.position) {
        v = std::clamp(rng_.normal(v, config_.mobility_sigma), 0.0,
                       config_.area_side);
      }
    }
    if (config_.interest_sigma > 0.0) {
      for (double& v : u.interest) {
        v = std::clamp(rng_.normal(v, config_.interest_sigma), 0.0,
                       config_.interest_box);
      }
    }
  }
}

NetworkReport NetworkSimulator::run() {
  NetworkReport report;
  report.slots.reserve(config_.slots);
  for (std::size_t t = 0; t < config_.slots; ++t) {
    report.slots.push_back(step());
  }
  report.finalize();
  return report;
}

}  // namespace mmph::sim
