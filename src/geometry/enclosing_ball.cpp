#include "mmph/geometry/enclosing_ball.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "mmph/support/assert.hpp"

namespace mmph::geo {
namespace {

// SplitMix64 step; local to avoid a dependency on mmph::random (geometry
// sits below it in the layering).
std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

// Solves the (m x m) linear system A x = b in place by Gaussian elimination
// with partial pivoting. Returns false when the system is numerically
// singular (pivot below tol).
bool solve_inplace(std::vector<double>& a, std::vector<double>& b,
                   std::size_t m, double tol = 1e-12) {
  for (std::size_t col = 0; col < m; ++col) {
    std::size_t piv = col;
    double best = std::fabs(a[col * m + col]);
    for (std::size_t row = col + 1; row < m; ++row) {
      const double v = std::fabs(a[row * m + col]);
      if (v > best) {
        best = v;
        piv = row;
      }
    }
    if (best < tol) return false;
    if (piv != col) {
      for (std::size_t j = 0; j < m; ++j) {
        std::swap(a[piv * m + j], a[col * m + j]);
      }
      std::swap(b[piv], b[col]);
    }
    const double inv = 1.0 / a[col * m + col];
    for (std::size_t row = col + 1; row < m; ++row) {
      const double f = a[row * m + col] * inv;
      if (f == 0.0) continue;
      for (std::size_t j = col; j < m; ++j) {
        a[row * m + j] -= f * a[col * m + j];
      }
      b[row] -= f * b[col];
    }
  }
  for (std::size_t col = m; col-- > 0;) {
    double s = b[col];
    for (std::size_t j = col + 1; j < m; ++j) s -= a[col * m + j] * b[j];
    b[col] = s / a[col * m + col];
  }
  return true;
}

// Circumball of `count` support rows taken from `rows` (a PointSet-like flat
// buffer of dimension dim). count <= dim + 1 is assumed by the recursion.
Ball circumball_rows(const double* rows, std::size_t count, std::size_t dim) {
  Ball ball;
  if (count == 0) return ball;  // empty
  if (count == 1) {
    ball.center.assign(rows, rows + dim);
    ball.radius = 0.0;
    return ball;
  }
  // With p0 as origin and Q_i = p_i - p0 (i = 1..m), the center c = p0 + sum
  // lambda_i Q_i satisfies 2 Q_i . (c - p0) = |Q_i|^2, i.e. C lambda = rhs
  // with C_ij = 2 Q_i . Q_j, rhs_i = |Q_i|^2.
  const std::size_t m = count - 1;
  const double* p0 = rows;
  std::vector<double> q(m * dim);
  for (std::size_t i = 0; i < m; ++i) {
    const double* pi = rows + (i + 1) * dim;
    for (std::size_t d = 0; d < dim; ++d) q[i * dim + d] = pi[d] - p0[d];
  }
  std::vector<double> a(m * m);
  std::vector<double> rhs(m);
  for (std::size_t i = 0; i < m; ++i) {
    ConstVec qi(q.data() + i * dim, dim);
    for (std::size_t j = 0; j < m; ++j) {
      ConstVec qj(q.data() + j * dim, dim);
      a[i * m + j] = 2.0 * dot(qi, qj);
    }
    rhs[i] = norm2_sq(qi);
  }
  if (!solve_inplace(a, rhs, m)) {
    // Affinely dependent support: drop the last point and retry. The Welzl
    // recursion only reaches this with degenerate input geometry.
    return circumball_rows(rows, count - 1, dim);
  }
  ball.center.assign(p0, p0 + dim);
  for (std::size_t i = 0; i < m; ++i) {
    add_scaled(ball.center, rhs[i], ConstVec(q.data() + i * dim, dim));
  }
  ball.radius = l2_distance(ball.center, ConstVec(p0, dim));
  return ball;
}

// Welzl move-to-front recursion over an index permutation.
//
// perm[0..n) are indices into ps; support is a flat buffer of at most
// dim+1 rows. Mutates perm (move-to-front) which is what gives the expected
// linear running time on re-queries.
class WelzlSolver {
 public:
  WelzlSolver(const PointSet& ps, std::vector<std::size_t> perm)
      : ps_(ps), perm_(std::move(perm)), dim_(ps.dim()) {
    support_.reserve((dim_ + 1) * dim_);
  }

  Ball run() { return mtf(perm_.size()); }

 private:
  Ball ball_of_support() {
    return circumball_rows(support_.data(), support_.size() / dim_, dim_);
  }

  Ball mtf(std::size_t n) {
    Ball ball = ball_of_support();
    if (support_.size() / dim_ == dim_ + 1) return ball;
    for (std::size_t i = 0; i < n; ++i) {
      ConstVec p = ps_[perm_[i]];
      if (!ball.is_empty() &&
          l2_distance(ball.center, p) <= ball.radius + kTol) {
        continue;
      }
      // p is outside the ball of the first i points: it must be on the
      // boundary of the ball of the first i+1. Recurse with p in support.
      support_.insert(support_.end(), p.begin(), p.end());
      ball = mtf(i);
      support_.resize(support_.size() - dim_);
      // Move-to-front: keeps frequently-binding points early.
      const std::size_t idx = perm_[i];
      for (std::size_t j = i; j > 0; --j) perm_[j] = perm_[j - 1];
      perm_[0] = idx;
    }
    return ball;
  }

  static constexpr double kTol = 1e-9;

  const PointSet& ps_;
  std::vector<std::size_t> perm_;
  std::size_t dim_;
  std::vector<double> support_;
};

std::vector<std::size_t> shuffled_indices(std::size_t n, std::uint64_t seed) {
  std::vector<std::size_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::uint64_t state = seed;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j = splitmix64(state) % i;
    std::swap(perm[i - 1], perm[j]);
  }
  return perm;
}

}  // namespace

Ball circumball(const PointSet& support) {
  MMPH_REQUIRE(support.size() <= support.dim() + 1,
               "circumball supports at most dim+1 points");
  return circumball_rows(support.raw().data(), support.size(), support.dim());
}

Ball smallest_enclosing_ball_l2(const PointSet& ps, std::uint64_t seed) {
  if (ps.empty()) return Ball{};
  WelzlSolver solver(ps, shuffled_indices(ps.size(), seed));
  return solver.run();
}

Ball smallest_enclosing_ball_l2(const PointSet& ps,
                                std::span<const std::size_t> idx,
                                std::uint64_t seed) {
  if (idx.empty()) return Ball{};
  std::vector<std::size_t> perm(idx.begin(), idx.end());
  std::uint64_t state = seed;
  for (std::size_t i = perm.size(); i > 1; --i) {
    const std::size_t j = splitmix64(state) % i;
    std::swap(perm[i - 1], perm[j]);
  }
  for (std::size_t i : perm) {
    MMPH_REQUIRE(i < ps.size(), "enclosing ball: subset index out of range");
  }
  WelzlSolver solver(ps, std::move(perm));
  return solver.run();
}

Ball approx_enclosing_ball(const PointSet& ps, const Metric& metric,
                           std::size_t iterations) {
  if (ps.empty()) return Ball{};
  Ball ball;
  ball.center = ps.centroid();
  // Badoiu–Clarkson: repeatedly step 1/(t+1) of the way toward the current
  // farthest point. Converges to the L2 optimum; a good heuristic for other
  // norms (callers needing exactness use the norm-specific solvers).
  for (std::size_t t = 0; t < iterations; ++t) {
    double far_d = -1.0;
    std::size_t far_i = 0;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      const double d = metric.distance(ball.center, ps[i]);
      if (d > far_d) {
        far_d = d;
        far_i = i;
      }
    }
    if (far_d == 0.0) break;
    const double step = 1.0 / static_cast<double>(t + 2);
    ConstVec far_p = ps[far_i];
    for (std::size_t d = 0; d < ps.dim(); ++d) {
      ball.center[d] += step * (far_p[d] - ball.center[d]);
    }
  }
  double r = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    r = std::max(r, metric.distance(ball.center, ps[i]));
  }
  ball.radius = r;
  return ball;
}

}  // namespace mmph::geo
