#include "mmph/geometry/point_set.hpp"

#include <algorithm>

#include "mmph/support/assert.hpp"

namespace mmph::geo {

std::vector<double> Box::center() const {
  std::vector<double> c(lo.size());
  for (std::size_t d = 0; d < lo.size(); ++d) c[d] = 0.5 * (lo[d] + hi[d]);
  return c;
}

bool Box::contains(ConstVec p, double tol) const {
  if (p.size() != lo.size()) return false;
  for (std::size_t d = 0; d < lo.size(); ++d) {
    if (p[d] < lo[d] - tol || p[d] > hi[d] + tol) return false;
  }
  return true;
}

PointSet::PointSet(std::size_t dim) : dim_(dim) {
  MMPH_REQUIRE(dim >= 1, "PointSet dimension must be >= 1");
}

PointSet::PointSet(std::size_t dim, std::vector<double> coords)
    : dim_(dim), coords_(std::move(coords)) {
  MMPH_REQUIRE(dim >= 1, "PointSet dimension must be >= 1");
  MMPH_REQUIRE(coords_.size() % dim_ == 0,
               "coordinate block size must be a multiple of dim");
}

PointSet PointSet::from_rows(
    std::initializer_list<std::initializer_list<double>> rows) {
  MMPH_REQUIRE(rows.size() > 0, "from_rows: need at least one row");
  const std::size_t dim = rows.begin()->size();
  PointSet ps(dim);
  ps.reserve(rows.size());
  for (const auto& row : rows) {
    MMPH_REQUIRE(row.size() == dim, "from_rows: ragged rows");
    ps.coords_.insert(ps.coords_.end(), row.begin(), row.end());
  }
  return ps;
}

void PointSet::push_back(ConstVec p) {
  MMPH_REQUIRE(p.size() == dim_, "push_back: wrong point dimension");
  coords_.insert(coords_.end(), p.begin(), p.end());
}

Box PointSet::bounding_box() const {
  MMPH_REQUIRE(!empty(), "bounding_box of empty point set");
  Box box;
  box.lo.assign((*this)[0].begin(), (*this)[0].end());
  box.hi = box.lo;
  for (std::size_t i = 1; i < size(); ++i) {
    ConstVec p = (*this)[i];
    for (std::size_t d = 0; d < dim_; ++d) {
      box.lo[d] = std::min(box.lo[d], p[d]);
      box.hi[d] = std::max(box.hi[d], p[d]);
    }
  }
  return box;
}

std::vector<double> PointSet::centroid() const {
  MMPH_REQUIRE(!empty(), "centroid of empty point set");
  std::vector<double> c(dim_, 0.0);
  for (std::size_t i = 0; i < size(); ++i) {
    ConstVec p = (*this)[i];
    for (std::size_t d = 0; d < dim_; ++d) c[d] += p[d];
  }
  const double inv = 1.0 / static_cast<double>(size());
  for (double& v : c) v *= inv;
  return c;
}

}  // namespace mmph::geo
