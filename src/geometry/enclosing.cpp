#include "mmph/geometry/enclosing.hpp"

namespace mmph::geo {

Ball smallest_enclosing(const PointSet& ps, const Metric& metric,
                        L1CenterRule l1_rule) {
  if (ps.empty()) return Ball{};
  switch (metric.norm()) {
    case Norm::kL2:
      return smallest_enclosing_ball_l2(ps);
    case Norm::kLinf:
      return enclosing_box_linf(ps);
    case Norm::kL1:
      if (l1_rule == L1CenterRule::kExactIfPossible && ps.dim() == 2) {
        return enclosing_ball_l1_2d(ps);
      }
      return enclosing_ball_l1_projection(ps);
    case Norm::kLp:
      return approx_enclosing_ball(ps, metric);
  }
  return Ball{};  // unreachable
}

}  // namespace mmph::geo
