#include "mmph/geometry/norms.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>

#include "mmph/support/assert.hpp"

namespace mmph::geo {

Norm parse_norm(const std::string& text) {
  std::string t;
  t.reserve(text.size());
  for (char c : text) t.push_back(static_cast<char>(std::tolower(c)));
  if (t == "l1" || t == "1") return Norm::kL1;
  if (t == "l2" || t == "2") return Norm::kL2;
  if (t == "linf" || t == "inf" || t == "chebyshev") return Norm::kLinf;
  throw ParseError("unknown norm: '" + text + "' (expected l1|l2|linf)");
}

const char* norm_name(Norm n) {
  switch (n) {
    case Norm::kL1:
      return "L1";
    case Norm::kL2:
      return "L2";
    case Norm::kLinf:
      return "Linf";
    case Norm::kLp:
      return "Lp";
  }
  return "?";
}

Metric::Metric(Norm n) : norm_(n), p_(2.0) {
  MMPH_REQUIRE(n != Norm::kLp,
               "use Metric(double p) for a general p-norm");
  switch (n) {
    case Norm::kL1:
      p_ = 1.0;
      break;
    case Norm::kL2:
      p_ = 2.0;
      break;
    case Norm::kLinf:
      p_ = std::numeric_limits<double>::infinity();
      break;
    case Norm::kLp:
      break;
  }
}

Metric::Metric(double p) : norm_(Norm::kLp), p_(p) {
  MMPH_REQUIRE(p >= 1.0, "p-norm requires p >= 1");
  if (p == 1.0) {
    norm_ = Norm::kL1;
  } else if (p == 2.0) {
    norm_ = Norm::kL2;
  } else if (std::isinf(p)) {
    norm_ = Norm::kLinf;
  }
}

double l1_distance(ConstVec a, ConstVec b) {
  MMPH_ASSERT(a.size() == b.size(), "l1_distance: dimension mismatch");
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::fabs(a[i] - b[i]);
  return s;
}

double l2_distance(ConstVec a, ConstVec b) {
  return std::sqrt(dist2_sq(a, b));
}

double linf_distance(ConstVec a, ConstVec b) {
  MMPH_ASSERT(a.size() == b.size(), "linf_distance: dimension mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(a[i] - b[i]));
  }
  return m;
}

double lp_distance(ConstVec a, ConstVec b, double p) {
  MMPH_ASSERT(a.size() == b.size(), "lp_distance: dimension mismatch");
  // Scale by the max component so pow() stays well-conditioned.
  double mx = linf_distance(a, b);
  if (mx == 0.0) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    s += std::pow(std::fabs(a[i] - b[i]) / mx, p);
  }
  return mx * std::pow(s, 1.0 / p);
}

double Metric::distance(ConstVec a, ConstVec b) const {
  switch (norm_) {
    case Norm::kL1:
      return l1_distance(a, b);
    case Norm::kL2:
      return l2_distance(a, b);
    case Norm::kLinf:
      return linf_distance(a, b);
    case Norm::kLp:
      return lp_distance(a, b, p_);
  }
  return 0.0;  // unreachable
}

double Metric::length(ConstVec v) const {
  static thread_local std::vector<double> origin;
  origin.assign(v.size(), 0.0);
  return distance(v, origin);
}

std::string Metric::name() const {
  if (norm_ != Norm::kLp) return norm_name(norm_);
  std::ostringstream os;
  os << "Lp(p=" << p_ << ")";
  return os.str();
}

}  // namespace mmph::geo
