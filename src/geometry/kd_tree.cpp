#include "mmph/geometry/kd_tree.hpp"

#include <algorithm>
#include <limits>
#include <numeric>
#include <utility>

#include "mmph/support/assert.hpp"

namespace mmph::geo {

KdTree::KdTree(const PointSet& points, std::size_t leaf_size)
    : points_(points) {
  MMPH_REQUIRE(!points.empty(), "KdTree: empty point set");
  MMPH_REQUIRE(leaf_size >= 1, "KdTree: leaf_size must be >= 1");
  order_.resize(points.size());
  std::iota(order_.begin(), order_.end(), std::size_t{0});
  nodes_.reserve(2 * points.size() / leaf_size + 2);
  (void)build(0, order_.size(), leaf_size);
}

std::size_t KdTree::build(std::size_t begin, std::size_t end,
                          std::size_t leaf_size) {
  const std::size_t id = nodes_.size();
  nodes_.emplace_back();
  {
    Node& node = nodes_.back();
    node.begin = begin;
    node.end = end;
    const std::size_t dim = points_.dim();
    node.lo.assign(points_[order_[begin]].begin(),
                   points_[order_[begin]].end());
    node.hi = node.lo;
    for (std::size_t s = begin + 1; s < end; ++s) {
      ConstVec p = points_[order_[s]];
      for (std::size_t d = 0; d < dim; ++d) {
        node.lo[d] = std::min(node.lo[d], p[d]);
        node.hi[d] = std::max(node.hi[d], p[d]);
      }
    }
  }
  if (end - begin <= leaf_size) return id;

  // Split on the widest dimension at the median (nth_element keeps the
  // build O(n log n) without a full sort).
  std::size_t split_dim = 0;
  {
    const Node& node = nodes_[id];
    double widest = -1.0;
    for (std::size_t d = 0; d < points_.dim(); ++d) {
      const double w = node.hi[d] - node.lo[d];
      if (w > widest) {
        widest = w;
        split_dim = d;
      }
    }
    if (widest <= 0.0) return id;  // all points identical: stay a leaf
  }
  const std::size_t mid = begin + (end - begin) / 2;
  std::nth_element(order_.begin() + static_cast<std::ptrdiff_t>(begin),
                   order_.begin() + static_cast<std::ptrdiff_t>(mid),
                   order_.begin() + static_cast<std::ptrdiff_t>(end),
                   [&](std::size_t a, std::size_t b) {
                     if (points_[a][split_dim] != points_[b][split_dim]) {
                       return points_[a][split_dim] < points_[b][split_dim];
                     }
                     return a < b;  // deterministic total order
                   });

  const std::size_t left = build(begin, mid, leaf_size);
  const std::size_t right = build(mid, end, leaf_size);
  nodes_[id].left = left;
  nodes_[id].right = right;
  return id;
}

double KdTree::box_distance(const Node& node, ConstVec q,
                            const Metric& metric) const {
  // Distance from q to its closest point inside the node's box: clamp q
  // into the box and measure. Valid for every p-norm (the clamped point
  // minimizes every coordinate difference simultaneously).
  static thread_local std::vector<double> clamped;
  clamped.resize(q.size());
  for (std::size_t d = 0; d < q.size(); ++d) {
    clamped[d] = std::clamp(q[d], node.lo[d], node.hi[d]);
  }
  return metric.distance(q, clamped);
}

void KdTree::search(std::size_t node_id, ConstVec center, double radius,
                    const Metric& metric,
                    const std::function<void(std::size_t)>& fn) const {
  const Node& node = nodes_[node_id];
  if (box_distance(node, center, metric) > radius) return;
  if (node.left == 0) {  // leaf
    for (std::size_t s = node.begin; s < node.end; ++s) {
      const std::size_t i = order_[s];
      if (metric.distance(center, points_[i]) <= radius) fn(i);
    }
    return;
  }
  search(node.left, center, radius, metric, fn);
  search(node.right, center, radius, metric, fn);
}

void KdTree::for_each_in_ball(
    ConstVec center, double radius, const Metric& metric,
    const std::function<void(std::size_t)>& fn) const {
  MMPH_REQUIRE(center.size() == points_.dim(),
               "KdTree: query dimension mismatch");
  MMPH_REQUIRE(radius >= 0.0, "KdTree: negative query radius");
  search(0, center, radius, metric, fn);
}

std::vector<std::size_t> KdTree::query_ball(ConstVec center, double radius,
                                            const Metric& metric) const {
  std::vector<std::size_t> out;
  for_each_in_ball(center, radius, metric,
                   [&](std::size_t i) { out.push_back(i); });
  std::sort(out.begin(), out.end());
  return out;
}

void KdTree::nearest_impl(std::size_t node_id, ConstVec center,
                          const Metric& metric, double& best_d,
                          std::size_t& best_i) const {
  const Node& node = nodes_[node_id];
  if (box_distance(node, center, metric) >= best_d) return;
  if (node.left == 0) {
    for (std::size_t s = node.begin; s < node.end; ++s) {
      const std::size_t i = order_[s];
      const double d = metric.distance(center, points_[i]);
      if (d < best_d) {
        best_d = d;
        best_i = i;
      }
    }
    return;
  }
  // Visit the closer child first for tighter early bounds.
  const double dl = box_distance(nodes_[node.left], center, metric);
  const double dr = box_distance(nodes_[node.right], center, metric);
  if (dl <= dr) {
    nearest_impl(node.left, center, metric, best_d, best_i);
    nearest_impl(node.right, center, metric, best_d, best_i);
  } else {
    nearest_impl(node.right, center, metric, best_d, best_i);
    nearest_impl(node.left, center, metric, best_d, best_i);
  }
}

std::size_t KdTree::nearest(ConstVec center, const Metric& metric) const {
  MMPH_REQUIRE(center.size() == points_.dim(),
               "KdTree: query dimension mismatch");
  double best_d = std::numeric_limits<double>::infinity();
  std::size_t best_i = 0;
  nearest_impl(0, center, metric, best_d, best_i);
  return best_i;
}

std::vector<std::size_t> KdTree::k_nearest(ConstVec center, std::size_t k,
                                           const Metric& metric) const {
  MMPH_REQUIRE(center.size() == points_.dim(),
               "KdTree: query dimension mismatch");
  MMPH_REQUIRE(k >= 1, "KdTree: k_nearest needs k >= 1");
  k = std::min(k, size());

  // Bounded max-heap of (distance, index); the root is the current k-th
  // nearest, which prunes subtrees farther than it.
  using Entry = std::pair<double, std::size_t>;
  std::vector<Entry> heap;
  heap.reserve(k);
  const auto worst = [&] {
    return heap.size() < k ? std::numeric_limits<double>::infinity()
                           : heap.front().first;
  };

  // Iterative best-first traversal with an explicit stack (visit closer
  // child first; prune by box distance against the current k-th).
  std::vector<std::size_t> stack{0};
  while (!stack.empty()) {
    const std::size_t node_id = stack.back();
    stack.pop_back();
    const Node& node = nodes_[node_id];
    if (box_distance(node, center, metric) > worst()) continue;
    if (node.left == 0) {
      for (std::size_t s = node.begin; s < node.end; ++s) {
        const std::size_t i = order_[s];
        const double d = metric.distance(center, points_[i]);
        if (d < worst() ||
            (heap.size() < k && d <= worst())) {
          if (heap.size() == k) {
            std::pop_heap(heap.begin(), heap.end());
            heap.pop_back();
          }
          heap.emplace_back(d, i);
          std::push_heap(heap.begin(), heap.end());
        }
      }
      continue;
    }
    // Push the farther child first so the closer one is processed first.
    const double dl = box_distance(nodes_[node.left], center, metric);
    const double dr = box_distance(nodes_[node.right], center, metric);
    if (dl <= dr) {
      stack.push_back(node.right);
      stack.push_back(node.left);
    } else {
      stack.push_back(node.left);
      stack.push_back(node.right);
    }
  }

  std::sort(heap.begin(), heap.end());
  std::vector<std::size_t> out;
  out.reserve(heap.size());
  for (const Entry& e : heap) out.push_back(e.second);
  return out;
}

}  // namespace mmph::geo
