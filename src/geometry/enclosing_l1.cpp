#include "mmph/geometry/enclosing_l1.hpp"

#include <algorithm>

#include "mmph/support/assert.hpp"

namespace mmph::geo {

Ball enclosing_box_linf(const PointSet& ps) {
  if (ps.empty()) return Ball{};
  const Box box = ps.bounding_box();
  Ball ball;
  ball.center = box.center();
  ball.radius = 0.0;
  for (std::size_t d = 0; d < box.dim(); ++d) {
    ball.radius = std::max(ball.radius, 0.5 * (box.hi[d] - box.lo[d]));
  }
  return ball;
}

Ball enclosing_ball_l1_projection(const PointSet& ps) {
  if (ps.empty()) return Ball{};
  const Box box = ps.bounding_box();
  Ball ball;
  ball.center = box.center();
  ball.radius = 0.0;
  for (std::size_t i = 0; i < ps.size(); ++i) {
    ball.radius = std::max(ball.radius, l1_distance(ball.center, ps[i]));
  }
  return ball;
}

Ball enclosing_ball_l1_2d(const PointSet& ps) {
  MMPH_REQUIRE(ps.dim() == 2, "enclosing_ball_l1_2d requires 2-D points");
  if (ps.empty()) return Ball{};
  // Rotate into (u, v) = (x+y, x-y): 1-norm distance in (x, y) equals
  // infinity-norm distance in (u, v). The smallest Linf cube there is the
  // bounding-box midpoint; rotate its center back.
  double ulo = ps[0][0] + ps[0][1], uhi = ulo;
  double vlo = ps[0][0] - ps[0][1], vhi = vlo;
  for (std::size_t i = 1; i < ps.size(); ++i) {
    const double u = ps[i][0] + ps[i][1];
    const double v = ps[i][0] - ps[i][1];
    ulo = std::min(ulo, u);
    uhi = std::max(uhi, u);
    vlo = std::min(vlo, v);
    vhi = std::max(vhi, v);
  }
  const double uc = 0.5 * (ulo + uhi);
  const double vc = 0.5 * (vlo + vhi);
  Ball ball;
  ball.center = {0.5 * (uc + vc), 0.5 * (uc - vc)};
  ball.radius = std::max(0.5 * (uhi - ulo), 0.5 * (vhi - vlo));
  return ball;
}

}  // namespace mmph::geo
