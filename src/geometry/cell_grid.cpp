#include "mmph/geometry/cell_grid.hpp"

#include <algorithm>
#include <cmath>

#include "mmph/support/assert.hpp"

namespace mmph::geo {

CellGrid::CellGrid(const PointSet& points, double cell_size)
    : points_(points), cell_size_(cell_size) {
  MMPH_REQUIRE(cell_size > 0.0, "CellGrid: cell size must be positive");
  MMPH_REQUIRE(!points.empty(), "CellGrid: empty point set");
  box_ = points.bounding_box();

  const std::size_t dim = points.dim();
  dims_.resize(dim);
  std::size_t total_cells = 1;
  for (std::size_t d = 0; d < dim; ++d) {
    const double span = box_.hi[d] - box_.lo[d];
    dims_[d] = static_cast<std::size_t>(std::floor(span / cell_size_)) + 1;
    MMPH_REQUIRE(total_cells <= (1u << 28) / dims_[d] + 1,
                 "CellGrid: too many cells; increase cell_size");
    total_cells *= dims_[d];
  }
  MMPH_REQUIRE(total_cells <= (1u << 28),
               "CellGrid: too many cells; increase cell_size");

  // Counting-sort points into cells (CSR layout: two passes, no per-cell
  // vectors, cache-friendly iteration).
  const std::size_t n = points.size();
  cell_of_point_.resize(n);
  std::vector<std::size_t> coords(dim);
  std::vector<std::size_t> counts(total_cells + 1, 0);
  for (std::size_t i = 0; i < n; ++i) {
    ConstVec p = points[i];
    for (std::size_t d = 0; d < dim; ++d) coords[d] = cell_coord(p[d], d);
    const std::size_t cell = flatten(coords);
    cell_of_point_[i] = cell;
    ++counts[cell + 1];
  }
  for (std::size_t c = 0; c < total_cells; ++c) {
    if (counts[c + 1] > 0) ++occupied_cells_;
    counts[c + 1] += counts[c];
  }
  cell_start_ = counts;
  cell_items_.resize(n);
  std::vector<std::size_t> cursor(cell_start_.begin(), cell_start_.end() - 1);
  for (std::size_t i = 0; i < n; ++i) {
    cell_items_[cursor[cell_of_point_[i]]++] = i;
  }
}

std::size_t CellGrid::cell_coord(double v, std::size_t d) const {
  if (v <= box_.lo[d]) return 0;
  const std::size_t c =
      static_cast<std::size_t>(std::floor((v - box_.lo[d]) / cell_size_));
  return std::min(c, dims_[d] - 1);
}

std::size_t CellGrid::flatten(std::span<const std::size_t> coords) const {
  std::size_t flat = 0;
  for (std::size_t d = 0; d < coords.size(); ++d) {
    flat = flat * dims_[d] + coords[d];
  }
  return flat;
}

void CellGrid::for_each_in_box(
    ConstVec center, double radius,
    const std::function<void(std::size_t)>& fn) const {
  for_each_cell_span(center, radius,
                     [&](std::span<const std::size_t> items) {
                       for (const std::size_t i : items) fn(i);
                     });
}

std::vector<std::size_t> CellGrid::query_ball(ConstVec center, double radius,
                                              const Metric& metric) const {
  std::vector<std::size_t> out;
  if (metric.norm() == Norm::kL2) {
    // Squared-distance reject: candidates clearly outside the ball skip
    // the sqrt; the margin keeps the boundary test exact.
    const double r2_skip = radius * radius * kSquaredSkipMargin;
    for_each_in_box(center, radius, [&](std::size_t i) {
      const double d2 = dist2_sq(center, points_[i]);
      if (d2 > r2_skip) return;
      if (std::sqrt(d2) <= radius) out.push_back(i);
    });
  } else {
    for_each_in_box(center, radius, [&](std::size_t i) {
      if (metric.distance(center, points_[i]) <= radius) out.push_back(i);
    });
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace mmph::geo
