#include "mmph/exp/experiment.hpp"

#include <cmath>
#include <mutex>

#include "mmph/core/exhaustive.hpp"
#include "mmph/parallel/parallel_for.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::exp {

TrialResult run_trial(const TrialSetup& setup,
                      const std::vector<std::string>& solvers,
                      bool with_exhaustive, rnd::Rng& rng) {
  rnd::WorkloadSpec spec;
  spec.n = setup.n;
  spec.dim = setup.dim;
  spec.box_side = setup.box_side;
  spec.placement = setup.placement;
  spec.weights = setup.weights;
  spec.weight_lo = setup.weight_lo;
  spec.weight_hi = setup.weight_hi;

  const core::Problem problem = core::Problem::from_workload(
      rnd::generate_workload(spec, rng), setup.radius, setup.metric,
      setup.shape);

  TrialResult result;
  result.exhaustive_reward = std::nan("");
  if (with_exhaustive) {
    // The exhaustive DFS already parallelizes internally when invoked from
    // a serial context; inside a parallel sweep the outer parallelism is
    // enough, and nesting would oversubscribe, so run it serially here.
    core::ExhaustiveOptions opts;
    opts.parallel = false;
    const core::ExhaustiveSolver ex = core::ExhaustiveSolver::over_grid_and_points(
        problem, setup.solver_config.grid_pitch, opts);
    result.exhaustive_reward = ex.solve(problem, setup.k).total_reward;
  }
  for (const std::string& name : solvers) {
    const auto solver = core::make_solver(name, problem, setup.solver_config);
    result.rewards[name] = solver->solve(problem, setup.k).total_reward;
  }
  return result;
}

CellStats run_cell(const TrialSetup& setup,
                   const std::vector<std::string>& solvers,
                   bool with_exhaustive, std::size_t trials,
                   std::uint64_t base_seed) {
  MMPH_REQUIRE(trials >= 1, "run_cell: need at least one trial");
  CellStats cell;
  cell.setup = setup;
  cell.trials = trials;

  // One result slot per trial keeps aggregation order deterministic
  // regardless of which worker finishes first.
  std::vector<TrialResult> results(trials);
  const rnd::Rng base(base_seed);
  par::parallel_for(
      par::ThreadPool::global(), 0, trials,
      [&](std::size_t t) {
        rnd::Rng rng = base.fork(t);
        results[t] = run_trial(setup, solvers, with_exhaustive, rng);
      },
      /*grain=*/1);

  for (const TrialResult& r : results) {
    if (with_exhaustive) {
      MMPH_ASSERT(r.exhaustive_reward > 0.0,
                  "exhaustive optimum should be positive");
      cell.exhaustive.add(r.exhaustive_reward);
    }
    for (const auto& [name, reward] : r.rewards) {
      cell.reward[name].add(reward);
      if (with_exhaustive) {
        cell.ratio[name].add(reward / r.exhaustive_reward);
      }
    }
  }
  return cell;
}

std::vector<CellStats> run_sweep(TrialSetup base,
                                 const std::vector<std::size_t>& ks,
                                 const std::vector<double>& rs,
                                 const std::vector<std::string>& solvers,
                                 bool with_exhaustive, std::size_t trials,
                                 std::uint64_t base_seed) {
  std::vector<CellStats> rows;
  rows.reserve(ks.size() * rs.size());
  std::uint64_t cell_index = 0;
  for (std::size_t k : ks) {
    for (double r : rs) {
      TrialSetup setup = base;
      setup.k = k;
      setup.radius = r;
      rows.push_back(run_cell(setup, solvers, with_exhaustive, trials,
                              base_seed + 7919 * cell_index));
      ++cell_index;
    }
  }
  return rows;
}

}  // namespace mmph::exp
