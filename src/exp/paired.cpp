#include "mmph/exp/paired.hpp"

#include <cmath>

#include "mmph/io/stats.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::exp {

PairedComparison paired_compare(std::span<const double> a,
                                std::span<const double> b, double tie_tol) {
  MMPH_REQUIRE(a.size() == b.size(),
               "paired_compare: sample sizes must match");
  MMPH_REQUIRE(!a.empty(), "paired_compare: empty samples");
  MMPH_REQUIRE(tie_tol >= 0.0, "paired_compare: negative tie tolerance");

  PairedComparison cmp;
  cmp.samples = a.size();
  io::RunningStats diff;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    diff.add(d);
    if (d > tie_tol) {
      ++cmp.wins_a;
    } else if (d < -tie_tol) {
      ++cmp.wins_b;
    } else {
      ++cmp.ties;
    }
  }
  cmp.mean_diff = diff.mean();
  cmp.stddev_diff = diff.stddev();
  if (cmp.stddev_diff > 0.0 && cmp.samples >= 2) {
    cmp.t_statistic = cmp.mean_diff /
                      (cmp.stddev_diff /
                       std::sqrt(static_cast<double>(cmp.samples)));
  } else {
    // Zero variance: any nonzero mean difference is trivially significant.
    cmp.t_statistic = cmp.mean_diff == 0.0
                          ? 0.0
                          : std::copysign(1e9, cmp.mean_diff);
  }
  cmp.significant_95 = std::fabs(cmp.t_statistic) > 1.96;
  return cmp;
}

}  // namespace mmph::exp
