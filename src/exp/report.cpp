#include "mmph/exp/report.hpp"

#include "mmph/core/bounds.hpp"
#include "mmph/support/assert.hpp"

namespace mmph::exp {

io::Table ratio_table(const std::vector<CellStats>& cells,
                      const std::vector<std::string>& solvers) {
  std::vector<std::string> headers{"n", "k", "r"};
  for (const std::string& s : solvers) headers.push_back("ratio(" + s + ")");
  headers.push_back("approx.1");
  headers.push_back("approx.2");
  io::Table table(std::move(headers));
  for (const CellStats& cell : cells) {
    std::vector<std::string> row{std::to_string(cell.setup.n),
                                 std::to_string(cell.setup.k),
                                 io::fixed(cell.setup.radius, 1)};
    for (const std::string& s : solvers) {
      const auto it = cell.ratio.find(s);
      MMPH_ASSERT(it != cell.ratio.end(), "ratio_table: missing solver");
      row.push_back(io::fixed(it->second.mean(), 4));
    }
    row.push_back(
        io::fixed(core::approx_ratio_round_based(cell.setup.k), 4));
    row.push_back(io::fixed(
        core::approx_ratio_local_greedy(cell.setup.n, cell.setup.k), 4));
    table.add_row(std::move(row));
  }
  return table;
}

io::Table reward_table(const std::vector<CellStats>& cells,
                       const std::vector<std::string>& solvers) {
  std::vector<std::string> headers{"n", "k", "r"};
  for (const std::string& s : solvers) headers.push_back("reward(" + s + ")");
  io::Table table(std::move(headers));
  for (const CellStats& cell : cells) {
    std::vector<std::string> row{std::to_string(cell.setup.n),
                                 std::to_string(cell.setup.k),
                                 io::fixed(cell.setup.radius, 1)};
    for (const std::string& s : solvers) {
      const auto it = cell.reward.find(s);
      MMPH_ASSERT(it != cell.reward.end(), "reward_table: missing solver");
      row.push_back(io::fixed(it->second.mean(), 4));
    }
    table.add_row(std::move(row));
  }
  return table;
}

std::map<std::string, double> overall_ratio_means(
    const std::vector<CellStats>& cells,
    const std::vector<std::string>& solvers) {
  std::map<std::string, double> out;
  for (const std::string& s : solvers) {
    io::RunningStats pooled;
    for (const CellStats& cell : cells) {
      const auto it = cell.ratio.find(s);
      if (it != cell.ratio.end()) pooled.merge(it->second);
    }
    out[s] = pooled.mean();
  }
  return out;
}

std::map<std::string, double> overall_reward_means(
    const std::vector<CellStats>& cells,
    const std::vector<std::string>& solvers) {
  std::map<std::string, double> out;
  for (const std::string& s : solvers) {
    io::RunningStats pooled;
    for (const CellStats& cell : cells) {
      const auto it = cell.reward.find(s);
      if (it != cell.reward.end()) pooled.merge(it->second);
    }
    out[s] = pooled.mean();
  }
  return out;
}

}  // namespace mmph::exp
