#include "mmph/chaos/faulty_socket_ops.hpp"

#include <cerrno>

#include <utility>

namespace mmph::chaos {

FaultySocketOps::FaultySocketOps(Injector& injector, std::string site_prefix,
                                 net::SocketOps& inner)
    : injector_(injector), prefix_(std::move(site_prefix)), inner_(inner) {}

bool FaultySocketOps::fire(std::string_view name) {
  return injector_.fire(prefix_ + std::string(name));
}

ssize_t FaultySocketOps::read(int fd, std::uint8_t* buf, std::size_t cap) {
  if (fire("read_eintr")) {
    errno = EINTR;
    return -1;
  }
  if (fire("read_reset")) {
    errno = ECONNRESET;
    return -1;
  }
  if (cap > 1 && fire("read_short")) cap = 1;
  return inner_.read(fd, buf, cap);
}

ssize_t FaultySocketOps::write(int fd, const std::uint8_t* buf,
                               std::size_t len) {
  if (fire("write_eintr")) {
    errno = EINTR;
    return -1;
  }
  if (fire("write_reset")) {
    errno = EPIPE;
    return -1;
  }
  if (len > 1 && fire("write_short")) len = 1;
  return inner_.write(fd, buf, len);
}

ssize_t FaultySocketOps::writev(int fd, const iovec* iov, int iovcnt) {
  if (fire("write_eintr")) {
    errno = EINTR;
    return -1;
  }
  if (fire("write_reset")) {
    errno = EPIPE;
    return -1;
  }
  if (fire("write_short")) {
    // Short gather-write: 1 byte of the first non-empty buffer.
    for (int i = 0; i < iovcnt; ++i) {
      if (iov[i].iov_len == 0) continue;
      return inner_.write(fd, static_cast<const std::uint8_t*>(iov[i].iov_base),
                          1);
    }
  }
  return inner_.writev(fd, iov, iovcnt);
}

int FaultySocketOps::accept(int listener_fd) {
  if (fire("accept_eintr")) {
    errno = EINTR;
    return -1;
  }
  return inner_.accept(listener_fd);
}

}  // namespace mmph::chaos
