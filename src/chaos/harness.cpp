#include "mmph/chaos/harness.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <utility>
#include <vector>

#include "mmph/chaos/faulty_file_ops.hpp"
#include "mmph/chaos/faulty_socket_ops.hpp"
#include "mmph/chaos/injector.hpp"
#include "mmph/core/kernels.hpp"
#include "mmph/ls/local_search.hpp"
#include "mmph/net/client.hpp"
#include "mmph/net/server.hpp"
#include "mmph/random/pcg64.hpp"
#include "mmph/serve/placement_service.hpp"
#include "mmph/wal/recovery.hpp"
#include "mmph/wal/sharded_wal.hpp"
#include "mmph/wal/snapshot.hpp"
#include "mmph/wal/writer.hpp"

namespace mmph::chaos {
namespace {

using std::chrono::milliseconds;

/// Distinct stream tags: the fault schedule and the request workload are
/// derived from the same seed but must not share a stream (adding a fault
/// site must not reshuffle the workload).
constexpr std::uint64_t kPlanStream = 0x9A7C0FFEE1234567ull;
constexpr std::uint64_t kWorkloadStream = 0x3C6EF372FE94F82Aull;

std::string describe(std::uint64_t seed, const std::string& what) {
  std::ostringstream out;
  out << "seed=" << seed << ": " << what;
  return out.str();
}

std::uint64_t total_fired(const Injector& injector) {
  std::uint64_t fired = 0;
  for (const SiteReport& site : injector.report()) fired += site.fired;
  return fired;
}

serve::UserRecord make_user(std::uint64_t id, rnd::Pcg64& rng) {
  serve::UserRecord user;
  user.id = id;
  user.interest = {rng.next_double(), rng.next_double()};
  user.weight = 0.5 + rng.next_double();
  return user;
}

geo::PointSet make_probe(rnd::Pcg64& rng) {
  geo::PointSet probe(2);
  const std::size_t count = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < count; ++i) {
    const double row[2] = {rng.next_double(), rng.next_double()};
    probe.push_back(geo::ConstVec(row, 2));
  }
  return probe;
}

bool same_centers(const geo::PointSet& got, const geo::PointSet& want) {
  if (got.size() != want.size() || got.dim() != want.dim()) return false;
  for (std::size_t c = 0; c < got.size(); ++c) {
    for (std::size_t d = 0; d < got.dim(); ++d) {
      if (got[c][d] != want[c][d]) return false;
    }
  }
  return true;
}

}  // namespace

FaultPlan serve_plan_for_seed(std::uint64_t seed) {
  rnd::Pcg64 rng(seed ^ kPlanStream);
  FaultPlan plan;
  plan.seed = seed;
  // Each schedule draws its own mix; any site may also land near zero, so
  // the sweep covers "one dominant fault" as well as "everything at once".
  plan.with(serve::kFaultQueueFull, 0.25 * rng.next_double());
  plan.with(serve::kFaultDeadlineSkew, 0.20 * rng.next_double());
  plan.with(serve::kFaultSolverThrow, 0.20 * rng.next_double());
  plan.with(serve::kFaultAllocFail, 0.20 * rng.next_double());
  // Spatial-index faults are output-invisible by contract (the index is
  // an accelerator, never truth): the schedule may drop or corrupt the
  // carried grid at any point and the placement must not move a bit.
  plan.with(serve::kFaultSpatialAllocFail, 0.25 * rng.next_double());
  plan.with(serve::kFaultSpatialCorrupt, 0.25 * rng.next_double());
  return plan;
}

FaultPlan net_plan_for_seed(std::uint64_t seed) {
  return net_plan_for_seed(seed, 1);
}

FaultPlan net_plan_for_seed(std::uint64_t seed, std::size_t loops) {
  rnd::Pcg64 rng(seed ^ kPlanStream);
  FaultPlan plan;
  plan.seed = seed;
  // loops == 1 keeps the historical prefix pair (and thus the exact
  // per-seed probabilities); loops > 1 gives every loop its own server
  // prefix. Probabilities are drawn from one sequential stream, but each
  // *site*'s fire/no-fire stream is keyed by site name in the Injector,
  // so per-loop streams are independent regardless.
  std::vector<std::string> prefixes;
  if (loops <= 1) {
    prefixes.emplace_back(kServerSitePrefix);
  } else {
    for (std::size_t i = 0; i < loops; ++i) {
      prefixes.push_back(server_loop_site_prefix(i));
    }
  }
  prefixes.emplace_back(kClientSitePrefix);
  for (const std::string& p : prefixes) {
    // Retry-shaped faults stay under kMaxRetryProbability so every
    // EINTR/short-IO loop terminates; resets are kept rare because each
    // one costs a whole connection teardown + reconnect round.
    plan.with(p + "read_eintr", 0.20 * rng.next_double());
    plan.with(p + "read_short", kMaxRetryProbability * rng.next_double());
    plan.with(p + "read_reset", 0.04 * rng.next_double());
    plan.with(p + "write_eintr", 0.20 * rng.next_double());
    plan.with(p + "write_short", kMaxRetryProbability * rng.next_double());
    plan.with(p + "write_reset", 0.04 * rng.next_double());
    plan.with(p + "accept_eintr", 0.20 * rng.next_double());
  }
  return plan;
}

ChaosResult run_serve_chaos(const ServeChaosOptions& options) {
  ChaosResult result;
  result.seed = options.seed;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.message = describe(options.seed, what);
    return result;
  };

  Injector injector(serve_plan_for_seed(options.seed));

  // Force the coverage grid on (populations here sit far below the kAuto
  // threshold) so the spatial.* fault sites are actually consulted; the
  // fault-free replay below runs under the same mode, and the index is
  // bit-invisible anyway.
  const core::kernels::ScopedIndexMode index_mode(
      core::kernels::IndexMode::kGrid);

  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 4;
  config.radius = 0.3;
  // Every re-solve is a full sharded solve: the placement is then a pure
  // function of store content + row order, which makes the fault-free
  // replay below comparable bit-for-bit.
  config.full_solve_churn_fraction = 0.0;
  config.queue_capacity = options.queue_capacity;
  config.max_batch = 16;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  // The same sequence of kOk-answered mutations, replayed fault-free,
  // must land on the same placement. Op payloads are recorded up front;
  // which of them "took" is known only after the futures resolve.
  struct Mutation {
    bool is_add = false;
    std::vector<serve::UserRecord> users;
    std::vector<std::uint64_t> ids;
  };
  std::vector<Mutation> mutations;              // one per submitted op
  std::vector<std::size_t> mutation_of;         // future idx -> mutation idx
  std::vector<std::future<serve::Response>> futures;

  rnd::Pcg64 rng(options.seed ^ kWorkloadStream);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;

  for (std::size_t op = 0; op < options.operations; ++op) {
    const std::uint64_t kind = rng.next_below(10);
    serve::Request request;
    Mutation mutation;
    if (kind < 5 || live.empty()) {  // add 1..4 users (some upserts)
      std::vector<serve::UserRecord> batch;
      const std::size_t count = 1 + rng.next_below(4);
      for (std::size_t j = 0; j < count; ++j) {
        const bool reuse = !live.empty() && rng.next_below(10) < 3;
        const std::uint64_t id =
            reuse ? live[rng.next_below(live.size())] : next_id++;
        if (!reuse) live.push_back(id);
        batch.push_back(make_user(id, rng));
      }
      mutation.is_add = true;
      mutation.users = batch;
      request = serve::Request::add_users(std::move(batch));
    } else if (kind < 7) {  // remove 1..2 ids (sometimes unknown)
      std::vector<std::uint64_t> ids;
      const std::size_t count = 1 + rng.next_below(2);
      for (std::size_t j = 0; j < count; ++j) {
        if (rng.next_below(10) < 8) {
          const std::size_t at = rng.next_below(live.size());
          ids.push_back(live[at]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
        } else {
          ids.push_back(0xDEAD0000ull + rng.next_below(64));  // unknown id
        }
        if (live.empty()) break;
      }
      mutation.ids = ids;
      request = serve::Request::remove_users(std::move(ids));
    } else if (kind < 9) {
      request = serve::Request::query_placement();
    } else {
      request = serve::Request::evaluate(make_probe(rng));
    }
    request.deadline = std::chrono::steady_clock::now() + milliseconds(5000);
    const bool is_mutation = !mutation.users.empty() || !mutation.ids.empty();
    mutations.push_back(std::move(mutation));
    mutation_of.push_back(is_mutation ? mutations.size() - 1
                                      : static_cast<std::size_t>(-1));
    futures.push_back(service.submit(std::move(request)));
    ++result.requests;

    // Drain in bursts so the queue both fills (kRejected coverage) and
    // empties (deadline_skew coverage at dequeue).
    if (rng.next_below(4) == 0) {
      while (service.pump(milliseconds(0)) > 0) {
      }
    }
  }
  while (service.pump(milliseconds(0)) > 0) {
  }
  if (service.queue_depth() != 0) return fail("queue did not drain");

  // Invariant 1: exactly-once replies, every status from the valid set.
  std::vector<serve::ResponseStatus> statuses;
  statuses.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid() ||
        futures[i].wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      return fail("request " + std::to_string(i) + " was never answered");
    }
    serve::Response response;
    try {
      response = futures[i].get();
    } catch (const std::future_error&) {
      return fail("request " + std::to_string(i) + " promise was abandoned");
    }
    switch (response.status) {
      case serve::ResponseStatus::kOk:
      case serve::ResponseStatus::kRejected:
      case serve::ResponseStatus::kTimeout:
      case serve::ResponseStatus::kInternalError:
        break;
      default:
        return fail("request " + std::to_string(i) + " got invalid status " +
                    std::string(serve::to_string(response.status)));
    }
    statuses.push_back(response.status);
  }

  // Invariant 2: counter conservation after quiesce (shutdown untouched —
  // the service has not been stopped).
  const serve::MetricsSnapshot m = service.metrics();
  if (m.submitted != m.batched_requests + m.timeouts + m.rejected_full) {
    std::ostringstream out;
    out << "counter conservation violated: submitted=" << m.submitted
        << " batched=" << m.batched_requests << " timeouts=" << m.timeouts
        << " rejected=" << m.rejected_full;
    return fail(out.str());
  }
  if (m.shutdown != 0) return fail("spurious shutdown answers");

  // Invariants 3+4: disarm, then the survivor must match a fault-free
  // replay of exactly the kOk mutations, bit for bit and epoch included
  // (a kOk answer promises the mutation was fully applied; anything else
  // promises it was not applied at all).
  injector.set_armed(false);

  serve::ServiceConfig ref_config = config;
  ref_config.fault_hook = {};
  serve::PlacementService reference(ref_config);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (statuses[i] != serve::ResponseStatus::kOk) continue;
    if (mutation_of[i] == static_cast<std::size_t>(-1)) continue;
    const Mutation& mutation = mutations[mutation_of[i]];
    if (mutation.is_add) {
      reference.apply_add(mutation.users);
    } else {
      reference.apply_remove(mutation.ids);
    }
  }

  const serve::PlacementView survivor = service.placement();
  const serve::PlacementView replay = reference.placement();
  if (service.population() != reference.population()) {
    return fail("population diverged from fault-free replay");
  }
  if (survivor.epoch != replay.epoch) {
    std::ostringstream out;
    out << "epoch diverged: survivor=" << survivor.epoch
        << " replay=" << replay.epoch;
    return fail(out.str());
  }
  if (survivor.objective != replay.objective) {
    std::ostringstream out;
    out.precision(17);
    out << "objective diverged: survivor=" << survivor.objective
        << " replay=" << replay.objective;
    return fail(out.str());
  }
  if (!same_centers(survivor.solution.centers, replay.solution.centers)) {
    return fail("centers diverged from fault-free replay");
  }

  result.faults_fired = total_fired(injector);
  return result;
}

FaultPlan ls_plan_for_seed(std::uint64_t seed) {
  rnd::Pcg64 rng(seed ^ kPlanStream);
  FaultPlan plan;
  plan.seed = seed;
  // The eval site is consulted once per delta evaluation — thousands of
  // times per polish — so the per-consult probability must sit orders of
  // magnitude below the serve sites to leave some polishes un-aborted
  // (the sweep needs both "abort keeps the seed" and "polish survives"
  // coverage on most seeds).
  plan.with(ls::kFaultLsEvalThrow, 5e-4 * rng.next_double());
  // Spatial faults stay armed too: the polish borrows the carried index,
  // and dropping/corrupting it must remain output-invisible.
  plan.with(serve::kFaultSpatialAllocFail, 0.25 * rng.next_double());
  plan.with(serve::kFaultSpatialCorrupt, 0.25 * rng.next_double());
  return plan;
}

ChaosResult run_ls_chaos(const LsChaosOptions& options) {
  ChaosResult result;
  result.seed = options.seed;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.message = describe(options.seed, what);
    return result;
  };

  Injector injector(ls_plan_for_seed(options.seed));

  // Force the coverage grid on (see run_serve_chaos) so the borrowed-index
  // path of the polish and the spatial.* sites are actually exercised.
  const core::kernels::ScopedIndexMode index_mode(
      core::kernels::IndexMode::kGrid);

  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 4;
  config.radius = 0.3;
  config.solver = serve::SolverTier::kLs;
  // Every re-solve is a full sharded solve + polish: the placement is then
  // a pure function of store content + row order, which makes the
  // fault-free replay below comparable bit-for-bit.
  config.full_solve_churn_fraction = 0.0;
  config.max_batch = 16;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  struct Mutation {
    bool is_add = false;
    std::vector<serve::UserRecord> users;
    std::vector<std::uint64_t> ids;
  };
  std::vector<Mutation> mutations;
  std::vector<std::size_t> mutation_of;
  std::vector<std::future<serve::Response>> futures;

  rnd::Pcg64 rng(options.seed ^ kWorkloadStream);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;

  auto submit = [&](serve::Request request, Mutation mutation) {
    request.deadline = std::chrono::steady_clock::now() + milliseconds(5000);
    const bool is_mutation = !mutation.users.empty() || !mutation.ids.empty();
    mutations.push_back(std::move(mutation));
    mutation_of.push_back(is_mutation ? mutations.size() - 1
                                      : static_cast<std::size_t>(-1));
    futures.push_back(service.submit(std::move(request)));
    ++result.requests;
  };

  for (std::size_t op = 0; op < options.operations; ++op) {
    const std::uint64_t kind = rng.next_below(10);
    if (kind < 6 || live.empty()) {  // add 1..4 users
      std::vector<serve::UserRecord> batch;
      const std::size_t count = 1 + rng.next_below(4);
      for (std::size_t j = 0; j < count; ++j) {
        const std::uint64_t id = next_id++;
        live.push_back(id);
        batch.push_back(make_user(id, rng));
      }
      Mutation mutation;
      mutation.is_add = true;
      mutation.users = batch;
      submit(serve::Request::add_users(std::move(batch)), std::move(mutation));
    } else if (kind < 8) {  // remove 1..2 live ids
      std::vector<std::uint64_t> ids;
      const std::size_t count = 1 + rng.next_below(2);
      for (std::size_t j = 0; j < count && !live.empty(); ++j) {
        const std::size_t at = rng.next_below(live.size());
        ids.push_back(live[at]);
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
      }
      Mutation mutation;
      mutation.ids = ids;
      submit(serve::Request::remove_users(std::move(ids)),
             std::move(mutation));
    } else if (kind < 9) {
      submit(serve::Request::query_placement(), {});
    } else {
      submit(serve::Request::evaluate(make_probe(rng)), {});
    }
    if (rng.next_below(3) == 0) {
      while (service.pump(milliseconds(0)) > 0) {
      }
    }
  }
  while (service.pump(milliseconds(0)) > 0) {
  }
  if (service.queue_depth() != 0) return fail("queue did not drain");

  result.faults_fired = total_fired(injector);

  // Survival + convergence need one clean re-solve: the last solve under
  // fire may have kept its unpolished seed, which is valid but not what
  // the fault-free replay produces. Disarm, apply one more known
  // mutation, and require the final solve to polish cleanly.
  injector.set_armed(false);
  {
    rnd::Pcg64 tail_rng(options.seed ^ kWorkloadStream ^ 0x5157ull);
    Mutation mutation;
    mutation.is_add = true;
    mutation.users = {make_user(next_id++, tail_rng)};
    std::vector<serve::UserRecord> batch = mutation.users;
    submit(serve::Request::add_users(std::move(batch)), std::move(mutation));
    while (service.pump(milliseconds(0)) > 0) {
    }
  }

  // Invariant 1: exactly-once replies, every status from the valid set
  // (ls.eval_throw must never surface as a failed request — an aborted
  // polish still answers kOk with the seed placement).
  std::vector<serve::ResponseStatus> statuses;
  statuses.reserve(futures.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (!futures[i].valid() ||
        futures[i].wait_for(std::chrono::seconds(0)) !=
            std::future_status::ready) {
      return fail("request " + std::to_string(i) + " was never answered");
    }
    serve::Response response;
    try {
      response = futures[i].get();
    } catch (const std::future_error&) {
      return fail("request " + std::to_string(i) + " promise was abandoned");
    }
    switch (response.status) {
      case serve::ResponseStatus::kOk:
      case serve::ResponseStatus::kRejected:
      case serve::ResponseStatus::kTimeout:
      case serve::ResponseStatus::kInternalError:
        break;
      default:
        return fail("request " + std::to_string(i) + " got invalid status " +
                    std::string(serve::to_string(response.status)));
    }
    statuses.push_back(response.status);
  }
  if (statuses.back() != serve::ResponseStatus::kOk) {
    return fail("post-disarm mutation did not answer kOk");
  }

  // Invariant 2: counter conservation after quiesce.
  const serve::MetricsSnapshot m = service.metrics();
  if (m.submitted != m.batched_requests + m.timeouts + m.rejected_full) {
    std::ostringstream out;
    out << "counter conservation violated: submitted=" << m.submitted
        << " batched=" << m.batched_requests << " timeouts=" << m.timeouts
        << " rejected=" << m.rejected_full;
    return fail(out.str());
  }

  // Invariants 3+4: the survivor must match a fault-free kLs replay of the
  // kOk mutations bit for bit, and that replay must sit at or above the
  // kLazy placement for the same store content (polish never hurts).
  serve::ServiceConfig ls_config = config;
  ls_config.fault_hook = {};
  serve::PlacementService ls_reference(ls_config);
  serve::ServiceConfig lazy_config = ls_config;
  lazy_config.solver = serve::SolverTier::kLazy;
  serve::PlacementService lazy_reference(lazy_config);
  for (std::size_t i = 0; i < futures.size(); ++i) {
    if (statuses[i] != serve::ResponseStatus::kOk) continue;
    if (mutation_of[i] == static_cast<std::size_t>(-1)) continue;
    const Mutation& mutation = mutations[mutation_of[i]];
    if (mutation.is_add) {
      ls_reference.apply_add(mutation.users);
      lazy_reference.apply_add(mutation.users);
    } else {
      ls_reference.apply_remove(mutation.ids);
      lazy_reference.apply_remove(mutation.ids);
    }
  }

  const serve::PlacementView survivor = service.placement();
  const serve::PlacementView replay = ls_reference.placement();
  const serve::PlacementView lazy = lazy_reference.placement();
  if (service.population() != ls_reference.population()) {
    return fail("population diverged from fault-free replay");
  }
  if (survivor.epoch != replay.epoch) {
    std::ostringstream out;
    out << "epoch diverged: survivor=" << survivor.epoch
        << " replay=" << replay.epoch;
    return fail(out.str());
  }
  if (survivor.objective != replay.objective) {
    std::ostringstream out;
    out.precision(17);
    out << "objective diverged: survivor=" << survivor.objective
        << " replay=" << replay.objective;
    return fail(out.str());
  }
  if (!same_centers(survivor.solution.centers, replay.solution.centers)) {
    return fail("centers diverged from fault-free replay");
  }
  if (replay.objective < lazy.objective) {
    std::ostringstream out;
    out.precision(17);
    out << "polish hurt the placement: ls=" << replay.objective
        << " lazy=" << lazy.objective;
    return fail(out.str());
  }

  return result;
}

ChaosResult run_net_chaos(const NetChaosOptions& options) {
  ChaosResult result;
  result.seed = options.seed;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.message = describe(options.seed, what);
    return result;
  };

  const std::size_t loops = options.loops == 0 ? 1 : options.loops;
  Injector injector(net_plan_for_seed(options.seed, loops));
  FaultySocketOps server_ops(injector, std::string(kServerSitePrefix));
  FaultySocketOps client_ops(injector, std::string(kClientSitePrefix));
  // Multi-loop servers get one injector stream per loop so each loop's
  // fault sequence is independent of the others' consult timing.
  std::vector<std::unique_ptr<FaultySocketOps>> loop_ops;
  if (loops > 1) {
    for (std::size_t i = 0; i < loops; ++i) {
      loop_ops.push_back(std::make_unique<FaultySocketOps>(
          injector, server_loop_site_prefix(i)));
    }
  }

  serve::ServiceConfig service_config;
  service_config.dim = 2;
  service_config.k = 3;
  service_config.radius = 0.35;
  service_config.full_solve_churn_fraction = 0.0;  // see run_serve_chaos

  net::NetServerConfig net_config;
  net_config.loops = loops;
  net_config.poll_interval = milliseconds(2);
  // Each injected reset makes the client reconnect, and the dead server
  // side lingers until the next poll pass notices EOF — leave headroom so
  // a reset-heavy schedule does not trip the shed policy mid-run.
  net_config.max_connections = 128;
  net_config.idle_timeout = milliseconds(10000);
  // Generous deadline: injected slow IO must surface as retries, not as
  // spurious kTimeout noise in the conservation accounting.
  net_config.request_deadline = milliseconds(5000);
  net_config.socket_ops = &server_ops;
  for (auto& ops : loop_ops) net_config.loop_socket_ops.push_back(ops.get());

  net::NetServer server(std::move(service_config), net_config);
  server.start();

  net::NetClientConfig client_config;
  client_config.port = server.port();
  client_config.socket_ops = &client_ops;
  client_config.max_attempts = 8;
  client_config.connect_timeout = milliseconds(2000);
  client_config.send_timeout = milliseconds(2000);
  client_config.recv_timeout = milliseconds(2000);
  net::NetClient client(client_config);

  rnd::Pcg64 rng(options.seed ^ kWorkloadStream);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;
  std::map<std::uint64_t, serve::UserRecord> desired;  // target end state
  std::uint64_t gave_up = 0;

  auto check_status = [&](const net::ResponseFrame& reply) {
    switch (reply.status) {
      case net::WireStatus::kOk:
      case net::WireStatus::kTimeout:
      case net::WireStatus::kRejected:
      case net::WireStatus::kOverloaded:
        return true;
      default:
        return false;  // kBadRequest/kShutdown/kInternalError: we sent
                       // valid requests to a live server
    }
  };

  for (std::size_t op = 0; op < options.operations; ++op) {
    const std::uint64_t kind = rng.next_below(10);
    try {
      net::ResponseFrame reply;
      if (kind < 5 || live.empty()) {
        std::vector<serve::UserRecord> batch;
        const std::size_t count = 1 + rng.next_below(4);
        for (std::size_t j = 0; j < count; ++j) {
          const bool reuse = !live.empty() && rng.next_below(10) < 3;
          const std::uint64_t id =
              reuse ? live[rng.next_below(live.size())] : next_id++;
          if (!reuse) live.push_back(id);
          serve::UserRecord user = make_user(id, rng);
          desired[id] = user;
          batch.push_back(std::move(user));
        }
        reply = client.add_users(std::move(batch));
      } else if (kind < 7) {
        const std::size_t at = rng.next_below(live.size());
        const std::uint64_t id = live[at];
        live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
        desired.erase(id);
        reply = client.remove_users({id});
      } else if (kind < 9) {
        reply = client.query_placement();
      } else {
        reply = client.evaluate(make_probe(rng));
      }
      ++result.requests;
      if (!check_status(reply)) {
        return fail("op " + std::to_string(op) + " got invalid status " +
                    std::string(net::to_string(reply.status)));
      }
    } catch (const net::NetError&) {
      // Transport gave up after max_attempts: legal under injected
      // resets. The op's effect is now ambiguous (applied or not), which
      // is exactly why reconciliation below rebuilds by content.
      ++result.requests;
      ++gave_up;
    }
  }

  // Disarm and reconcile: strip the ambiguous history (remove every id
  // ever used — unknown ids are ignored), then impose the desired end
  // state in one known order. Afterwards the store's content AND row
  // order equal a fresh service fed the same sequence, so the placement
  // must match bit-for-bit. Epochs are excluded by design: lost replies
  // make the server-side mutation count unknowable.
  injector.set_armed(false);
  client.disconnect();

  std::vector<std::uint64_t> all_ids;
  all_ids.reserve(static_cast<std::size_t>(next_id));
  for (std::uint64_t id = 1; id < next_id; ++id) all_ids.push_back(id);
  std::vector<serve::UserRecord> final_users;
  final_users.reserve(desired.size());
  for (const auto& [id, user] : desired) final_users.push_back(user);

  try {
    if (!all_ids.empty()) {
      const net::ResponseFrame removed = client.remove_users(all_ids);
      if (removed.status != net::WireStatus::kOk) {
        return fail("post-disarm remove answered " +
                    std::string(net::to_string(removed.status)));
      }
    }
    if (server.service().population() != 0) {
      return fail("population nonzero after removing every known id");
    }
    if (!final_users.empty()) {
      const net::ResponseFrame added = client.add_users(final_users);
      if (added.status != net::WireStatus::kOk) {
        return fail("post-disarm add answered " +
                    std::string(net::to_string(added.status)));
      }
    }

    const net::ResponseFrame query = client.query_placement();
    if (query.status != net::WireStatus::kOk) {
      return fail("post-disarm query answered " +
                  std::string(net::to_string(query.status)));
    }

    serve::ServiceConfig ref_config = server.service().config();
    serve::PlacementService reference(ref_config);
    if (!final_users.empty()) reference.apply_add(final_users);
    const serve::PlacementView replay = reference.placement();

    if (server.service().population() != reference.population()) {
      return fail("population diverged from content rebuild");
    }
    if (query.objective != replay.objective) {
      std::ostringstream out;
      out.precision(17);
      out << "objective diverged: wire=" << query.objective
          << " rebuild=" << replay.objective << " (gave_up=" << gave_up
          << ")";
      return fail(out.str());
    }
    const geo::PointSet empty(ref_config.dim);
    const geo::PointSet& got =
        query.centers.has_value() ? *query.centers : empty;
    if (!same_centers(got, replay.solution.centers)) {
      return fail("centers diverged from content rebuild");
    }
  } catch (const net::NetError& e) {
    return fail(std::string("transport failed after disarm: ") + e.what());
  }

  // Conservation on the serve side: every request the batcher accepted is
  // accounted for. (All client calls have completed, so the queue has
  // fully quiesced.)
  const serve::MetricsSnapshot m = server.service().metrics();
  if (m.submitted != m.batched_requests + m.timeouts + m.rejected_full) {
    std::ostringstream out;
    out << "counter conservation violated: submitted=" << m.submitted
        << " batched=" << m.batched_requests << " timeouts=" << m.timeouts
        << " rejected=" << m.rejected_full;
    return fail(out.str());
  }

  server.stop();
  result.faults_fired = total_fired(injector);
  return result;
}

FaultPlan wal_plan_for_seed(std::uint64_t seed) {
  rnd::Pcg64 rng(seed ^ kPlanStream);
  FaultPlan plan;
  plan.seed = seed;
  // short_write is retry-shaped (the write_all loop consults again for
  // every 1-byte continuation), so it can run hot. torn_record and
  // fsync_fail poison the writer — they stay rare so most schedules get a
  // meaningful working prefix before the log dies, while the sweep as a
  // whole still covers "log dies early" seeds.
  plan.with(serve::kFaultWalShortWrite,
            kMaxRetryProbability * rng.next_double());
  plan.with(serve::kFaultWalTornRecord, 0.015 * rng.next_double());
  plan.with(serve::kFaultWalFsyncFail, 0.02 * rng.next_double());
  return plan;
}

ChaosResult run_wal_chaos(const WalChaosOptions& options) {
  ChaosResult result;
  result.seed = options.seed;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.message = describe(options.seed, what);
    return result;
  };

  Injector injector(wal_plan_for_seed(options.seed));
  wal::MemFileOps mem;
  FaultyFileOps faulty(injector, mem);

  wal::WalConfig wal_config;
  wal_config.dir = "wal";
  // Group commit keeps the invariant exact: append returning ⟺ the
  // record's bytes are in the (crash-preserving) file ⟺ the mutation was
  // applied. Under kAlways a failed append fsync can leave a durable
  // record the service never applied — legal (the op was never acked)
  // but not bitwise-comparable to the live store.
  wal_config.fsync = wal::FsyncPolicy::kGroupCommit;
  wal_config.snapshot_every_ops = 24;  // checkpoints + prunes mid-run
  wal_config.file_ops = &faulty;
  wal::WalWriter writer(wal_config);

  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 4;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;  // see run_serve_chaos
  config.wal = &writer;
  serve::PlacementService service(config);

  // Every mutation whose effect reached the store, in order, with the
  // store epoch it left behind — the replay source for the torn-tail
  // probe. "Reached the store" is read off the epoch, not the exception:
  // a commit/checkpoint failure throws WalError *after* the apply.
  struct Mutation {
    bool is_add = false;
    std::vector<serve::UserRecord> users;
    std::vector<std::uint64_t> ids;
    std::uint64_t epoch_after = 0;
  };
  std::vector<Mutation> applied;

  rnd::Pcg64 rng(options.seed ^ kWorkloadStream);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;

  for (std::size_t op = 0; op < options.operations; ++op) {
    const std::uint64_t kind = rng.next_below(10);
    if (kind >= 9) {  // keep the solve path in the loop; wal-neutral
      (void)service.placement();
      continue;
    }
    Mutation mutation;
    if (kind < 6 || live.empty()) {  // add 1..4 users (some upserts)
      const std::size_t count = 1 + rng.next_below(4);
      for (std::size_t j = 0; j < count; ++j) {
        const bool reuse = !live.empty() && rng.next_below(10) < 3;
        const std::uint64_t id =
            reuse ? live[rng.next_below(live.size())] : next_id++;
        if (!reuse) live.push_back(id);
        mutation.users.push_back(make_user(id, rng));
      }
      mutation.is_add = true;
    } else {  // remove 1..2 ids (sometimes unknown)
      const std::size_t count = 1 + rng.next_below(2);
      for (std::size_t j = 0; j < count; ++j) {
        if (rng.next_below(10) < 8) {
          const std::size_t at = rng.next_below(live.size());
          mutation.ids.push_back(live[at]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
        } else {
          mutation.ids.push_back(0xDEAD0000ull + rng.next_below(64));
        }
        if (live.empty()) break;
      }
    }

    const std::uint64_t before = service.epoch();
    try {
      if (mutation.is_add) {
        service.apply_add(mutation.users);
      } else {
        service.apply_remove(mutation.ids);
      }
    } catch (const wal::WalError&) {
      // Poisoned/failed log: append failures leave the store untouched,
      // commit failures leave it mutated — the epoch probe below tells
      // the two apart. Either way the run continues against the dead log.
    }
    ++result.requests;
    if (service.epoch() != before) {
      mutation.epoch_after = service.epoch();
      applied.push_back(std::move(mutation));
    }
  }

  // Crash: clone the filesystem exactly as the writer left it. MemFileOps
  // preserves every byte a write() reported written — the documented
  // crash model — so this is "power loss now".
  const wal::WalSnapshot live_image = service.wal_snapshot();
  const std::unique_ptr<wal::MemFileOps> crashed = mem.clone();
  const wal::RecoveryResult recovered =
      wal::recover(wal_config.dir, 2, *crashed);

  // Invariant 1: recovery is clean — injected faults only ever tear the
  // segment *tail* (the first failed write poisons the writer, so nothing
  // is appended after a tear).
  if (!recovered.clean) {
    return fail("recovery not clean: " + recovered.detail);
  }
  // Invariant 2: recovered store == pre-crash store, bitwise (rows, row
  // order, epoch — snapshot_digest covers all of it).
  if (recovered.store.epoch != live_image.epoch) {
    std::ostringstream out;
    out << "recovered epoch " << recovered.store.epoch
        << " != live epoch " << live_image.epoch;
    return fail(out.str());
  }
  if (wal::snapshot_digest(recovered.store) !=
      wal::snapshot_digest(live_image)) {
    return fail("recovered store diverged bitwise from the live store");
  }

  // Invariant 3 (torn-tail probe): chop a random tail off the newest
  // segment of a second clone. Recovery must land cleanly on an exact
  // earlier op boundary — replaying the applied-op prefix up to that
  // epoch must reproduce the recovered store bitwise.
  const std::unique_ptr<wal::MemFileOps> torn = mem.clone();
  const auto names = torn->list(wal_config.dir);
  if (!names.has_value()) return fail("wal dir unreadable in torn probe");
  std::uint64_t newest_epoch = 0;
  bool have_segment = false;
  for (const std::string& name : *names) {
    const auto seg_epoch = wal::parse_file_epoch(name, "wal-", ".mmpl");
    if (seg_epoch.has_value() && (!have_segment || *seg_epoch > newest_epoch)) {
      newest_epoch = *seg_epoch;
      have_segment = true;
    }
  }
  if (have_segment) {
    const std::string seg =
        wal_config.dir + "/" + wal::segment_file_name(newest_epoch);
    const auto seg_bytes = torn->file_bytes(seg);
    if (seg_bytes.has_value() && !seg_bytes->empty()) {
      const std::size_t chop =
          1 + rng.next_below(std::min<std::size_t>(seg_bytes->size(), 512));
      (void)torn->truncate_tail(seg, chop);
      const wal::RecoveryResult prefix =
          wal::recover(wal_config.dir, 2, *torn);
      if (!prefix.clean) {
        return fail("torn-tail recovery not clean: " + prefix.detail);
      }
      serve::ServiceConfig ref_config = config;
      ref_config.wal = nullptr;
      serve::PlacementService reference(ref_config);
      for (const Mutation& mutation : applied) {
        if (reference.epoch() >= prefix.store.epoch) break;
        if (mutation.is_add) {
          reference.apply_add(mutation.users);
        } else {
          reference.apply_remove(mutation.ids);
        }
      }
      if (reference.epoch() != prefix.store.epoch) {
        std::ostringstream out;
        out << "torn-tail recovery stopped off any op boundary: epoch "
            << prefix.store.epoch;
        return fail(out.str());
      }
      if (wal::snapshot_digest(reference.wal_snapshot()) !=
          wal::snapshot_digest(prefix.store)) {
        return fail("torn-tail recovery diverged from the op-prefix replay");
      }
    }
  }

  result.faults_fired = total_fired(injector);
  return result;
}

FaultPlan store_shard_plan_for_seed(std::uint64_t seed) {
  rnd::Pcg64 rng(seed ^ kPlanStream);
  FaultPlan plan;
  plan.seed = seed;
  // short_write is retry-shaped (records still complete), fsync_fail and
  // the barrier site poison the writer set at commit time — *after* the
  // batch applied and its records' bytes were written, so recovered ==
  // live stays exact. torn_record is deliberately absent: a record torn
  // mid-append in a multi-shard batch leaves durable-but-unapplied
  // records in the shards appended before the tear (the documented
  // unacked-may-survive case), which is legal but not bitwise-comparable
  // to the live store. The single-shard wal sweep owns tearing coverage.
  plan.with(serve::kFaultWalShortWrite,
            kMaxRetryProbability * rng.next_double());
  plan.with(serve::kFaultWalFsyncFail, 0.02 * rng.next_double());
  plan.with(serve::kFaultWalBarrierFsyncFail, 0.02 * rng.next_double());
  // Fires before any append or mutation: the batch fails as a unit and
  // the run keeps going with nothing to reconcile.
  plan.with(serve::kFaultStoreShardAllocFail, 0.10 * rng.next_double());
  return plan;
}

ChaosResult run_store_shard_chaos(const StoreShardChaosOptions& options) {
  ChaosResult result;
  result.seed = options.seed;
  auto fail = [&](const std::string& what) {
    result.ok = false;
    result.message = describe(options.seed, what);
    return result;
  };

  Injector injector(store_shard_plan_for_seed(options.seed));
  wal::MemFileOps mem;
  FaultyFileOps faulty(injector, mem);

  wal::WalConfig base;
  base.dir = "wal";
  base.fsync = wal::FsyncPolicy::kGroupCommit;  // see run_wal_chaos
  base.snapshot_every_ops = 24;  // per-shard checkpoints + prunes mid-run
  base.file_ops = &faulty;
  wal::ShardedWal coordinator(base, options.shards, wal::ShardedRecovery{},
                              injector.hook());

  serve::ServiceConfig config;
  config.dim = 2;
  config.k = 4;
  config.radius = 0.3;
  config.full_solve_churn_fraction = 0.0;  // see run_serve_chaos
  config.store_shards = options.shards;
  config.shard_wal = &coordinator;
  config.fault_hook = injector.hook();
  serve::PlacementService service(config);

  rnd::Pcg64 rng(options.seed ^ kWorkloadStream);
  std::uint64_t next_id = 1;
  std::vector<std::uint64_t> live;

  for (std::size_t op = 0; op < options.operations; ++op) {
    const std::uint64_t kind = rng.next_below(10);
    if (kind >= 9) {  // keep the merged sharded solve in the loop
      (void)service.placement();
      continue;
    }
    std::vector<serve::UserRecord> users;
    std::vector<std::uint64_t> ids;
    if (kind < 6 || live.empty()) {  // add 1..4 users (some are region moves)
      const std::size_t count = 1 + rng.next_below(4);
      for (std::size_t j = 0; j < count; ++j) {
        const bool reuse = !live.empty() && rng.next_below(10) < 3;
        const std::uint64_t id =
            reuse ? live[rng.next_below(live.size())] : next_id++;
        if (!reuse) live.push_back(id);
        users.push_back(make_user(id, rng));  // fresh coords: often a move
      }
    } else {  // remove 1..2 ids (sometimes unknown)
      const std::size_t count = 1 + rng.next_below(2);
      for (std::size_t j = 0; j < count; ++j) {
        if (rng.next_below(10) < 8) {
          const std::size_t at = rng.next_below(live.size());
          ids.push_back(live[at]);
          live.erase(live.begin() + static_cast<std::ptrdiff_t>(at));
        } else {
          ids.push_back(0xDEAD0000ull + rng.next_below(64));
        }
        if (live.empty()) break;
      }
    }
    try {
      if (!users.empty()) {
        service.apply_add(users);
      } else {
        service.apply_remove(ids);
      }
    } catch (const wal::WalError&) {
      // Barrier/fsync death: the batch applied, its records are durable,
      // the log set is poisoned. Later appends refuse with the store
      // untouched, so the run just coasts on a dead log.
    } catch (const std::bad_alloc&) {
      // store.shard.alloc_fail: fired before any append or mutation.
    }
    ++result.requests;
  }

  // Crash: clone the filesystem as-is, recover every shard independently.
  const wal::WalSnapshot live_image = service.wal_snapshot();
  const std::unique_ptr<wal::MemFileOps> crashed = mem.clone();
  const wal::ShardedRecovery recovered =
      wal::recover_sharded(base.dir, options.shards, 2, *crashed);

  for (std::size_t s = 0; s < options.shards; ++s) {
    const wal::RecoveryResult& part = recovered.shards[s];
    if (!part.clean) {
      std::ostringstream out;
      out << "shard " << s << " recovery not clean: " << part.detail;
      return fail(out.str());
    }
    // Per-shard bitwise invariant: same rows, same order, same epoch.
    const wal::WalSnapshot live_shard = service.shard_wal_snapshot(s);
    if (wal::snapshot_digest(part.store) != wal::snapshot_digest(live_shard)) {
      std::ostringstream out;
      out << "shard " << s << " diverged bitwise from the live store shard";
      return fail(out.str());
    }
  }
  // Global invariant: the per-shard epochs sum back to the live epoch...
  if (recovered.global_epoch != live_image.epoch) {
    std::ostringstream out;
    out << "recovered global epoch " << recovered.global_epoch
        << " != live epoch " << live_image.epoch;
    return fail(out.str());
  }
  // ...and a service restored from the recovery is the same service: the
  // global snapshot and the merged solve both match bit for bit.
  serve::ServiceConfig resumed_config = config;
  resumed_config.shard_wal = nullptr;
  resumed_config.fault_hook = {};
  serve::PlacementService resumed(resumed_config);
  resumed.restore_sharded(recovered);
  if (wal::snapshot_digest(resumed.wal_snapshot()) !=
      wal::snapshot_digest(live_image)) {
    return fail("restored service diverged bitwise from the live store");
  }
  if (!service.wal_snapshot().ids.empty()) {
    const serve::PlacementView want = service.placement();
    const serve::PlacementView got = resumed.placement();
    if (got.objective != want.objective ||
        !same_centers(got.solution.centers, want.solution.centers)) {
      return fail("restored service solved to a different placement");
    }
  }

  result.faults_fired = total_fired(injector);
  return result;
}

}  // namespace mmph::chaos
