#include "mmph/chaos/injector.hpp"

#include <algorithm>
#include <utility>

namespace mmph::chaos {

FaultPlan& FaultPlan::with(std::string_view site, double probability) {
  for (FaultSite& existing : sites) {
    if (existing.site == site) {
      existing.probability = probability;
      return *this;
    }
  }
  sites.push_back(FaultSite{std::string(site), probability});
  return *this;
}

double FaultPlan::probability_of(std::string_view site) const noexcept {
  for (const FaultSite& s : sites) {
    if (s.site == site) return s.probability;
  }
  return 0.0;
}

Injector::Injector(FaultPlan plan) : plan_(std::move(plan)) {}

Injector::SiteState& Injector::state_for(std::string_view site) {
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) {
    SiteState state;
    state.probability = plan_.probability_of(site);
    state.rng = rnd::Pcg64(plan_.seed ^ fnv1a64(site));
    it = sites_.emplace(std::string(site), std::move(state)).first;
  }
  return it->second;
}

bool Injector::fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  SiteState& state = state_for(site);
  ++state.consulted;
  // A disarmed consult does not consume a draw, so disarm/re-arm leaves
  // the armed decision sequence unshifted.
  if (!armed_ || state.probability <= 0.0) return false;
  const bool fired = state.rng.next_double() < state.probability;
  if (fired) ++state.fired;
  return fired;
}

void Injector::set_armed(bool armed) noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  armed_ = armed;
}

bool Injector::armed() const noexcept {
  std::lock_guard<std::mutex> lock(mutex_);
  return armed_;
}

serve::FaultHook Injector::hook() {
  return [this](std::string_view site) { return fire(site); };
}

std::vector<SiteReport> Injector::report() const {
  std::vector<SiteReport> out;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    out.reserve(sites_.size());
    for (const auto& [site, state] : sites_) {
      out.push_back(SiteReport{site, state.consulted, state.fired});
    }
  }
  std::sort(out.begin(), out.end(),
            [](const SiteReport& a, const SiteReport& b) {
              return a.site < b.site;
            });
  return out;
}

}  // namespace mmph::chaos
