#include "mmph/chaos/faulty_file_ops.hpp"

#include <cerrno>

#include "mmph/serve/fault.hpp"

namespace mmph::chaos {

FaultyFileOps::FaultyFileOps(Injector& injector, wal::FileOps& inner)
    : injector_(injector), inner_(inner) {}

int FaultyFileOps::open(const std::string& path, wal::OpenMode mode) {
  return inner_.open(path, mode);
}

ssize_t FaultyFileOps::read(int fd, std::uint8_t* buf, std::size_t cap) {
  return inner_.read(fd, buf, cap);
}

ssize_t FaultyFileOps::write(int fd, const std::uint8_t* buf,
                             std::size_t len) {
  if (len > 1 && injector_.fire(serve::kFaultWalTornRecord)) {
    // Half the buffer lands, then the device "fails". The persisted
    // prefix is a torn record recovery must drop; the caller sees the
    // same -1/EIO a real mid-write media error produces.
    (void)inner_.write(fd, buf, len / 2);
    errno = EIO;
    return -1;
  }
  if (len > 1 && injector_.fire(serve::kFaultWalShortWrite)) {
    return inner_.write(fd, buf, 1);
  }
  return inner_.write(fd, buf, len);
}

int FaultyFileOps::fsync(int fd) {
  if (injector_.fire(serve::kFaultWalFsyncFail)) {
    errno = EIO;
    return -1;
  }
  return inner_.fsync(fd);
}

int FaultyFileOps::close(int fd) { return inner_.close(fd); }

int FaultyFileOps::rename(const std::string& from, const std::string& to) {
  return inner_.rename(from, to);
}

int FaultyFileOps::remove(const std::string& path) {
  return inner_.remove(path);
}

int FaultyFileOps::mkdir(const std::string& path) {
  return inner_.mkdir(path);
}

int FaultyFileOps::sync_dir(const std::string& dir) {
  return inner_.sync_dir(dir);
}

std::optional<std::vector<std::string>> FaultyFileOps::list(
    const std::string& dir) {
  return inner_.list(dir);
}

}  // namespace mmph::chaos
